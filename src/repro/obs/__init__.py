"""Unified observability: spans, metrics and the run reporter.

Every execution layer of this repository — the declarative trial
pipeline, the experiment engine's process fan-out, the streaming
fleet kernel and the process-sharded fleet driver — carries dormant
instrumentation hooks that wake up only when an observer is
installed:

* :mod:`repro.obs.trace` — structured span tracing. A
  :class:`~repro.obs.trace.Tracer` collects nested spans (monotonic
  timestamps, per-trial/per-stream/per-shard attributes) and writes
  them as JSONL; :func:`~repro.obs.trace.current_tracer` is the
  ambient hook the instrumented layers consult.
* :mod:`repro.obs.metrics` — a metrics registry: counters, gauges and
  exact-quantile latency recorders (p50/p90/p99/p99.9 computed from
  the raw samples, with an opt-in bounded-memory reservoir mode for
  unbounded streams).
* :mod:`repro.obs.report` — the reporter behind
  ``python -m repro.obs report <trace.jsonl>``: a text
  flamegraph-style stage tree, latency percentiles and histogram,
  per-shard and per-stream breakdowns, and a machine-readable summary
  JSON.

The contract every hook obeys, enforced by test and by CI:

* **zero-cost when disabled** — with no tracer installed the hot
  paths take no timestamps and allocate nothing (a single ambient
  ``None`` check per run);
* **bitwise-inert when enabled** — instrumentation only ever *reads*
  the computation (wall timestamps, deterministic attributes). It
  never draws from a random generator, never reorders work and never
  touches a sample, so every golden table, digest property and bench
  gate holds with tracing on.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsRegistry,
    current_metrics,
    metrics_active,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    maybe_span,
    read_trace,
    tracing_active,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyRecorder",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_metrics",
    "current_tracer",
    "maybe_span",
    "metrics_active",
    "read_trace",
    "tracing_active",
]
