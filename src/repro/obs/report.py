"""Render a JSONL trace into a human report and a summary JSON.

The text report has up to four sections, each derived purely from the
span tree (:mod:`repro.obs.trace`):

* **stage tree** — a flamegraph-style indented tree. Sibling spans
  with the same name aggregate into one row (count, total seconds,
  share of the parent's time), so ten thousand ``welch`` cycle spans
  render as a single line under their stream group.
* **latency** — exact percentiles (p50/p90/p99/p99.9, via the
  :class:`repro.obs.metrics.LatencyRecorder`) and an ASCII histogram
  over every span named ``utterance`` carrying a ``latency_s``
  attribute.
* **shards** — wall/prepare/stream counts per ``shard`` span, when
  the trace came from a sharded fleet run.
* **streams** — per-stream utterance counts and mean latency, when
  utterance spans carry a ``stream`` attribute (capped to the
  busiest streams to keep the report readable).

``summarize()`` returns the same content machine-readably; the CLI
(``python -m repro.obs report``) can write it with ``--json``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.obs.metrics import SUMMARY_QUANTILES, LatencyRecorder
from repro.obs.trace import Span

__all__ = ["render_report", "summarize"]

#: Cap on per-stream breakdown rows (busiest first).
MAX_STREAM_ROWS = 16
HISTOGRAM_BINS = 10
HISTOGRAM_WIDTH = 40


def _children_index(spans: Sequence[Span]) -> dict[int | None, list[Span]]:
    index: dict[int | None, list[Span]] = defaultdict(list)
    for span in spans:
        index[span.parent_id].append(span)
    return index


def _tree_lines(
    spans: Sequence[Span],
    children: dict[int | None, list[Span]],
    parent_total: float,
    depth: int,
    lines: list[str],
) -> None:
    """Aggregate same-named siblings and recurse, longest first."""
    groups: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        groups[span.name].append(span)
    rows = [
        (name, members, sum(m.duration_s for m in members))
        for name, members in groups.items()
    ]
    rows.sort(key=lambda row: row[2], reverse=True)
    for name, members, total in rows:
        share = (100.0 * total / parent_total) if parent_total > 0 else 0.0
        count = len(members)
        label = f"{'  ' * depth}{name}"
        lines.append(
            f"{label:<42} {count:>7}x {total:>10.3f}s {share:>5.1f}%"
        )
        grand_children = [
            child
            for member in members
            for child in children.get(member.span_id, [])
        ]
        if grand_children:
            _tree_lines(grand_children, children, total, depth + 1, lines)


def render_stage_tree(spans: Sequence[Span]) -> str:
    """The flamegraph-style aggregated stage tree."""
    children = _children_index(spans)
    by_id = {span.span_id: span for span in spans}
    roots = [
        span
        for span in spans
        if span.parent_id is None or span.parent_id not in by_id
    ]
    if not roots:
        return "(empty trace)"
    lines = [
        f"{'span':<42} {'count':>8} {'total':>11} {'share':>6}",
    ]
    total = sum(span.duration_s for span in roots)
    _tree_lines(roots, children, total, 0, lines)
    return "\n".join(lines)


def _utterance_spans(spans: Sequence[Span]) -> list[Span]:
    return [
        span
        for span in spans
        if span.name == "utterance" and "latency_s" in span.attrs
    ]


def _latency_recorder(spans: Sequence[Span]) -> LatencyRecorder | None:
    utterances = _utterance_spans(spans)
    if not utterances:
        return None
    recorder = LatencyRecorder("utterance_latency_s")
    for span in utterances:
        recorder.observe(float(span.attrs["latency_s"]))
    return recorder


def _histogram_lines(samples: Sequence[float]) -> list[str]:
    import numpy as np

    values = np.asarray(samples, dtype=float)
    low, high = float(values.min()), float(values.max())
    if high <= low:
        high = low + 1e-9
    counts, edges = np.histogram(values, bins=HISTOGRAM_BINS, range=(low, high))
    peak = int(counts.max()) or 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(
            int(round(HISTOGRAM_WIDTH * int(count) / peak)),
            1 if count else 0,
        )
        lines.append(
            f"  [{edges[i] * 1e3:8.1f}, {edges[i + 1] * 1e3:8.1f}) ms "
            f"{int(count):>7}  {bar}"
        )
    return lines


def render_latency(spans: Sequence[Span]) -> str | None:
    recorder = _latency_recorder(spans)
    if recorder is None:
        return None
    summary = recorder.summary()
    lines = [
        f"utterances: {recorder.count}",
        f"  mean  {summary['mean'] * 1e3:9.2f} ms",
    ]
    for q in SUMMARY_QUANTILES:
        label = f"p{q * 100:g}"
        lines.append(f"  {label:<5} {summary[label] * 1e3:9.2f} ms")
    lines.append(f"  max   {summary['max'] * 1e3:9.2f} ms")
    lines.append("")
    lines.extend(_histogram_lines(recorder.samples))
    return "\n".join(lines)


def render_shards(spans: Sequence[Span]) -> str | None:
    shard_spans = sorted(
        (span for span in spans if span.name == "shard"),
        key=lambda span: span.attrs.get("shard", -1),
    )
    if not shard_spans:
        return None
    lines = [f"{'shard':>5} {'streams':>8} {'wall':>10}"]
    for span in shard_spans:
        lines.append(
            f"{span.attrs.get('shard', '?'):>5} "
            f"{span.attrs.get('streams', '?'):>8} "
            f"{span.duration_s:>9.3f}s"
        )
    return "\n".join(lines)


def render_streams(spans: Sequence[Span]) -> str | None:
    per_stream: dict[Any, list[float]] = defaultdict(list)
    for span in _utterance_spans(spans):
        if "stream" in span.attrs:
            per_stream[span.attrs["stream"]].append(
                float(span.attrs["latency_s"])
            )
    if not per_stream:
        return None
    rows = sorted(
        per_stream.items(), key=lambda kv: len(kv[1]), reverse=True
    )
    shown = rows[:MAX_STREAM_ROWS]
    lines = [f"{'stream':>7} {'utterances':>11} {'mean latency':>13}"]
    for stream, latencies in shown:
        mean_ms = 1e3 * sum(latencies) / len(latencies)
        lines.append(
            f"{stream:>7} {len(latencies):>11} {mean_ms:>10.2f} ms"
        )
    if len(rows) > len(shown):
        lines.append(f"  ... {len(rows) - len(shown)} more streams")
    return "\n".join(lines)


def render_report(spans: Sequence[Span]) -> str:
    """The full text report."""
    sections = [("stage tree", render_stage_tree(spans))]
    for title, body in (
        ("stream-time detection latency", render_latency(spans)),
        ("shards", render_shards(spans)),
        ("streams (busiest first)", render_streams(spans)),
    ):
        if body is not None:
            sections.append((title, body))
    parts = []
    for title, body in sections:
        parts.append(f"== {title}")
        parts.append(body)
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def summarize(spans: Sequence[Span]) -> dict[str, Any]:
    """Machine-readable summary of the same trace."""
    totals: dict[str, dict[str, float]] = {}
    for span in spans:
        row = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += span.duration_s
    summary: dict[str, Any] = {
        "schema_version": 1,
        "span_count": len(spans),
        "spans_by_name": {
            name: {
                "count": int(row["count"]),
                "seconds": row["seconds"],
            }
            for name, row in sorted(totals.items())
        },
    }
    recorder = _latency_recorder(spans)
    if recorder is not None:
        summary["utterance_latency_s"] = recorder.summary()
    shard_spans = [span for span in spans if span.name == "shard"]
    if shard_spans:
        summary["shards"] = [
            {
                "shard": span.attrs.get("shard"),
                "streams": span.attrs.get("streams"),
                "wall_s": span.duration_s,
            }
            for span in sorted(
                shard_spans, key=lambda s: s.attrs.get("shard", -1)
            )
        ]
    return summary
