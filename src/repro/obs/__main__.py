"""Command-line reporter for observability artifacts.

Render the report for a trace written with ``--trace``::

    python -m repro.obs report trace.jsonl

Add ``--json summary.json`` to also write the machine-readable
summary that CI consumes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import render_report, summarize
from repro.obs.trace import read_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect trace/metrics artifacts from a run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render the text report for a JSONL trace"
    )
    report.add_argument("trace", help="path to a trace.jsonl file")
    report.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the machine-readable summary JSON here",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spans = read_trace(args.trace)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 2
    if not spans:
        print(f"error: {args.trace} contains no spans", file=sys.stderr)
        return 2
    print(render_report(spans), end="")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summarize(spans), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"summary json -> {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
