"""Structured span tracing with monotonic timestamps.

A :class:`Span` is one timed region of the run — a pipeline stage, a
stream-kernel cycle, a shard lifecycle, an engine fan-out — with a
name, ``[start_s, end_s)`` bounds on the monotonic clock
(``time.perf_counter``; on Linux a system-wide clock, so spans taken
in pool workers land on the same axis as the coordinator's), an
integer id, a parent id, and a flat attribute dict (per-trial,
per-stream, per-shard labels). Spans form a tree via ``parent_id``
and serialize to JSONL, one span per line.

A :class:`Tracer` collects spans. Instrumented code never imports a
concrete tracer; it consults the ambient hook::

    tracer = current_tracer()
    ...
    if tracer is not None:
        tracer.record("welch", started, time.perf_counter(), ...)

and :func:`activate` installs one for a ``with`` block. When no
tracer is active the hook returns ``None`` and the hot paths skip
even the timestamp reads — instrumentation is zero-cost when
disabled.

Process-pool workers do **not** see the parent's ambient tracer (and
must not rely on fork-time snapshots of it). Instead the dispatch
layer passes an explicit ``trace`` flag with each task; the worker
builds a fresh local :class:`Tracer`, returns its spans alongside the
result, and the coordinator re-bases them into its own trace with
:meth:`Tracer.adopt` — allocating fresh, non-overlapping span ids so
merged multi-shard traces stay a single consistent tree.

Tracing is bitwise-inert by construction: a tracer only reads clocks
and copies already-computed attribute values. Nothing in this module
draws randomness, mutates samples, or reorders work.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "maybe_span",
    "read_trace",
    "tracing_active",
]


@dataclass(frozen=True)
class Span:
    """One timed region; picklable so workers can ship spans home."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (one JSONL line of the trace file)."""
        row: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.attrs:
            row["attrs"] = self.attrs
        return row

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "Span":
        return cls(
            span_id=int(row["span_id"]),
            parent_id=(
                None if row.get("parent_id") is None else int(row["parent_id"])
            ),
            name=str(row["name"]),
            start_s=float(row["start_s"]),
            end_s=float(row["end_s"]),
            attrs=dict(row.get("attrs", {})),
        )


class Tracer:
    """Collects spans; thread-safe, with a per-thread nesting stack.

    Spans opened with the :meth:`span` context manager nest
    automatically: the innermost open span on the *current thread* is
    the default parent for anything recorded on that thread.
    Manually-timed spans (:meth:`record`) take an explicit parent, or
    inherit the same per-thread default. Code running on worker
    threads (the scalar fleet path drives streams from a thread pool)
    passes the parent id across explicitly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._spans: list[Span] = []
        self._stack = threading.local()

    # -- ids and the nesting stack ---------------------------------

    def new_id(self) -> int:
        """Allocate a fresh span id (for spans recorded after their
        children, e.g. a group span whose id children need up front)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _stack_frames(self) -> list[int]:
        frames = getattr(self._stack, "frames", None)
        if frames is None:
            frames = []
            self._stack.frames = frames
        return frames

    def current_parent(self) -> int | None:
        """Innermost open span on this thread, or ``None``."""
        frames = self._stack_frames()
        return frames[-1] if frames else None

    @contextmanager
    def attached(self, parent_id: int | None) -> Iterator[None]:
        """Make ``parent_id`` the default parent on *this* thread.

        The nesting stack is thread-local, so work dispatched to a
        pool thread would otherwise record roots; the dispatcher
        captures its own ``current_parent()`` and each worker thread
        re-attaches under it.
        """
        if parent_id is None:
            yield
            return
        frames = self._stack_frames()
        frames.append(parent_id)
        try:
            yield
        finally:
            frames.pop()

    # -- recording -------------------------------------------------

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        parent_id: int | None | str = "inherit",
        span_id: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Append a manually-timed span.

        ``parent_id`` defaults to the innermost open :meth:`span` on
        this thread; pass ``None`` for an explicit root, or an id to
        attach across threads/processes. ``span_id`` pre-allocated via
        :meth:`new_id` lets a parent be recorded after its children.
        """
        if parent_id == "inherit":
            parent_id = self.current_parent()
        if span_id is None:
            span_id = self.new_id()
        span = Span(
            span_id=span_id,
            parent_id=parent_id,  # type: ignore[arg-type]
            name=name,
            start_s=start_s,
            end_s=end_s,
            attrs=dict(attrs),
        )
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent_id: int | None | str = "inherit",
        **attrs: Any,
    ) -> Iterator[int]:
        """Open a nested span around a block; yields the span id."""
        if parent_id == "inherit":
            parent_id = self.current_parent()
        span_id = self.new_id()
        frames = self._stack_frames()
        frames.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            ended = time.perf_counter()
            frames.pop()
            self.record(
                name,
                started,
                ended,
                parent_id=parent_id,
                span_id=span_id,
                **attrs,
            )

    # -- merging worker traces -------------------------------------

    def adopt(
        self,
        spans: Iterable[Span],
        *,
        parent_id: int | None | str = "inherit",
    ) -> list[Span]:
        """Re-base another tracer's spans into this trace.

        Every adopted span gets a fresh id from this tracer's counter
        (so per-shard traces merge without id collisions); internal
        parent links are remapped, and the adopted roots hang under
        ``parent_id`` (default: the innermost open span here).
        """
        if parent_id == "inherit":
            parent_id = self.current_parent()
        spans = list(spans)
        remap = {span.span_id: self.new_id() for span in spans}
        adopted = []
        for span in spans:
            if span.parent_id is not None and span.parent_id in remap:
                new_parent: int | None = remap[span.parent_id]
            else:
                new_parent = parent_id  # type: ignore[assignment]
            adopted.append(
                Span(
                    span_id=remap[span.span_id],
                    parent_id=new_parent,
                    name=span.name,
                    start_s=span.start_s,
                    end_s=span.end_s,
                    attrs=span.attrs,
                )
            )
        with self._lock:
            self._spans.extend(adopted)
        return adopted

    # -- export ----------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Snapshot of the recorded spans (insertion order)."""
        with self._lock:
            return list(self._spans)

    def write_jsonl(self, path: str | Path) -> int:
        """Write one span per line; returns the span count."""
        spans = self.spans
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(spans)


def read_trace(path: str | Path) -> list[Span]:
    """Load a JSONL trace file back into :class:`Span` objects."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- the ambient hook ---------------------------------------------

_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (the common, zero-cost case)."""
    return _ACTIVE


def tracing_active() -> bool:
    return _ACTIVE is not None


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def maybe_span(
    name: str,
    *,
    parent_id: int | None | str = "inherit",
    **attrs: Any,
) -> Iterator[int | None]:
    """Open a span on the ambient tracer, or do nothing.

    For coarse, non-hot regions (an experiment, a fleet run, dataset
    synthesis). Hot loops instead fetch :func:`current_tracer` once
    and branch on ``None`` so the disabled path stays free.
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, parent_id=parent_id, **attrs) as span_id:
        yield span_id


def span_tree_names(spans: Sequence[Span]) -> set[str]:
    """The distinct span names in a trace (test/report convenience)."""
    return {span.name for span in spans}
