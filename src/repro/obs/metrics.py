"""Counters, gauges and exact-quantile latency recorders.

A :class:`MetricsRegistry` is a flat name → instrument map:

* :class:`Counter` — a monotonically increasing integer total;
* :class:`Gauge` — a last-write-wins scalar;
* :class:`LatencyRecorder` — keeps the **raw samples** and computes
  exact quantiles (p50/p90/p99/p99.9) with ``numpy.quantile``'s
  linear interpolation, so percentile rows in reports are not
  sketch approximations.

Exact mode is the default and is right for this repository's scale
(thousands of utterances per fleet run). For unbounded streams — the
ROADMAP's future socket front door — construct the recorder with
``max_samples=N`` to switch to reservoir sampling (Algorithm R with a
dedicated, deterministic ``numpy`` generator, seeded per-recorder):
memory is bounded at ``N`` samples while ``count``/``total`` stay
exact. A reservoir quantile is then an estimate from ``N`` uniform
samples; its standard error at quantile ``q`` is on the order of
``sqrt(q * (1 - q) / N)`` in rank space — about ±1.6 rank-percentiles
at the median for ``N = 1000``. Tail quantiles beyond ``1 - 1/N``
are not resolvable from the reservoir; size it for the tail you care
about (``N >= 10_000`` for a trustworthy p99.9).

The reservoir's generator is private to the recorder and seeded from
the recorder name, so enabling metrics never perturbs experiment
RNG streams — the registry obeys the same bitwise-inertness contract
as the tracer.

Like tracing, metrics are ambient: instrumented code consults
:func:`current_metrics` (usually ``None``) and :func:`activate`
installs a registry for a ``with`` block.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "LatencyRecorder",
    "MetricsRegistry",
    "activate",
    "current_metrics",
    "metrics_active",
]

#: Quantiles every latency summary reports, in order.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)


class Counter:
    """A monotonically increasing integer total."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins scalar."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class LatencyRecorder:
    """Raw-sample latency distribution with exact quantiles.

    Default (``max_samples=None``): every observation is kept and
    :meth:`quantile` is exact. With ``max_samples=N``: Algorithm R
    reservoir sampling bounds memory at ``N`` observations while
    ``count`` and ``total`` remain exact; quantiles become estimates
    (error documented in the module docstring).
    """

    def __init__(
        self, name: str, *, max_samples: int | None = None
    ) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(
                f"recorder {name!r}: max_samples must be >= 1"
            )
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        # Private, deterministically seeded generator: reservoir
        # eviction draws never touch experiment RNG streams.
        self._rng = (
            np.random.default_rng(
                np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            )
            if max_samples is not None
            else None
        )

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.max_samples is None or len(self._samples) < (
            self.max_samples
        ):
            self._samples.append(value)
            return
        # Algorithm R: the i-th observation (1-based) replaces a
        # random reservoir slot with probability max_samples / i.
        slot = int(self._rng.integers(self.count))
        if slot < self.max_samples:
            self._samples[slot] = value

    def observe_many(self, values: Sequence[float]) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.observe(float(value))

    @property
    def samples(self) -> list[float]:
        """The retained samples (all of them in exact mode)."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"recorder {self.name!r} has no samples")
        return self.total / self.count

    @property
    def max(self) -> float:
        if not self._samples:
            raise ValueError(f"recorder {self.name!r} has no samples")
        return max(self._samples)

    def quantile(self, q: float) -> float:
        """The q-quantile (linear interpolation, ``numpy.quantile``)."""
        if not self._samples:
            raise ValueError(f"recorder {self.name!r} has no samples")
        return float(np.quantile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """count/mean/max plus the standard p50/p90/p99/p99.9 set."""
        out: dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
        }
        for q in SUMMARY_QUANTILES:
            label = f"p{q * 100:g}"
            out[label] = self.quantile(q)
        return out

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "type": "latency",
            "exact": self.max_samples is None,
        }
        if self.max_samples is not None:
            row["max_samples"] = self.max_samples
        if self.count:
            row.update(self.summary())
        else:
            row["count"] = 0
        return row


class MetricsRegistry:
    """Flat name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | LatencyRecorder] = {}

    def _get(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def latency(
        self, name: str, *, max_samples: int | None = None
    ) -> LatencyRecorder:
        return self._get(name, LatencyRecorder, max_samples=max_samples)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.as_dict() for name, inst in sorted(items)}

    def write_json(self, path: str | Path) -> None:
        payload = {"schema_version": 1, "metrics": self.as_dict()}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


# -- the ambient hook ---------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def current_metrics() -> MetricsRegistry | None:
    """The installed registry, or ``None`` (the zero-cost case)."""
    return _ACTIVE


def metrics_active() -> bool:
    return _ACTIVE is not None


@contextmanager
def activate(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as ambient for a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
