"""repro — Inaudible Voice Commands: The Long-Range Attack and Defense.

A full-system Python reproduction of the NSDI 2018 paper: the
nonlinearity-based inaudible command injection attack, the multi-speaker
long-range variant, and the trace-based software defense — together
with every substrate they need (DSP, acoustic propagation,
psychoacoustics, hardware models, speech synthesis and recognition).

Quickstart::

    import numpy as np
    from repro import (
        AcousticChannel, Position, SingleSpeakerAttacker,
        android_phone_microphone, horn_tweeter, synthesize_command,
    )

    rng = np.random.default_rng(0)
    voice = synthesize_command("ok_google", rng)
    attacker = SingleSpeakerAttacker(horn_tweeter(), Position(0, 0, 1))
    emission = attacker.emit(voice)
    channel = AcousticChannel()
    arrived = channel.receive(list(emission.sources), Position(2, 0, 1), rng)
    recording = android_phone_microphone().record(arrived, rng)
    # `recording` now contains the demodulated, audible voice command —
    # although nothing audible was ever played.

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.errors import (
    AttackConfigError,
    DefenseError,
    ExperimentError,
    FilterDesignError,
    GeometryError,
    HardwareModelError,
    ModulationError,
    RecognitionError,
    ReproError,
    SampleRateError,
    SignalDomainError,
    SynthesisError,
)
from repro.dsp import Signal, Unit
from repro.acoustics import (
    AcousticChannel,
    PlacedSource,
    Position,
    Room,
)
from repro.hardware import (
    Microphone,
    UltrasonicSpeaker,
    amazon_echo_microphone,
    android_phone_microphone,
    horn_tweeter,
    ideal_linear_microphone,
    ultrasonic_piezo_element,
)
from repro.speech import (
    COMMAND_CORPUS,
    KeywordRecognizer,
    synthesize_command,
)
from repro.attack import (
    AttackPipeline,
    AttackPipelineConfig,
    AudiblePlaybackAttacker,
    LongRangeAttacker,
    SingleSpeakerAttacker,
    SpectralSplitter,
    grid_array,
    linear_array,
)
from repro.defense import (
    DatasetConfig,
    InaudibleVoiceDetector,
    build_dataset,
)
from repro.sim import Scenario, ScenarioRunner, VictimDevice

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SampleRateError",
    "SignalDomainError",
    "FilterDesignError",
    "ModulationError",
    "GeometryError",
    "HardwareModelError",
    "SynthesisError",
    "RecognitionError",
    "AttackConfigError",
    "DefenseError",
    "ExperimentError",
    # dsp
    "Signal",
    "Unit",
    # acoustics
    "AcousticChannel",
    "PlacedSource",
    "Position",
    "Room",
    # hardware
    "Microphone",
    "UltrasonicSpeaker",
    "android_phone_microphone",
    "amazon_echo_microphone",
    "ideal_linear_microphone",
    "ultrasonic_piezo_element",
    "horn_tweeter",
    # speech
    "COMMAND_CORPUS",
    "synthesize_command",
    "KeywordRecognizer",
    # attack
    "AttackPipeline",
    "AttackPipelineConfig",
    "SingleSpeakerAttacker",
    "LongRangeAttacker",
    "SpectralSplitter",
    "AudiblePlaybackAttacker",
    "linear_array",
    "grid_array",
    # defense
    "InaudibleVoiceDetector",
    "DatasetConfig",
    "build_dataset",
    # sim
    "Scenario",
    "ScenarioRunner",
    "VictimDevice",
]
