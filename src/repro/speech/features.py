"""MFCC feature extraction, from scratch on numpy.

Standard recipe: pre-emphasis, 25 ms frames with 10 ms hop, Hamming
window, power spectrum, mel filter bank, log, DCT-II, keep the first
``n_coefficients`` (dropping c0 optionally), cepstral mean
normalisation, optional delta features. Matches what compact keyword
spotters actually use, so recognition accuracy responds to noise and
distortion the way the paper's victims' recognisers do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.signals import Signal
from repro.errors import RecognitionError


def hz_to_mel(frequency_hz: np.ndarray | float) -> np.ndarray | float:
    """O'Shaughnessy mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(frequency_hz) / 700.0)


def mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    """Inverse mel scale."""
    return 700.0 * (10.0 ** (np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(
    n_filters: int,
    n_fft: int,
    sample_rate: float,
    low_hz: float = 50.0,
    high_hz: float | None = None,
) -> np.ndarray:
    """Triangular mel filter bank, shape ``(n_filters, n_fft//2 + 1)``.

    Raises
    ------
    RecognitionError
        If the band is too narrow for the requested filter count (a
        degenerate bank would produce all-zero rows and NaN features).
    """
    if high_hz is None:
        high_hz = sample_rate / 2.0
    if not 0 <= low_hz < high_hz <= sample_rate / 2.0:
        raise RecognitionError(
            f"invalid mel band [{low_hz}, {high_hz}] at rate {sample_rate}"
        )
    if n_filters < 2:
        raise RecognitionError(
            f"n_filters must be >= 2, got {n_filters}"
        )
    mel_points = np.linspace(
        hz_to_mel(low_hz), hz_to_mel(high_hz), n_filters + 2
    )
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((n_fft + 1) * hz_points / sample_rate).astype(int)
    bank = np.zeros((n_filters, n_fft // 2 + 1))
    for i in range(n_filters):
        left, center, right = bins[i], bins[i + 1], bins[i + 2]
        center = max(center, left + 1)
        right = max(right, center + 1)
        if right >= bank.shape[1]:
            right = bank.shape[1] - 1
            center = min(center, right - 1)
            left = min(left, center - 1)
        for k in range(left, center):
            bank[i, k] = (k - left) / (center - left)
        for k in range(center, right):
            bank[i, k] = (right - k) / (right - center)
    return bank


@dataclass(frozen=True)
class MfccConfig:
    """MFCC front-end parameters.

    Defaults are the common 25 ms / 10 ms / 26-filter / 13-coefficient
    recipe with cepstral mean normalisation and deltas enabled.
    """

    frame_length_s: float = 0.025
    hop_length_s: float = 0.010
    n_filters: int = 26
    n_coefficients: int = 13
    pre_emphasis: float = 0.97
    low_hz: float = 50.0
    high_hz: float | None = None
    include_energy: bool = True
    include_deltas: bool = True
    mean_normalize: bool = True
    dynamic_range_db: float = 40.0

    def __post_init__(self) -> None:
        if self.frame_length_s <= 0 or self.hop_length_s <= 0:
            raise RecognitionError("frame and hop lengths must be positive")
        if self.hop_length_s > self.frame_length_s:
            raise RecognitionError(
                "hop longer than frame leaves unanalysed gaps"
            )
        if not 0 <= self.pre_emphasis < 1:
            raise RecognitionError(
                f"pre_emphasis must be in [0, 1), got {self.pre_emphasis}"
            )
        if self.n_coefficients > self.n_filters:
            raise RecognitionError(
                "cannot keep more cepstral coefficients than mel filters"
            )
        if self.dynamic_range_db <= 0:
            raise RecognitionError(
                f"dynamic_range_db must be positive, got "
                f"{self.dynamic_range_db}"
            )


class MfccExtractor:
    """Computes MFCC matrices from signals.

    The extractor caches its filter bank per (rate, n_fft) pair because
    experiments extract features from thousands of recordings at the
    same rate.
    """

    def __init__(self, config: MfccConfig | None = None) -> None:
        self.config = config or MfccConfig()
        self._bank_cache: dict[tuple[float, int], np.ndarray] = {}

    def extract(self, signal: Signal) -> np.ndarray:
        """Return features of shape ``(n_frames, n_features)``.

        Raises
        ------
        RecognitionError
            If the signal is shorter than a single analysis frame.
        """
        cfg = self.config
        rate = signal.sample_rate
        frame_len = int(round(cfg.frame_length_s * rate))
        hop = int(round(cfg.hop_length_s * rate))
        if signal.n_samples < frame_len:
            raise RecognitionError(
                f"signal ({signal.n_samples} samples) shorter than one "
                f"analysis frame ({frame_len})"
            )
        x = signal.samples
        if cfg.pre_emphasis > 0:
            x = np.concatenate(
                [[x[0]], x[1:] - cfg.pre_emphasis * x[:-1]]
            )
        n_frames = 1 + (x.size - frame_len) // hop
        window = np.hamming(frame_len)
        n_fft = int(2 ** np.ceil(np.log2(frame_len)))
        bank = self._filterbank(rate, n_fft)
        frames = np.lib.stride_tricks.sliding_window_view(x, frame_len)[
            ::hop
        ][:n_frames]
        windowed = frames * window
        spectra = np.abs(np.fft.rfft(windowed, n=n_fft, axis=1)) ** 2
        mel_energies = spectra @ bank.T
        # Clamp to a fixed dynamic range below the utterance peak:
        # without this, log-mel values of silent frames are dominated
        # by the noise floor and DTW distance explodes at SNRs a real
        # recogniser shrugs off.
        floor = np.max(mel_energies) * 10.0 ** (
            -cfg.dynamic_range_db / 10.0
        )
        log_mel = np.log(np.maximum(mel_energies, max(floor, 1e-20)))
        cepstra = _dct_ii(log_mel)[:, : cfg.n_coefficients]
        features = cepstra
        if cfg.include_energy:
            log_energy = np.log(
                np.maximum(np.sum(np.square(windowed), axis=1), 1e-20)
            )
            features = np.column_stack([log_energy, features])
        if cfg.mean_normalize:
            features = features - np.mean(features, axis=0, keepdims=True)
        if cfg.include_deltas:
            features = np.column_stack([features, _deltas(features)])
        return features

    def _filterbank(self, rate: float, n_fft: int) -> np.ndarray:
        key = (rate, n_fft)
        if key not in self._bank_cache:
            high = self.config.high_hz
            if high is None or high > rate / 2:
                high = rate / 2
            self._bank_cache[key] = mel_filterbank(
                self.config.n_filters,
                n_fft,
                rate,
                low_hz=self.config.low_hz,
                high_hz=high,
            )
        return self._bank_cache[key]


def _dct_ii(x: np.ndarray) -> np.ndarray:
    """Orthonormal DCT-II along the last axis (numpy implementation)."""
    n = x.shape[-1]
    k = np.arange(n)
    basis = np.cos(np.pi / n * (k[:, None] + 0.5) * k[None, :])
    scale = np.full(n, np.sqrt(2.0 / n))
    scale[0] = np.sqrt(1.0 / n)
    return (x @ basis) * scale


def _deltas(features: np.ndarray, width: int = 2) -> np.ndarray:
    """Regression-based delta features over ``2*width + 1`` frames."""
    n_frames = features.shape[0]
    padded = np.pad(features, ((width, width), (0, 0)), mode="edge")
    numerator = np.zeros_like(features)
    for offset in range(1, width + 1):
        numerator += offset * (
            padded[width + offset : width + offset + n_frames]
            - padded[width - offset : width - offset + n_frames]
        )
    denominator = 2.0 * sum(offset**2 for offset in range(1, width + 1))
    return numerator / denominator
