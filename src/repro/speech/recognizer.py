"""DTW template keyword recogniser.

Stands in for the victim device's speech recogniser (Google Assistant /
Alexa). Templates are MFCC matrices of enrolled commands; an incoming
recording is trimmed, featurised and matched against every template
with dynamic time warping under a Sakoe-Chiba band. The best-scoring
command wins if its normalised distance clears the acceptance
threshold, otherwise the recogniser rejects ("not understood" — the
outcome an attack at excessive range produces).

This recogniser is simple but *real*: its accuracy falls smoothly as
noise, reverberation and demodulation distortion grow, which is the
property every accuracy-vs-distance figure in the evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.signals import Signal
from repro.speech.features import MfccConfig, MfccExtractor
from repro.speech.vad import trim_silence
from repro.errors import RecognitionError


@dataclass(frozen=True)
class RecognitionResult:
    """Outcome of one recognition attempt.

    Attributes
    ----------
    accepted:
        Whether any command cleared the acceptance threshold.
    command:
        Best-matching command name (set even when rejected, for
        diagnostics).
    distance:
        Normalised DTW distance of the best match (lower = better).
    distances:
        Every command's normalised distance, for margin analyses.
    """

    accepted: bool
    command: str
    distance: float
    distances: dict[str, float] = field(repr=False)

    def margin(self) -> float:
        """Distance gap between the best and second-best commands.

        Larger margins mean a more confident decision; experiments use
        this to study how distance erodes confidence before it breaks
        accuracy.
        """
        ordered = sorted(self.distances.values())
        if len(ordered) < 2:
            return float("inf")
        return float(ordered[1] - ordered[0])


class KeywordRecognizer:
    """Enroll commands, then recognise recordings.

    Parameters
    ----------
    acceptance_threshold:
        Maximum normalised DTW distance accepted as a successful
        recognition. Calibrated default suits the bundled MFCC recipe;
        the threshold is exposed because the defense experiments sweep
        it.
    band_fraction:
        Sakoe-Chiba band half-width as a fraction of the longer
        sequence, constraining pathological warps.
    mfcc:
        Feature front-end configuration.
    """

    #: Canonical feature-extraction rate. Every input — template or
    #: query, whatever device rate it arrives at — is resampled here
    #: first, so features are always comparable. 16 kHz matches real
    #: ASR front-ends, which keep only the sub-8 kHz band.
    CANONICAL_RATE_HZ = 16000.0

    def __init__(
        self,
        acceptance_threshold: float = 3.0,
        band_fraction: float = 0.2,
        mfcc: MfccConfig | None = None,
    ) -> None:
        if acceptance_threshold <= 0:
            raise RecognitionError(
                "acceptance_threshold must be positive, got "
                f"{acceptance_threshold}"
            )
        if not 0 < band_fraction <= 1:
            raise RecognitionError(
                f"band_fraction must be in (0, 1], got {band_fraction}"
            )
        self.acceptance_threshold = acceptance_threshold
        self.band_fraction = band_fraction
        self._extractor = MfccExtractor(mfcc)
        self._templates: dict[str, list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, command: str, recording: Signal) -> None:
        """Add a template recording for a command.

        Multiple enrollments per command are supported; recognition
        scores against the closest template.
        """
        features = self._featurize(recording)
        self._templates.setdefault(command, []).append(features)

    def enroll_multi_condition(
        self,
        command: str,
        recording: Signal,
        rng: np.random.Generator,
        noise_levels: tuple[float, ...] = (0.05, 0.3),
    ) -> None:
        """Enroll a clean template plus noise-corrupted variants.

        Commercial recognisers are trained on noisy data and are far
        more robust than a single clean template; this helper gives the
        DTW recogniser the same property (one clean template plus one
        per noise level, each level an RMS fraction of the clean
        signal's RMS).
        """
        from repro.dsp.signals import white_noise

        self.enroll(command, recording)
        for level in noise_levels:
            if level <= 0:
                raise RecognitionError(
                    f"noise levels must be positive, got {level}"
                )
            noise = white_noise(
                recording.duration,
                recording.sample_rate,
                rng,
                rms_level=level * recording.rms(),
                unit=recording.unit,
            ).padded_to(recording.n_samples)
            self.enroll(command, recording + noise)

    @property
    def commands(self) -> list[str]:
        """Enrolled command names, sorted."""
        return sorted(self._templates)

    # ------------------------------------------------------------------
    # Recognition
    # ------------------------------------------------------------------
    def recognize(self, recording: Signal) -> RecognitionResult:
        """Match a recording against every enrolled command."""
        if not self._templates:
            raise RecognitionError(
                "no commands enrolled; call enroll() before recognize()"
            )
        features = self._featurize(recording)
        distances = {}
        for command, templates in self._templates.items():
            best = min(
                self._dtw_distance(features, template)
                for template in templates
            )
            distances[command] = best
        best_command = min(distances, key=distances.get)
        best_distance = distances[best_command]
        return RecognitionResult(
            accepted=best_distance <= self.acceptance_threshold,
            command=best_command,
            distance=best_distance,
            distances=distances,
        )

    def recognize_batch(
        self, recordings: list[Signal]
    ) -> list[RecognitionResult]:
        """Match a stack of equal-length recordings against every command.

        The batched counterpart of :meth:`recognize` for the vectorized
        trial kernel. Every (recording, template) pair is scored by one
        anti-diagonal sweep over a stacked DP tensor
        (:meth:`_dtw_distance_batch`), instead of one Python-level DTW
        per pair; entry ``i`` of the result is bitwise identical to
        ``recognize(recordings[i])`` — same local costs, same step
        rule, same tie-breaking.
        """
        if not self._templates:
            raise RecognitionError(
                "no commands enrolled; call enroll() before recognize()"
            )
        if not recordings:
            return []
        from repro.dsp.resample import resample_array

        # One polyphase resample over the whole stack (rows are bitwise
        # identical to per-recording resample, including the rates-
        # already-match short circuit); silence trimming and MFCC
        # extraction stay per row because trim lengths differ.
        source_rate = recordings[0].sample_rate
        if any(r.sample_rate != source_rate for r in recordings):
            raise RecognitionError(
                "recognize_batch expects one common sample rate"
            )
        stack = np.stack([r.samples for r in recordings])
        if abs(self.CANONICAL_RATE_HZ - source_rate) < 1e-9:
            canonical, rate = stack, source_rate
        else:
            canonical = resample_array(
                stack, source_rate, self.CANONICAL_RATE_HZ
            )
            rate = self.CANONICAL_RATE_HZ
        features = []
        for row in canonical:
            signal = recordings[0].replace(samples=row, sample_rate=rate)
            features.append(self._extractor.extract(trim_silence(signal)))
        pairs = []
        for trial_features in features:
            for templates in self._templates.values():
                for template in templates:
                    pairs.append((trial_features, template))
        distances_flat = self._dtw_distance_batch(pairs)
        results = []
        index = 0
        for _ in features:
            distances = {}
            for command, templates in self._templates.items():
                distances[command] = min(
                    distances_flat[index : index + len(templates)]
                )
                index += len(templates)
            best_command = min(distances, key=distances.get)
            best_distance = distances[best_command]
            results.append(
                RecognitionResult(
                    accepted=best_distance <= self.acceptance_threshold,
                    command=best_command,
                    distance=best_distance,
                    distances=distances,
                )
            )
        return results

    def recognize_many(
        self, recordings: list[Signal], max_pairs: int = 2048
    ) -> list[RecognitionResult]:
        """Match many recordings of *any* lengths, batched by slab.

        :meth:`recognize_batch` needs one common length (it stacks the
        waveforms for a shared resample); the streaming kernel's
        utterances close at arbitrary boundaries, so here each
        recording is featurised individually (the exact
        :meth:`recognize` front-end) and only the DTW — the dominant
        cost — is batched. Pairs are swept in slabs of at most
        ``max_pairs`` to bound the padded feature stacks' memory; slab
        composition cannot change any score because every pair's DP
        table is masked to its own band (padding cells stay at
        infinity), so entry ``i`` is bitwise ``recognize(recordings[i])``.
        """
        if not self._templates:
            raise RecognitionError(
                "no commands enrolled; call enroll() before recognize()"
            )
        if not recordings:
            return []
        if max_pairs < 1:
            raise RecognitionError(
                f"max_pairs must be >= 1, got {max_pairs}"
            )
        n_templates = sum(len(t) for t in self._templates.values())
        per_slab = max(1, max_pairs // n_templates)
        features = [self._featurize(r) for r in recordings]
        results: list[RecognitionResult] = []
        for lo in range(0, len(features), per_slab):
            chunk = features[lo : lo + per_slab]
            pairs = []
            for trial_features in chunk:
                for templates in self._templates.values():
                    for template in templates:
                        pairs.append((trial_features, template))
            distances_flat = self._dtw_distance_batch(pairs)
            index = 0
            for _ in chunk:
                distances = {}
                for command, templates in self._templates.items():
                    distances[command] = min(
                        distances_flat[index : index + len(templates)]
                    )
                    index += len(templates)
                best_command = min(distances, key=distances.get)
                best_distance = distances[best_command]
                results.append(
                    RecognitionResult(
                        accepted=best_distance <= self.acceptance_threshold,
                        command=best_command,
                        distance=best_distance,
                        distances=distances,
                    )
                )
        return results

    def recognizes_as(self, recording: Signal, command: str) -> bool:
        """True if the recording is accepted *and* matches ``command``.

        This is the per-trial success criterion of the attack
        experiments: the device must both wake and parse the intended
        command.
        """
        result = self.recognize(recording)
        return result.accepted and result.command == command

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _featurize(self, recording: Signal) -> np.ndarray:
        from repro.dsp.resample import resample

        canonical = resample(recording, self.CANONICAL_RATE_HZ)
        trimmed = trim_silence(canonical)
        return self._extractor.extract(trimmed)

    def _dtw_distance_batch(
        self, pairs: list[tuple[np.ndarray, np.ndarray]]
    ) -> list[float]:
        """Banded DTW over many (query, template) pairs at once.

        All DP tables are padded to a common shape and swept along
        anti-diagonals: every cell on a diagonal depends only on the
        two previous diagonals, so the sweep keeps just three rolling
        ``(n_pairs, n_max + 1)`` diagonal buffers (no full DP tensor)
        and each step is one vectorised three-way minimum. Because an
        anti-diagonal visits contiguous ranges of query and template
        frames, the local-cost operands are plain (reversed) slices of
        the padded feature stacks — no gather copies anywhere in the
        loop. The per-cell arithmetic — Euclidean local cost, ``min``
        of the three predecessors, out-of-band cells pinned at
        infinity — is exactly :meth:`_dtw_distance`'s (the subtraction
        writes a fresh contiguous temporary, so the coefficient-axis
        reduction order is unchanged), so each returned value is
        bitwise identical to the scalar score of that pair.
        """
        n_pairs = len(pairs)
        ns = np.empty(n_pairs, dtype=np.int64)
        ms = np.empty(n_pairs, dtype=np.int64)
        bands = np.empty(n_pairs, dtype=np.int64)
        for k, (a, b) in enumerate(pairs):
            n, m = a.shape[0], b.shape[0]
            if n == 0 or m == 0:
                raise RecognitionError(
                    "cannot DTW-match empty feature matrices"
                )
            ns[k], ms[k] = n, m
            bands[k] = max(
                int(self.band_fraction * max(n, m)), abs(n - m) + 1
            )
        n_max, m_max = int(ns.max()), int(ms.max())
        band_max = int(bands.max())
        n_coeffs = pairs[0][0].shape[1]
        a_pad = np.zeros((n_pairs, n_max, n_coeffs))
        b_pad = np.zeros((n_pairs, m_max, n_coeffs))
        for k, (a, b) in enumerate(pairs):
            a_pad[k, : a.shape[0]] = a
            b_pad[k, : b.shape[0]] = b
        inf = np.inf
        # Rolling diagonal buffers, indexed by i: prev2 holds diagonal
        # d - 2, prev holds d - 1, cur is being filled. Diagonal 0 is
        # the single cell (0, 0) = 0; diagonal 1 is entirely infinite
        # (the scalar table's first row and column), so prev starts as
        # all-inf.
        prev2 = np.full((n_pairs, n_max + 1), inf)
        prev = np.full((n_pairs, n_max + 1), inf)
        cur = np.empty((n_pairs, n_max + 1))
        prev2[:, 0] = 0.0
        ns_col = ns[:, np.newaxis]
        ms_col = ms[:, np.newaxis]
        bands_col = bands[:, np.newaxis]
        end_diag = ns + ms
        distances = np.empty(n_pairs)
        for diag in range(2, n_max + m_max + 1):
            # Cells on the anti-diagonal restricted to the widest
            # band's corridor (|i - j| <= band_max); everything outside
            # stays at infinity, exactly like the scalar sweep, and the
            # local costs are only ever computed inside the corridor.
            i_lo = max(1, diag - m_max, (diag - band_max + 1) // 2)
            i_hi = min(n_max, diag - 1, (diag + band_max) // 2)
            cur[:] = inf
            if i_lo <= i_hi:
                i = np.arange(i_lo, i_hi + 1)
                j = diag - i
                # As i ascends along the diagonal, the query frame
                # index i - 1 ascends and the template frame index
                # j - 1 descends — both contiguously, so the operands
                # are views and the subtraction is the only copy.
                diffs = (
                    a_pad[:, i_lo - 1 : i_hi, :]
                    - b_pad[:, diag - i_hi - 1 : diag - i_lo, :][:, ::-1, :]
                )
                np.multiply(diffs, diffs, out=diffs)
                local = np.sqrt(np.sum(diffs, axis=-1))
                step = np.minimum(
                    np.minimum(
                        prev2[:, i_lo - 1 : i_hi],
                        prev[:, i_lo - 1 : i_hi],
                    ),
                    prev[:, i_lo : i_hi + 1],
                )
                in_band = (
                    (i <= ns_col)
                    & (j <= ms_col)
                    & (j >= i - bands_col)
                    & (j <= i + bands_col)
                )
                cur[:, i_lo : i_hi + 1] = np.where(
                    in_band, local + step, inf
                )
            # A pair's score lives at cell (n, m) on diagonal n + m;
            # harvest it before the buffer rotates away.
            done = np.flatnonzero(end_diag == diag)
            if done.size:
                distances[done] = cur[done, ns[done]]
            prev2, prev, cur = prev, cur, prev2
        out = []
        for k, distance in enumerate(distances):
            if not np.isfinite(distance):
                raise RecognitionError(
                    "DTW band too narrow for the length mismatch "
                    f"between sequences ({int(ns[k])} vs {int(ms[k])} "
                    "frames)"
                )
            out.append(float(distance / (int(ns[k]) + int(ms[k]))))
        return out

    def _dtw_distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Band-constrained DTW, normalised by path-independent length.

        Frame-pair cost is Euclidean distance in feature space; steps
        are the standard (diagonal, vertical, horizontal) with unit
        weights; the final distance is divided by ``len(a) + len(b)``
        so different-length commands are comparable.
        """
        n, m = a.shape[0], b.shape[0]
        if n == 0 or m == 0:
            raise RecognitionError("cannot DTW-match empty feature matrices")
        band = max(int(self.band_fraction * max(n, m)), abs(n - m) + 1)
        # Pairwise distances, computed row-band by row-band.
        inf = np.inf
        cost = np.full((n + 1, m + 1), inf)
        cost[0, 0] = 0.0
        for i in range(1, n + 1):
            j_low = max(1, i - band)
            j_high = min(m, i + band)
            row_a = a[i - 1]
            diffs = b[j_low - 1 : j_high] - row_a
            local = np.sqrt(np.sum(diffs * diffs, axis=1))
            for offset, j in enumerate(range(j_low, j_high + 1)):
                step = min(
                    cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1]
                )
                cost[i, j] = local[offset] + step
        distance = cost[n, m]
        if not np.isfinite(distance):
            raise RecognitionError(
                "DTW band too narrow for the length mismatch between "
                f"sequences ({n} vs {m} frames)"
            )
        return float(distance / (n + m))
