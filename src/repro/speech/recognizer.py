"""DTW template keyword recogniser.

Stands in for the victim device's speech recogniser (Google Assistant /
Alexa). Templates are MFCC matrices of enrolled commands; an incoming
recording is trimmed, featurised and matched against every template
with dynamic time warping under a Sakoe-Chiba band. The best-scoring
command wins if its normalised distance clears the acceptance
threshold, otherwise the recogniser rejects ("not understood" — the
outcome an attack at excessive range produces).

This recogniser is simple but *real*: its accuracy falls smoothly as
noise, reverberation and demodulation distortion grow, which is the
property every accuracy-vs-distance figure in the evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.signals import Signal
from repro.speech.features import MfccConfig, MfccExtractor
from repro.speech.vad import trim_silence
from repro.errors import RecognitionError


@dataclass(frozen=True)
class RecognitionResult:
    """Outcome of one recognition attempt.

    Attributes
    ----------
    accepted:
        Whether any command cleared the acceptance threshold.
    command:
        Best-matching command name (set even when rejected, for
        diagnostics).
    distance:
        Normalised DTW distance of the best match (lower = better).
    distances:
        Every command's normalised distance, for margin analyses.
    """

    accepted: bool
    command: str
    distance: float
    distances: dict[str, float] = field(repr=False)

    def margin(self) -> float:
        """Distance gap between the best and second-best commands.

        Larger margins mean a more confident decision; experiments use
        this to study how distance erodes confidence before it breaks
        accuracy.
        """
        ordered = sorted(self.distances.values())
        if len(ordered) < 2:
            return float("inf")
        return float(ordered[1] - ordered[0])


class KeywordRecognizer:
    """Enroll commands, then recognise recordings.

    Parameters
    ----------
    acceptance_threshold:
        Maximum normalised DTW distance accepted as a successful
        recognition. Calibrated default suits the bundled MFCC recipe;
        the threshold is exposed because the defense experiments sweep
        it.
    band_fraction:
        Sakoe-Chiba band half-width as a fraction of the longer
        sequence, constraining pathological warps.
    mfcc:
        Feature front-end configuration.
    """

    #: Canonical feature-extraction rate. Every input — template or
    #: query, whatever device rate it arrives at — is resampled here
    #: first, so features are always comparable. 16 kHz matches real
    #: ASR front-ends, which keep only the sub-8 kHz band.
    CANONICAL_RATE_HZ = 16000.0

    def __init__(
        self,
        acceptance_threshold: float = 3.0,
        band_fraction: float = 0.2,
        mfcc: MfccConfig | None = None,
    ) -> None:
        if acceptance_threshold <= 0:
            raise RecognitionError(
                "acceptance_threshold must be positive, got "
                f"{acceptance_threshold}"
            )
        if not 0 < band_fraction <= 1:
            raise RecognitionError(
                f"band_fraction must be in (0, 1], got {band_fraction}"
            )
        self.acceptance_threshold = acceptance_threshold
        self.band_fraction = band_fraction
        self._extractor = MfccExtractor(mfcc)
        self._templates: dict[str, list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, command: str, recording: Signal) -> None:
        """Add a template recording for a command.

        Multiple enrollments per command are supported; recognition
        scores against the closest template.
        """
        features = self._featurize(recording)
        self._templates.setdefault(command, []).append(features)

    def enroll_multi_condition(
        self,
        command: str,
        recording: Signal,
        rng: np.random.Generator,
        noise_levels: tuple[float, ...] = (0.05, 0.3),
    ) -> None:
        """Enroll a clean template plus noise-corrupted variants.

        Commercial recognisers are trained on noisy data and are far
        more robust than a single clean template; this helper gives the
        DTW recogniser the same property (one clean template plus one
        per noise level, each level an RMS fraction of the clean
        signal's RMS).
        """
        from repro.dsp.signals import white_noise

        self.enroll(command, recording)
        for level in noise_levels:
            if level <= 0:
                raise RecognitionError(
                    f"noise levels must be positive, got {level}"
                )
            noise = white_noise(
                recording.duration,
                recording.sample_rate,
                rng,
                rms_level=level * recording.rms(),
                unit=recording.unit,
            ).padded_to(recording.n_samples)
            self.enroll(command, recording + noise)

    @property
    def commands(self) -> list[str]:
        """Enrolled command names, sorted."""
        return sorted(self._templates)

    # ------------------------------------------------------------------
    # Recognition
    # ------------------------------------------------------------------
    def recognize(self, recording: Signal) -> RecognitionResult:
        """Match a recording against every enrolled command."""
        if not self._templates:
            raise RecognitionError(
                "no commands enrolled; call enroll() before recognize()"
            )
        features = self._featurize(recording)
        distances = {}
        for command, templates in self._templates.items():
            best = min(
                self._dtw_distance(features, template)
                for template in templates
            )
            distances[command] = best
        best_command = min(distances, key=distances.get)
        best_distance = distances[best_command]
        return RecognitionResult(
            accepted=best_distance <= self.acceptance_threshold,
            command=best_command,
            distance=best_distance,
            distances=distances,
        )

    def recognizes_as(self, recording: Signal, command: str) -> bool:
        """True if the recording is accepted *and* matches ``command``.

        This is the per-trial success criterion of the attack
        experiments: the device must both wake and parse the intended
        command.
        """
        result = self.recognize(recording)
        return result.accepted and result.command == command

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _featurize(self, recording: Signal) -> np.ndarray:
        from repro.dsp.resample import resample

        canonical = resample(recording, self.CANONICAL_RATE_HZ)
        trimmed = trim_silence(canonical)
        return self._extractor.extract(trimmed)

    def _dtw_distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Band-constrained DTW, normalised by path-independent length.

        Frame-pair cost is Euclidean distance in feature space; steps
        are the standard (diagonal, vertical, horizontal) with unit
        weights; the final distance is divided by ``len(a) + len(b)``
        so different-length commands are comparable.
        """
        n, m = a.shape[0], b.shape[0]
        if n == 0 or m == 0:
            raise RecognitionError("cannot DTW-match empty feature matrices")
        band = max(int(self.band_fraction * max(n, m)), abs(n - m) + 1)
        # Pairwise distances, computed row-band by row-band.
        inf = np.inf
        cost = np.full((n + 1, m + 1), inf)
        cost[0, 0] = 0.0
        for i in range(1, n + 1):
            j_low = max(1, i - band)
            j_high = min(m, i + band)
            row_a = a[i - 1]
            diffs = b[j_low - 1 : j_high] - row_a
            local = np.sqrt(np.sum(diffs * diffs, axis=1))
            for offset, j in enumerate(range(j_low, j_high + 1)):
                step = min(
                    cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1]
                )
                cost[i, j] = local[offset] + step
        distance = cost[n, m]
        if not np.isfinite(distance):
            raise RecognitionError(
                "DTW band too narrow for the length mismatch between "
                f"sequences ({n} vs {m} frames)"
            )
        return float(distance / (n + m))
