"""The voice-command corpus.

Commands are spelled as phoneme sequences for the formant synthesiser.
The corpus covers the paper family's actual attack payloads (camera,
airplane mode, shopping list) plus additional commands used for the
defense's training/held-out splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.signals import Signal
from repro.speech.synthesis import FormantSynthesizer, SynthesisProfile
from repro.errors import SynthesisError


@dataclass(frozen=True)
class VoiceCommand:
    """A named command with its phonetic spelling.

    Attributes
    ----------
    name:
        Stable identifier used by experiments and the recogniser.
    text:
        Human-readable transcription.
    phonemes:
        Phoneme symbols in order (``SIL`` for pauses).
    """

    name: str
    text: str
    phonemes: tuple[str, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.phonemes:
            raise SynthesisError(
                f"command {self.name!r} has an empty phoneme sequence"
            )


def _cmd(name: str, text: str, *phonemes: str) -> VoiceCommand:
    return VoiceCommand(name=name, text=text, phonemes=tuple(phonemes))


#: Every command available to experiments, keyed by name.
COMMAND_CORPUS: dict[str, VoiceCommand] = {
    command.name: command
    for command in [
        _cmd(
            "ok_google",
            "okay google",
            "OW", "K", "EY", "SIL", "G", "UW", "G", "AH", "L",
        ),
        _cmd(
            "alexa",
            "alexa",
            "AH", "L", "EH", "K", "S", "AH",
        ),
        _cmd(
            "take_a_picture",
            "take a picture",
            "T", "EY", "K", "SIL", "AH", "SIL",
            "P", "IH", "K", "CH", "ER",
        ),
        _cmd(
            "airplane_mode",
            "turn on airplane mode",
            "T", "ER", "N", "SIL", "AA", "N", "SIL",
            "EH", "R", "P", "L", "EY", "N", "SIL",
            "M", "OW", "D",
        ),
        _cmd(
            "add_milk",
            "add milk to my shopping list",
            "AE", "D", "SIL", "M", "IH", "L", "K", "SIL",
            "T", "UW", "SIL", "M", "AY", "SIL",
            "SH", "AA", "P", "IH", "NG", "SIL",
            "L", "IH", "S", "T",
        ),
        _cmd(
            "open_door",
            "open the front door",
            "OW", "P", "AH", "N", "SIL", "TH", "AH", "SIL",
            "F", "R", "AH", "N", "T", "SIL", "D", "AO", "R",
        ),
        _cmd(
            "what_time",
            "what time is it",
            "W", "AH", "T", "SIL", "T", "AY", "M", "SIL",
            "IH", "Z", "SIL", "IH", "T",
        ),
        _cmd(
            "call_mom",
            "call mom",
            "K", "AO", "L", "SIL", "M", "AA", "M",
        ),
        _cmd(
            "play_music",
            "play some music",
            "P", "L", "EY", "SIL", "S", "AH", "M", "SIL",
            "M", "Y", "UW", "Z", "IH", "K",
        ),
        _cmd(
            "turn_off_lights",
            "turn off the lights",
            "T", "ER", "N", "SIL", "AO", "F", "SIL",
            "TH", "AH", "SIL", "L", "AY", "T", "S",
        ),
    ]
}


def get_command(name: str) -> VoiceCommand:
    """Look up a command by name with a helpful error message."""
    try:
        return COMMAND_CORPUS[name]
    except KeyError:
        raise SynthesisError(
            f"unknown command {name!r}; available: {sorted(COMMAND_CORPUS)}"
        ) from None


def synthesize_command(
    name: str,
    rng: np.random.Generator,
    profile: SynthesisProfile | None = None,
) -> Signal:
    """Synthesise a corpus command to a waveform.

    Parameters
    ----------
    name:
        Corpus command name (see :data:`COMMAND_CORPUS`).
    rng:
        Random generator for the synthesiser's noise sources.
    profile:
        Optional voice profile; defaults to the standard voice. Passing
        different profiles yields distinct "speakers", which the defense
        experiments use for train/test separation.
    """
    command = get_command(name)
    synthesizer = FormantSynthesizer(profile)
    return synthesizer.synthesize(list(command.phonemes), rng)
