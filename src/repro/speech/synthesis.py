"""Source-filter formant synthesis.

Classic Klatt-style architecture, reduced to what the evaluation needs:

* a voiced source — glottal pulse train at ``f0`` with a gentle
  declination across the utterance and -12 dB/octave spectral tilt;
* an unvoiced source — white noise;
* a cascade of second-order resonators realising each phoneme's
  formants;
* per-segment amplitude shaping with raised-cosine edges and short
  cross-fades between segments so the waveform is click-free (a click
  would add broadband energy and confound the audibility analyses).

The synthesiser is deterministic given its random generator, so the
same seed reproduces the same waveform — required for the experiment
tables to be bit-stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.signals import Signal, Unit
from repro.speech.phonemes import Phoneme, PhonemeKind, get_phoneme
from repro.errors import SynthesisError


@dataclass(frozen=True)
class SynthesisProfile:
    """Voice parameters of the synthetic speaker.

    Attributes
    ----------
    f0_hz:
        Mean fundamental frequency (male ≈ 120, female ≈ 210).
    f0_declination:
        Fractional f0 drop from start to end of the utterance,
        mimicking natural declination.
    jitter:
        Random per-period f0 perturbation (fraction); small values make
        the voice less buzzy.
    sample_rate:
        Output rate; 48 kHz matches the "recorded with a phone" framing
        of the paper's command preparation step.
    """

    f0_hz: float = 120.0
    f0_declination: float = 0.12
    jitter: float = 0.01
    sample_rate: float = 48000.0

    def __post_init__(self) -> None:
        if not 50.0 <= self.f0_hz <= 400.0:
            raise SynthesisError(
                f"f0 {self.f0_hz} Hz outside the plausible voice range"
            )
        if not 0.0 <= self.f0_declination < 0.5:
            raise SynthesisError(
                f"declination must be in [0, 0.5), got {self.f0_declination}"
            )
        if not 0.0 <= self.jitter < 0.1:
            raise SynthesisError(
                f"jitter must be in [0, 0.1), got {self.jitter}"
            )
        if self.sample_rate < 16000.0:
            raise SynthesisError(
                "sample rates below 16 kHz lose fricative energy; got "
                f"{self.sample_rate}"
            )


class FormantSynthesizer:
    """Renders phoneme sequences into waveforms.

    Parameters
    ----------
    profile:
        Voice parameters; defaults to a male-ish voice at 48 kHz.

    Examples
    --------
    >>> import numpy as np
    >>> synth = FormantSynthesizer()
    >>> rng = np.random.default_rng(7)
    >>> wave = synth.synthesize(["HH", "EH", "L", "OW"], rng)
    >>> wave.sample_rate
    48000.0
    """

    def __init__(self, profile: SynthesisProfile | None = None) -> None:
        self.profile = profile or SynthesisProfile()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize(
        self,
        phoneme_symbols: list[str] | list[tuple[str, float]],
        rng: np.random.Generator,
    ) -> Signal:
        """Render a phoneme sequence.

        Parameters
        ----------
        phoneme_symbols:
            Either bare symbols (default durations) or ``(symbol,
            duration_s)`` pairs.
        rng:
            Random generator driving noise excitation and jitter.

        Returns
        -------
        Signal
            Digital waveform at the profile's rate, peak-normalised to
            0.9.
        """
        if not phoneme_symbols:
            raise SynthesisError("cannot synthesise an empty sequence")
        segments: list[np.ndarray] = []
        plan = self._resolve(phoneme_symbols)
        total = sum(d for _, d in plan)
        elapsed = 0.0
        for phoneme, duration in plan:
            position = elapsed / total if total > 0 else 0.0
            segments.append(
                self._render_segment(phoneme, duration, position, rng)
            )
            elapsed += duration
        wave = self._join(segments)
        peak = float(np.max(np.abs(wave))) if wave.size else 0.0
        if peak > 0:
            wave = wave * (0.9 / peak)
        return Signal(wave, self.profile.sample_rate, Unit.DIGITAL)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(
        self, spec: list[str] | list[tuple[str, float]]
    ) -> list[tuple[Phoneme, float]]:
        plan = []
        for item in spec:
            if isinstance(item, tuple):
                symbol, duration = item
            else:
                symbol, duration = item, None
            phoneme = get_phoneme(symbol)
            plan.append(
                (phoneme, duration if duration is not None
                 else phoneme.duration_s)
            )
        return plan

    def _render_segment(
        self,
        phoneme: Phoneme,
        duration: float,
        position: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        rate = self.profile.sample_rate
        n = max(1, int(round(duration * rate)))
        if phoneme.kind == PhonemeKind.SILENCE:
            return np.zeros(n)
        if phoneme.kind in (PhonemeKind.PLOSIVE, PhonemeKind.AFFRICATE):
            return self._render_burst(phoneme, n, position, rng)
        excitation = self._excitation(phoneme, n, position, rng)
        shaped = self._apply_formants(excitation, phoneme)
        radiated = self._radiation(shaped)
        return self._envelope(radiated, phoneme.amplitude)

    def _excitation(
        self,
        phoneme: Phoneme,
        n: int,
        position: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        rate = self.profile.sample_rate
        if not phoneme.voiced:
            return rng.normal(0.0, 1.0, n)
        f0 = self.profile.f0_hz * (
            1.0 - self.profile.f0_declination * position
        )
        pulses = np.zeros(n)
        t = 0.0
        while t < n:
            index = int(t)
            if index < n:
                pulses[index] = 1.0
            period = rate / f0
            period *= 1.0 + rng.normal(0.0, self.profile.jitter)
            t += max(period, 2.0)
        # -12 dB/oct glottal tilt: two cascaded one-pole low-passes.
        pole = np.exp(-2.0 * np.pi * 100.0 / rate)
        tilted = sp_signal.lfilter([1.0 - pole], [1.0, -pole], pulses)
        tilted = sp_signal.lfilter([1.0 - pole], [1.0, -pole], tilted)
        if phoneme.kind == PhonemeKind.FRICATIVE:
            # Voiced fricatives mix periodic and noise sources.
            noise = rng.normal(0.0, 0.3 * np.std(tilted) + 1e-12, n)
            tilted = tilted + noise
        return tilted

    def _apply_formants(
        self, excitation: np.ndarray, phoneme: Phoneme
    ) -> np.ndarray:
        rate = self.profile.sample_rate
        shaped = excitation
        for frequency, bandwidth in zip(
            phoneme.formants_hz, phoneme.bandwidths_hz
        ):
            if frequency >= rate / 2:
                continue
            shaped = self._resonator(shaped, frequency, bandwidth, rate)
        return shaped

    @staticmethod
    def _radiation(x: np.ndarray) -> np.ndarray:
        """Lip-radiation characteristic: first difference (+6 dB/oct).

        Mouths radiate the *derivative* of volume velocity, which is
        why natural speech carries essentially no energy below ~50 Hz.
        Omitting this stage leaves the glottal source's low-frequency
        bulk in the waveform — and would falsely hand the defense's
        sub-50 Hz trace detector a signal in *genuine* speech.
        """
        if x.size < 2:
            return x
        return np.diff(x, prepend=x[0])

    @staticmethod
    def _resonator(
        x: np.ndarray, frequency: float, bandwidth: float, rate: float
    ) -> np.ndarray:
        """Second-order all-pole resonator (digital formant filter)."""
        r = np.exp(-np.pi * bandwidth / rate)
        theta = 2.0 * np.pi * frequency / rate
        a1 = -2.0 * r * np.cos(theta)
        a2 = r * r
        gain = (1.0 - r) * np.sqrt(1.0 - 2.0 * r * np.cos(2 * theta) + r * r)
        return sp_signal.lfilter([gain], [1.0, a1, a2], x)

    def _render_burst(
        self,
        phoneme: Phoneme,
        n: int,
        position: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Plosive: closure silence, then a shaped noise burst, then
        (for voiced stops) a short voice-bar."""
        rate = self.profile.sample_rate
        closure = int(0.4 * n)
        burst_len = n - closure
        burst = rng.normal(0.0, 1.0, burst_len)
        burst = self._resonator(
            burst, phoneme.formants_hz[0], phoneme.bandwidths_hz[0], rate
        )
        burst = self._radiation(burst)
        burst = self._envelope(burst, phoneme.amplitude, attack_fraction=0.1)
        segment = np.concatenate([np.zeros(closure), burst])
        if phoneme.voiced and closure > 8:
            voice_bar = self._radiation(
                self._excitation(get_voiced_bar(), closure, position, rng)
            )
            segment[:closure] += 0.15 * _normalize(voice_bar)
        return segment

    @staticmethod
    def _envelope(
        x: np.ndarray, amplitude: float, attack_fraction: float = 0.15
    ) -> np.ndarray:
        n = x.size
        if n == 0:
            return x
        normalized = _normalize(x)
        edge = max(1, int(attack_fraction * n))
        env = np.ones(n)
        ramp = 0.5 * (1 - np.cos(np.pi * np.arange(edge) / edge))
        env[:edge] = ramp
        env[-edge:] = ramp[::-1]
        return normalized * env * amplitude

    def _join(self, segments: list[np.ndarray]) -> np.ndarray:
        """Concatenate with ~5 ms cross-fades."""
        rate = self.profile.sample_rate
        overlap = int(0.005 * rate)
        out = segments[0]
        for segment in segments[1:]:
            fade = min(overlap, out.size, segment.size)
            if fade > 0:
                ramp = np.linspace(0.0, 1.0, fade)
                merged = out[-fade:] * (1 - ramp) + segment[:fade] * ramp
                out = np.concatenate([out[:-fade], merged, segment[fade:]])
            else:
                out = np.concatenate([out, segment])
        return out


def _normalize(x: np.ndarray) -> np.ndarray:
    peak = float(np.max(np.abs(x))) if x.size else 0.0
    if peak == 0.0:
        return x
    return x / peak


_VOICE_BAR = Phoneme(
    symbol="_BAR",
    kind=PhonemeKind.VOWEL,
    formants_hz=(150.0,),
    bandwidths_hz=(100.0,),
    voiced=True,
    duration_s=0.05,
    amplitude=0.3,
)


def get_voiced_bar() -> Phoneme:
    """Low-frequency voiced murmur used during voiced-stop closures."""
    return _VOICE_BAR
