"""Energy-based voice activity detection.

Used by the recogniser to trim leading/trailing silence before DTW
(which otherwise wastes its warping budget on silence) and by the
defense's dataset generator to align legitimate and attacked
recordings.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.framing import frame_params, frame_rms
from repro.dsp.signals import Signal
from repro.errors import RecognitionError, SignalDomainError


def frame_energies(
    signal: Signal,
    frame_length_s: float = 0.02,
    hop_length_s: float = 0.01,
) -> np.ndarray:
    """Per-frame RMS energies.

    Returns an array of length ``n_frames``; raises if the signal is
    shorter than one frame. The framing arithmetic and the per-frame
    reduction live in :mod:`repro.dsp.framing`, shared with the
    streaming chunker so online energies match these bitwise.
    """
    try:
        frame_len, hop = frame_params(
            signal.sample_rate, frame_length_s, hop_length_s
        )
    except SignalDomainError:
        raise RecognitionError(
            "frame and hop lengths must be positive"
        ) from None
    if signal.n_samples < frame_len:
        raise RecognitionError(
            f"signal ({signal.n_samples} samples) shorter than one VAD "
            f"frame ({frame_len})"
        )
    return frame_rms(signal.samples, frame_len, hop)


def voice_activity(
    signal: Signal,
    frame_length_s: float = 0.02,
    hop_length_s: float = 0.01,
    threshold_fraction: float = 0.03,
    hangover_frames: int = 8,
) -> np.ndarray:
    """Boolean activity mask per frame.

    A frame is active when its RMS exceeds ``threshold_fraction`` of
    the 95th-percentile frame RMS (adaptive to overall level, so the
    same setting works for quiet demodulated recordings and loud clean
    speech). The fraction is deliberately small: nonlinear
    demodulation expands a recording's dynamic range, and a stricter
    threshold would cut the softer phonemes out of attacked commands. A hangover extends activity to bridge brief intra-word
    dips such as stop closures.
    """
    if not 0 < threshold_fraction < 1:
        raise RecognitionError(
            f"threshold_fraction must be in (0, 1), got {threshold_fraction}"
        )
    energies = frame_energies(signal, frame_length_s, hop_length_s)
    reference = np.percentile(energies, 95)
    if reference <= 0:
        return np.zeros(energies.size, dtype=bool)
    active = energies > threshold_fraction * reference
    # Hangover smoothing: extend each active run by a few frames.
    extended = active.copy()
    for i in np.flatnonzero(active):
        extended[i : i + hangover_frames + 1] = True
    return extended


def trim_silence(
    signal: Signal,
    frame_length_s: float = 0.02,
    hop_length_s: float = 0.01,
    threshold_fraction: float = 0.03,
    padding_s: float = 0.05,
) -> Signal:
    """Cut leading and trailing silence, keeping a small pad.

    Returns the signal unchanged if no activity is detected (an
    all-silent recording stays intact rather than becoming empty, so
    downstream feature extraction fails loudly on length rather than
    mysteriously on an empty array).
    """
    mask = voice_activity(
        signal, frame_length_s, hop_length_s, threshold_fraction
    )
    active_indices = np.flatnonzero(mask)
    if active_indices.size == 0:
        return signal.copy()
    frame_len, hop = frame_params(
        signal.sample_rate, frame_length_s, hop_length_s
    )
    pad = int(round(padding_s * signal.sample_rate))
    start = max(0, active_indices[0] * hop - pad)
    end = min(
        signal.n_samples, active_indices[-1] * hop + frame_len + pad
    )
    return signal.replace(samples=signal.samples[start:end])
