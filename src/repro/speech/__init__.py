"""Speech substrate: synthesis, features and recognition.

The paper's evaluation needs real voice commands and a real recogniser
whose accuracy degrades with distortion and noise. Neither a TTS
engine nor a cloud ASR is available offline, so this package builds
both from first principles:

``phonemes``
    A compact phoneme inventory with formant targets.
``synthesis``
    A source-filter formant synthesiser producing intelligible-shaped
    command waveforms (glottal pulse train / noise excitation through
    cascaded formant resonators).
``commands``
    The voice-command corpus used across the evaluation ("okay google,
    take a picture", "alexa, add milk to my shopping list", ...).
``features``
    An MFCC front-end (mel filter bank + DCT) written on numpy.
``vad``
    Energy-based voice activity detection and silence trimming.
``recognizer``
    A DTW template keyword recogniser standing in for the victim's ASR:
    it has a genuine accuracy-vs-SNR/distortion curve, which is the
    property every experiment depends on.
"""

from repro.speech.phonemes import PHONEMES, Phoneme
from repro.speech.synthesis import FormantSynthesizer, SynthesisProfile
from repro.speech.commands import (
    COMMAND_CORPUS,
    VoiceCommand,
    get_command,
    synthesize_command,
)
from repro.speech.features import MfccConfig, MfccExtractor, mel_filterbank
from repro.speech.vad import frame_energies, trim_silence, voice_activity
from repro.speech.recognizer import KeywordRecognizer, RecognitionResult

__all__ = [
    "Phoneme",
    "PHONEMES",
    "FormantSynthesizer",
    "SynthesisProfile",
    "VoiceCommand",
    "COMMAND_CORPUS",
    "get_command",
    "synthesize_command",
    "MfccConfig",
    "MfccExtractor",
    "mel_filterbank",
    "frame_energies",
    "voice_activity",
    "trim_silence",
    "KeywordRecognizer",
    "RecognitionResult",
]
