"""Phoneme inventory with formant targets.

A reduced ARPAbet-style inventory sufficient to spell every command in
the evaluation corpus. Formant frequencies/bandwidths are standard
adult-male averages from the acoustic-phonetics literature (Peterson &
Barney vowel space; consonant loci approximated); they do not need to
be perfect — the recogniser is trained and tested on the *same*
synthesiser, so what matters is that different phonemes are acoustically
distinct and occupy realistic spectral regions (speech energy
concentrated below ~4 kHz, fricative energy up to 8 kHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError


class PhonemeKind:
    """Excitation/articulation classes the synthesiser distinguishes."""

    VOWEL = "vowel"
    NASAL = "nasal"
    LIQUID = "liquid"
    GLIDE = "glide"
    FRICATIVE = "fricative"
    PLOSIVE = "plosive"
    AFFRICATE = "affricate"
    SILENCE = "silence"


@dataclass(frozen=True)
class Phoneme:
    """One phoneme's acoustic recipe.

    Attributes
    ----------
    symbol:
        ARPAbet-style label.
    kind:
        One of :class:`PhonemeKind`.
    formants_hz:
        Up to three formant (resonance) centre frequencies.
    bandwidths_hz:
        Matching resonance bandwidths.
    voiced:
        Whether the glottal source runs during the phoneme.
    duration_s:
        Default duration when the command spelling does not override.
    amplitude:
        Relative segment level (vowels loudest, stops quietest).
    """

    symbol: str
    kind: str
    formants_hz: tuple[float, ...]
    bandwidths_hz: tuple[float, ...]
    voiced: bool
    duration_s: float
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if len(self.formants_hz) != len(self.bandwidths_hz):
            raise SynthesisError(
                f"phoneme {self.symbol!r}: formant and bandwidth counts "
                "differ"
            )
        if any(f <= 0 for f in self.formants_hz):
            raise SynthesisError(
                f"phoneme {self.symbol!r}: formants must be positive"
            )
        if self.duration_s <= 0:
            raise SynthesisError(
                f"phoneme {self.symbol!r}: duration must be positive"
            )


def _vowel(symbol: str, f1: float, f2: float, f3: float,
           duration: float = 0.14) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        kind=PhonemeKind.VOWEL,
        formants_hz=(f1, f2, f3),
        bandwidths_hz=(70.0, 100.0, 150.0),
        voiced=True,
        duration_s=duration,
        amplitude=1.0,
    )


def _nasal(symbol: str, f1: float, f2: float, f3: float) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        kind=PhonemeKind.NASAL,
        formants_hz=(f1, f2, f3),
        bandwidths_hz=(100.0, 150.0, 200.0),
        voiced=True,
        duration_s=0.09,
        amplitude=0.55,
    )


def _fricative(symbol: str, center: float, bandwidth: float,
               voiced: bool, amplitude: float) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        kind=PhonemeKind.FRICATIVE,
        formants_hz=(center,),
        bandwidths_hz=(bandwidth,),
        voiced=voiced,
        duration_s=0.10,
        amplitude=amplitude,
    )


def _plosive(symbol: str, burst_center: float, voiced: bool) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        kind=PhonemeKind.PLOSIVE,
        formants_hz=(burst_center,),
        bandwidths_hz=(1200.0,),
        voiced=voiced,
        duration_s=0.07,
        amplitude=0.5,
    )


#: The complete inventory keyed by symbol.
PHONEMES: dict[str, Phoneme] = {
    # Vowels (Peterson & Barney male averages, rounded).
    "IY": _vowel("IY", 270, 2290, 3010),   # beet
    "IH": _vowel("IH", 390, 1990, 2550),   # bit
    "EH": _vowel("EH", 530, 1840, 2480),   # bet
    "AE": _vowel("AE", 660, 1720, 2410),   # bat
    "AA": _vowel("AA", 730, 1090, 2440),   # father
    "AO": _vowel("AO", 570, 840, 2410),    # bought
    "UH": _vowel("UH", 440, 1020, 2240),   # book
    "UW": _vowel("UW", 300, 870, 2240),    # boot
    "AH": _vowel("AH", 640, 1190, 2390),   # but
    "ER": _vowel("ER", 490, 1350, 1690),   # bird
    "EY": _vowel("EY", 480, 2000, 2600),   # bait (monophthong approx.)
    "AY": _vowel("AY", 660, 1400, 2500),   # bite (midpoint approx.)
    "OW": _vowel("OW", 500, 1000, 2400),   # boat (midpoint approx.)
    "AW": _vowel("AW", 650, 1100, 2450),   # bout (midpoint approx.)
    # Nasals.
    "M": _nasal("M", 280, 1100, 2100),
    "N": _nasal("N", 280, 1600, 2600),
    "NG": _nasal("NG", 280, 2000, 2800),
    # Liquids and glides (voiced, vowel-like but shorter/quieter).
    "L": Phoneme("L", PhonemeKind.LIQUID, (360, 1200, 2700),
                 (80.0, 120.0, 180.0), True, 0.08, 0.7),
    "R": Phoneme("R", PhonemeKind.LIQUID, (420, 1200, 1600),
                 (80.0, 120.0, 180.0), True, 0.08, 0.7),
    "W": Phoneme("W", PhonemeKind.GLIDE, (300, 700, 2200),
                 (80.0, 120.0, 180.0), True, 0.07, 0.65),
    "Y": Phoneme("Y", PhonemeKind.GLIDE, (280, 2200, 2900),
                 (80.0, 120.0, 180.0), True, 0.07, 0.65),
    # Fricatives: (centre of noise shaping, bandwidth).
    "S": _fricative("S", 6000, 3000, False, 0.45),
    "SH": _fricative("SH", 3500, 2500, False, 0.5),
    "F": _fricative("F", 4500, 4000, False, 0.3),
    "TH": _fricative("TH", 5000, 4000, False, 0.25),
    "V": _fricative("V", 3500, 3500, True, 0.4),
    "Z": _fricative("Z", 5500, 3000, True, 0.45),
    "HH": _fricative("HH", 1500, 2000, False, 0.25),
    # Plosives: (burst centre, voicing).
    "P": _plosive("P", 1200, False),
    "B": _plosive("B", 900, True),
    "T": _plosive("T", 4000, False),
    "D": _plosive("D", 3200, True),
    "K": _plosive("K", 2200, False),
    "G": _plosive("G", 1800, True),
    # Affricates approximated as plosive-shaped noise with longer
    # frication.
    "CH": Phoneme("CH", PhonemeKind.AFFRICATE, (3200,), (2500.0,),
                  False, 0.11, 0.5),
    "JH": Phoneme("JH", PhonemeKind.AFFRICATE, (2800,), (2500.0,),
                  True, 0.11, 0.5),
    # Pause.
    "SIL": Phoneme("SIL", PhonemeKind.SILENCE, (1.0,), (1.0,),
                   False, 0.10, 0.0),
}


def get_phoneme(symbol: str) -> Phoneme:
    """Look up a phoneme, raising a helpful error for unknown symbols."""
    try:
        return PHONEMES[symbol]
    except KeyError:
        raise SynthesisError(
            f"unknown phoneme {symbol!r}; known symbols: "
            f"{sorted(PHONEMES)}"
        ) from None
