"""IEC 61672 A-weighting.

A-weighted levels approximate perceived loudness for moderate-level
sounds and are the unit in which the paper-family reports leakage
loudness ("the attacker's rig must stay quieter than X dBA").
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalDomainError


def a_weighting_db(frequency_hz: float) -> float:
    """A-weighting gain at a frequency, dB (0 dB at 1 kHz).

    Implements the analytic R_A(f) expression of IEC 61672-1 with the
    +2.0 dB normalisation constant.
    """
    if frequency_hz <= 0:
        raise SignalDomainError(
            f"frequency must be positive, got {frequency_hz}"
        )
    f2 = frequency_hz**2
    ra = (12194.0**2 * f2**2) / (
        (f2 + 20.6**2)
        * np.sqrt((f2 + 107.7**2) * (f2 + 737.9**2))
        * (f2 + 12194.0**2)
    )
    return float(20.0 * np.log10(ra) + 2.0)


def a_weighting_curve(frequencies_hz: np.ndarray) -> np.ndarray:
    """Vectorised A-weighting over an array of frequencies."""
    return np.array([a_weighting_db(f) for f in np.asarray(frequencies_hz)])


def a_weighted_spl(band_spls: np.ndarray, band_centers_hz: np.ndarray) -> float:
    """Combine per-band SPLs into a single A-weighted level, dBA.

    Each band level is offset by the A-weighting at its centre
    frequency, then the weighted powers are summed.
    """
    spls = np.asarray(band_spls, dtype=np.float64)
    centers = np.asarray(band_centers_hz, dtype=np.float64)
    if spls.shape != centers.shape:
        raise SignalDomainError(
            "band_spls and band_centers_hz must have identical shapes"
        )
    if spls.size == 0:
        raise SignalDomainError("at least one band is required")
    weighted = spls + a_weighting_curve(centers)
    return float(10.0 * np.log10(np.sum(10.0 ** (weighted / 10.0))))
