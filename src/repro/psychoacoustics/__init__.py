"""Human audibility models.

Whether a human bystander can hear a signal is the defining constraint
of the reproduced attack: the adversary must stay below the threshold
of hearing in the audible band while delivering enough ultrasonic power
for nonlinear demodulation at the victim. This package provides:

``threshold``
    Terhardt's analytic approximation of the absolute threshold of
    hearing in quiet.
``weighting``
    IEC A-weighting, used for reporting leakage loudness.
``audibility``
    Band-wise audibility analysis of arbitrary pressure waveforms and
    the scalar "audibility margin" used throughout the attack
    optimiser.
"""

from repro.psychoacoustics.threshold import (
    hearing_threshold_spl,
    threshold_curve,
)
from repro.psychoacoustics.weighting import a_weighting_db
from repro.psychoacoustics.audibility import (
    AudibilityReport,
    audibility_margin_db,
    audible,
    evaluate_audibility,
)

__all__ = [
    "hearing_threshold_spl",
    "threshold_curve",
    "a_weighting_db",
    "AudibilityReport",
    "evaluate_audibility",
    "audibility_margin_db",
    "audible",
]
