"""Band-wise audibility analysis of pressure waveforms.

The analysis splits the audible range into third-octave bands, converts
each band's power to SPL and compares it against the hearing threshold
at the band centre. The *audibility margin* is the largest excess over
threshold across bands: positive means a human in quiet conditions
would hear the signal; every dB negative is safety margin for the
attacker. This scalar is the objective the attack optimiser constrains
and the quantity Figures F2/F5 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.spl import REFERENCE_PRESSURE
from repro.dsp.signals import Signal, Unit
from repro.dsp.spectrum import welch_psd
from repro.psychoacoustics.threshold import (
    AUDIBLE_HIGH_HZ,
    AUDIBLE_LOW_HZ,
    hearing_threshold_spl,
)
from repro.psychoacoustics.weighting import a_weighted_spl
from repro.errors import SignalDomainError


def third_octave_bands(
    low_hz: float = AUDIBLE_LOW_HZ, high_hz: float = AUDIBLE_HIGH_HZ
) -> list[tuple[float, float, float]]:
    """Third-octave ``(low, center, high)`` edges covering a range.

    Bands follow the base-2 preferred series anchored at 1 kHz.
    """
    if low_hz <= 0 or high_hz <= low_hz:
        raise SignalDomainError(
            f"invalid band range [{low_hz}, {high_hz}]"
        )
    bands = []
    # Generate centres 2^(k/3) kHz for k covering the requested range.
    k = int(np.floor(3 * np.log2(low_hz / 1000.0))) - 1
    while True:
        center = 1000.0 * 2.0 ** (k / 3.0)
        low_edge = center / 2.0 ** (1.0 / 6.0)
        high_edge = center * 2.0 ** (1.0 / 6.0)
        if low_edge > high_hz:
            break
        if high_edge >= low_hz:
            bands.append((low_edge, center, high_edge))
        k += 1
    return bands


@dataclass(frozen=True)
class AudibilityReport:
    """Result of a band-wise audibility analysis.

    Attributes
    ----------
    band_centers_hz:
        Third-octave band centre frequencies.
    band_spls:
        SPL of the analysed signal in each band.
    band_thresholds:
        Hearing threshold in quiet at each band centre.
    margin_db:
        ``max(band_spls - band_thresholds)``; positive = audible.
    a_weighted_level_dba:
        Overall A-weighted level of the audible-band content.
    """

    band_centers_hz: np.ndarray
    band_spls: np.ndarray
    band_thresholds: np.ndarray
    margin_db: float
    a_weighted_level_dba: float

    @property
    def is_audible(self) -> bool:
        """True if any band exceeds the hearing threshold."""
        return self.margin_db > 0.0

    def worst_band_hz(self) -> float:
        """Centre frequency of the band closest to (or most over)
        threshold."""
        excess = self.band_spls - self.band_thresholds
        return float(self.band_centers_hz[int(np.argmax(excess))])


def evaluate_audibility(
    pressure: Signal,
    low_hz: float = AUDIBLE_LOW_HZ,
    high_hz: float = AUDIBLE_HIGH_HZ,
) -> AudibilityReport:
    """Analyse a pressure waveform's audibility to a nearby human.

    Parameters
    ----------
    pressure:
        Sound-pressure waveform in pascals at the listening position.
    low_hz, high_hz:
        Analysis range; defaults to the nominal audible range.
    """
    if pressure.unit != Unit.PASCAL:
        raise SignalDomainError(
            "audibility analysis requires a pressure waveform in "
            f"pascals, got unit {pressure.unit!r}"
        )
    # Long segments + Blackman: the lowest third-octave bands are a few
    # hertz wide, so the estimate needs fine resolution and low
    # spectral leakage to judge them fairly.
    psd = welch_psd(
        pressure,
        segment_length=min(32768, pressure.n_samples),
        window="blackman",
    )
    bands = third_octave_bands(low_hz, min(high_hz, pressure.nyquist * 0.999))
    centers = []
    spls = []
    thresholds = []
    for low_edge, center, high_edge in bands:
        power = psd.band_power(low_edge, min(high_edge, pressure.nyquist))
        spl = 10.0 * np.log10(
            max(power, 1e-30) / REFERENCE_PRESSURE**2
        )
        centers.append(center)
        spls.append(spl)
        thresholds.append(hearing_threshold_spl(center))
    centers_arr = np.asarray(centers)
    spls_arr = np.asarray(spls)
    thresholds_arr = np.asarray(thresholds)
    margin = float(np.max(spls_arr - thresholds_arr))
    dba = a_weighted_spl(spls_arr, centers_arr)
    return AudibilityReport(
        band_centers_hz=centers_arr,
        band_spls=spls_arr,
        band_thresholds=thresholds_arr,
        margin_db=margin,
        a_weighted_level_dba=dba,
    )


def audibility_margin_db(pressure: Signal) -> float:
    """Shorthand for ``evaluate_audibility(pressure).margin_db``."""
    return evaluate_audibility(pressure).margin_db


def audible(pressure: Signal) -> bool:
    """True if the waveform would be heard by a human in quiet."""
    return audibility_margin_db(pressure) > 0.0
