"""Absolute threshold of hearing in quiet.

Uses Terhardt's analytic approximation

    T(f) = 3.64 (f/1k)^-0.8 - 6.5 exp(-0.6 ((f/1k) - 3.3)^2)
           + 1e-3 (f/1k)^4      [dB SPL]

which matches the ISO 226 quiet threshold well between 20 Hz and
~18 kHz and rises steeply towards 20 kHz — the physiological cliff
that the whole inaudible-attack genre exploits. Above 20 kHz the
threshold is treated as effectively infinite (returned as
:data:`ULTRASONIC_THRESHOLD_SPL`): normal adult hearing does not
perceive ultrasound at the levels any speaker in this library can
produce.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalDomainError

#: Nominal lower edge of human hearing, Hz.
AUDIBLE_LOW_HZ = 20.0

#: Nominal upper edge of human hearing, Hz.
AUDIBLE_HIGH_HZ = 20000.0

#: Threshold assigned above 20 kHz — high enough that no simulated
#: source reaches it, finite so arithmetic stays well-behaved.
ULTRASONIC_THRESHOLD_SPL = 200.0


def hearing_threshold_spl(frequency_hz: float) -> float:
    """Threshold of hearing in quiet at a single frequency, dB SPL."""
    if frequency_hz <= 0:
        raise SignalDomainError(
            f"frequency must be positive, got {frequency_hz}"
        )
    if frequency_hz > AUDIBLE_HIGH_HZ:
        return ULTRASONIC_THRESHOLD_SPL
    f = max(frequency_hz, AUDIBLE_LOW_HZ) / 1000.0
    threshold = (
        3.64 * f**-0.8
        - 6.5 * np.exp(-0.6 * (f - 3.3) ** 2)
        + 1e-3 * f**4
    )
    return float(threshold)


def threshold_curve(frequencies_hz: np.ndarray) -> np.ndarray:
    """Vectorised threshold over an array of frequencies."""
    freqs = np.asarray(frequencies_hz, dtype=np.float64)
    if np.any(freqs <= 0):
        raise SignalDomainError("all frequencies must be positive")
    return np.array([hearing_threshold_spl(f) for f in freqs])
