"""From-scratch linear classifiers (no sklearn).

Two models with a shared interface (`fit`, `predict`,
`decision_scores`):

:class:`LogisticRegression`
    Batch gradient descent on the regularised cross-entropy. The
    default detector model — its scores are calibrated probabilities,
    convenient for ROC sweeps.
:class:`LinearSvm`
    Hinge-loss linear SVM via subgradient descent (Pegasos-style
    schedule). Included because the paper family reports SVM results;
    experiment T3 compares both.

Both expect standardised features; :class:`StandardScaler` provides
the (train-set-fitted) transform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DefenseError


class StandardScaler:
    """Per-feature zero-mean unit-variance standardisation."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn mean and scale from a training matrix."""
        matrix = _validate_matrix(features)
        self.mean_ = np.mean(matrix, axis=0)
        scale = np.std(matrix, axis=0)
        # A constant feature carries no information; mapping it to zero
        # (rather than dividing by ~0) keeps optimisation stable.
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise DefenseError("scaler used before fit()")
        matrix = _validate_matrix(features)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise DefenseError(
                f"feature count mismatch: scaler saw "
                f"{self.mean_.shape[0]}, got {matrix.shape[1]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(features).transform(features)


class LogisticRegression:
    """L2-regularised logistic regression, batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient step size.
    n_iterations:
        Number of full-batch steps.
    l2:
        Ridge penalty on the weights (not the intercept).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 2000,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0 or n_iterations < 1 or l2 < 0:
            raise DefenseError(
                "invalid hyper-parameters for logistic regression"
            )
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "LogisticRegression":
        """Train on a standardised feature matrix and 0/1 labels."""
        x, y = _validate_training(features, labels)
        n_samples, n_features = x.shape
        weights = np.zeros(n_features)
        intercept = 0.0
        for _ in range(self.n_iterations):
            scores = x @ weights + intercept
            probabilities = _sigmoid(scores)
            error = probabilities - y
            grad_w = x.T @ error / n_samples + self.l2 * weights
            grad_b = float(np.mean(error))
            weights -= self.learning_rate * grad_w
            intercept -= self.learning_rate * grad_b
        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Attack probability per row, in [0, 1]."""
        if self.weights_ is None:
            raise DefenseError("classifier used before fit()")
        matrix = _validate_matrix(features)
        return _sigmoid(matrix @ self.weights_ + self.intercept_)

    def predict(
        self, features: np.ndarray, threshold: float = 0.5
    ) -> np.ndarray:
        """Hard 0/1 predictions at a probability threshold."""
        if not 0 < threshold < 1:
            raise DefenseError(
                f"threshold must be in (0, 1), got {threshold}"
            )
        return (self.decision_scores(features) >= threshold).astype(int)


class LinearSvm:
    """Linear SVM trained by Pegasos-style subgradient descent.

    Parameters
    ----------
    regularization:
        The lambda of the hinge objective; smaller = harder margin.
    n_epochs:
        Passes over the (shuffled) training set.
    seed:
        Shuffle seed — training is deterministic given the seed.
    """

    def __init__(
        self,
        regularization: float = 1e-2,
        n_epochs: int = 200,
        seed: int = 0,
    ) -> None:
        if regularization <= 0 or n_epochs < 1:
            raise DefenseError("invalid hyper-parameters for linear SVM")
        self.regularization = regularization
        self.n_epochs = n_epochs
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSvm":
        """Train on standardised features and 0/1 labels."""
        x, y01 = _validate_training(features, labels)
        y = 2.0 * y01 - 1.0  # hinge loss wants +-1
        n_samples, n_features = x.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        intercept = 0.0
        step_count = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for index in order:
                step_count += 1
                eta = 1.0 / (self.regularization * step_count)
                margin = y[index] * (x[index] @ weights + intercept)
                if margin < 1.0:
                    weights = (
                        (1 - eta * self.regularization) * weights
                        + eta * y[index] * x[index]
                    )
                    intercept += eta * y[index]
                else:
                    weights = (1 - eta * self.regularization) * weights
        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Signed margin per row (positive = attack side)."""
        if self.weights_ is None:
            raise DefenseError("classifier used before fit()")
        matrix = _validate_matrix(features)
        return matrix @ self.weights_ + self.intercept_

    def predict(
        self, features: np.ndarray, threshold: float = 0.0
    ) -> np.ndarray:
        """Hard 0/1 predictions at a margin threshold."""
        return (self.decision_scores(features) >= threshold).astype(int)


def _sigmoid(scores: np.ndarray) -> np.ndarray:
    clipped = np.clip(scores, -60.0, 60.0)
    return 1.0 / (1.0 + np.exp(-clipped))


def _validate_matrix(features: np.ndarray) -> np.ndarray:
    matrix = np.asarray(features, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise DefenseError(
            f"expected a non-empty 2-D feature matrix, got shape "
            f"{matrix.shape}"
        )
    if not np.all(np.isfinite(matrix)):
        raise DefenseError("features must be finite")
    return matrix


def _validate_training(
    features: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    x = _validate_matrix(features)
    y = np.asarray(labels, dtype=np.float64).ravel()
    if y.shape[0] != x.shape[0]:
        raise DefenseError(
            f"label count ({y.shape[0]}) != sample count ({x.shape[0]})"
        )
    unique = set(np.unique(y))
    if not unique <= {0.0, 1.0}:
        raise DefenseError(f"labels must be 0/1, got values {sorted(unique)}")
    if len(unique) < 2:
        raise DefenseError(
            "training data contains a single class; a discriminative "
            "model cannot be fit"
        )
    return x, y
