"""Defense against inaudible voice commands (core contribution, part B).

Nonlinear demodulation cannot deliver a *clean* voice command: the
microphone's quadratic term that writes ``2 a2 m(t) c`` into the voice
band also writes ``a2 m(t)^2`` into the very low frequencies. Genuine
speech — produced by a vocal tract and radiated linearly — has
essentially no coherent sub-50 Hz content, and what little low
frequency noise a room contributes is uncorrelated with the speech.
The defense turns this into a detector:

``traces``
    Extraction of the low-frequency demodulation traces and their
    correlation with the voice-band envelope.
``features``
    The fixed-length feature vector summarising a recording.
``classifier``
    From-scratch logistic regression and linear SVM (no sklearn).
``dataset``
    Labelled dataset synthesis: legitimate playbacks vs attacked
    recordings across commands, distances and attackers.
``detector``
    The end-to-end :class:`InaudibleVoiceDetector` API.
``metrics``
    ROC/AUC/confusion utilities for the evaluation.
"""

from repro.defense.traces import (
    TraceAnalysis,
    analyze_traces,
    band_envelope,
)
from repro.defense.features import FEATURE_NAMES, feature_vector
from repro.defense.classifier import (
    LinearSvm,
    LogisticRegression,
    StandardScaler,
)
from repro.defense.dataset import DatasetConfig, LabeledDataset, build_dataset
from repro.defense.detector import DetectionResult, InaudibleVoiceDetector
from repro.defense.guard import GuardedOutcome, GuardedVoiceAssistant
from repro.defense.metrics import (
    ConfusionMatrix,
    RocCurve,
    auc,
    confusion_matrix,
    roc_curve,
)

__all__ = [
    "TraceAnalysis",
    "analyze_traces",
    "band_envelope",
    "feature_vector",
    "FEATURE_NAMES",
    "LogisticRegression",
    "LinearSvm",
    "StandardScaler",
    "DatasetConfig",
    "LabeledDataset",
    "build_dataset",
    "InaudibleVoiceDetector",
    "DetectionResult",
    "GuardedVoiceAssistant",
    "GuardedOutcome",
    "RocCurve",
    "roc_curve",
    "auc",
    "ConfusionMatrix",
    "confusion_matrix",
]
