"""Detection metrics: ROC, AUC, confusion matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DefenseError


@dataclass(frozen=True)
class RocCurve:
    """A receiver operating characteristic.

    Attributes
    ----------
    false_positive_rates, true_positive_rates:
        Curve points, ascending in FPR, including (0,0) and (1,1).
    thresholds:
        Score threshold per point (descending; the endpoints use
        +-inf sentinels).
    """

    false_positive_rates: np.ndarray
    true_positive_rates: np.ndarray
    thresholds: np.ndarray

    def auc(self) -> float:
        """Area under the curve via the trapezoid rule."""
        return float(
            np.trapezoid(self.true_positive_rates, self.false_positive_rates)
        )

    def tpr_at_fpr(self, max_fpr: float) -> float:
        """Best TPR achievable with FPR <= ``max_fpr``.

        The paper-family operating point is "high detection at ~1-5 %
        false alarms"; this helper reads that off the curve.
        """
        if not 0 <= max_fpr <= 1:
            raise DefenseError(f"max_fpr must be in [0, 1], got {max_fpr}")
        mask = self.false_positive_rates <= max_fpr
        if not np.any(mask):
            return 0.0
        return float(np.max(self.true_positive_rates[mask]))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC of scores against 0/1 labels.

    Positive class is 1 (attack). Handles ties by grouping equal
    scores into single curve points.
    """
    y = np.asarray(labels).ravel().astype(int)
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.shape != s.shape:
        raise DefenseError("labels and scores must have equal length")
    n_pos = int(np.sum(y == 1))
    n_neg = int(np.sum(y == 0))
    if n_pos == 0 or n_neg == 0:
        raise DefenseError(
            "ROC needs both classes present "
            f"(got {n_pos} positives, {n_neg} negatives)"
        )
    order = np.argsort(-s, kind="stable")
    sorted_scores = s[order]
    sorted_labels = y[order]
    tps = np.cumsum(sorted_labels == 1)
    fps = np.cumsum(sorted_labels == 0)
    # Keep only the last index of each tied-score run.
    distinct = np.flatnonzero(np.diff(sorted_scores))
    keep = np.r_[distinct, sorted_scores.size - 1]
    tpr = np.r_[0.0, tps[keep] / n_pos]
    fpr = np.r_[0.0, fps[keep] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[keep]]
    return RocCurve(
        false_positive_rates=fpr,
        true_positive_rates=tpr,
        thresholds=thresholds,
    )


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve."""
    return roc_curve(labels, scores).auc()


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = attack)."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        """Total classified samples."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """Fraction of correct decisions."""
        if self.total == 0:
            raise DefenseError("empty confusion matrix has no accuracy")
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def true_positive_rate(self) -> float:
        """Detection rate (recall on attacks)."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        """False-alarm rate on genuine recordings."""
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    @property
    def precision(self) -> float:
        """Fraction of attack calls that were real attacks."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    def f1(self) -> float:
        """Harmonic mean of precision and detection rate."""
        p = self.precision
        r = self.true_positive_rate
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def confusion_matrix(
    labels: np.ndarray, predictions: np.ndarray
) -> ConfusionMatrix:
    """Count a binary confusion matrix from 0/1 arrays."""
    y = np.asarray(labels).ravel().astype(int)
    p = np.asarray(predictions).ravel().astype(int)
    if y.shape != p.shape:
        raise DefenseError("labels and predictions must have equal length")
    if y.size == 0:
        raise DefenseError("cannot build a confusion matrix of nothing")
    return ConfusionMatrix(
        true_positives=int(np.sum((y == 1) & (p == 1))),
        false_positives=int(np.sum((y == 0) & (p == 1))),
        true_negatives=int(np.sum((y == 0) & (p == 0))),
        false_negatives=int(np.sum((y == 1) & (p == 0))),
    )
