"""The end-to-end inaudible-command detector.

Wraps feature extraction, standardisation and a linear classifier into
the API a voice assistant would actually call before acting on a
recognised command::

    detector = InaudibleVoiceDetector()
    detector.fit(train_dataset)
    verdict = detector.classify(recording)
    if verdict.is_attack:
        ignore_command()

The paper family reports ~99 % accuracy for this style of defense;
experiment T3/F8 reproduce the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.defense.classifier import (
    LinearSvm,
    LogisticRegression,
    StandardScaler,
)
from repro.defense.dataset import LabeledDataset
from repro.defense.features import FEATURE_NAMES, feature_vector
from repro.defense.metrics import ConfusionMatrix, confusion_matrix
from repro.dsp.signals import Signal
from repro.errors import DefenseError


@dataclass(frozen=True)
class DetectionResult:
    """Verdict on one recording.

    Attributes
    ----------
    is_attack:
        The hard decision at the configured threshold.
    score:
        The classifier score (probability for logistic regression,
        margin for the SVM).
    features:
        The extracted feature vector (diagnostic).
    """

    is_attack: bool
    score: float
    features: np.ndarray


class InaudibleVoiceDetector:
    """Detects nonlinearity-injected voice commands.

    Parameters
    ----------
    model:
        ``"logistic"`` (default) or ``"svm"``.
    threshold:
        Decision threshold on the model's score. The default 0.5 suits
        logistic probabilities; SVM margins typically use 0.0.
    feature_subset:
        Optional subset of :data:`FEATURE_NAMES` (ablation A3).
    """

    def __init__(
        self,
        model: str = "logistic",
        threshold: float | None = None,
        feature_subset: tuple[str, ...] | None = None,
    ) -> None:
        if model == "logistic":
            self._classifier = LogisticRegression()
            self.threshold = 0.5 if threshold is None else threshold
        elif model == "svm":
            self._classifier = LinearSvm()
            self.threshold = 0.0 if threshold is None else threshold
        else:
            raise DefenseError(
                f"unknown model {model!r}; choose 'logistic' or 'svm'"
            )
        self.model_name = model
        self.feature_subset = feature_subset
        self._scaler = StandardScaler()
        self._fitted = False

    def fit(self, dataset: LabeledDataset) -> "InaudibleVoiceDetector":
        """Train on a labelled dataset (must contain both classes)."""
        if self.feature_subset is not None:
            expected = tuple(self.feature_subset)
            if dataset.feature_names != expected:
                raise DefenseError(
                    "dataset features "
                    f"{dataset.feature_names} do not match the "
                    f"detector's subset {expected}; build the dataset "
                    "with the same feature_subset"
                )
        standardized = self._scaler.fit_transform(dataset.features)
        self._classifier.fit(standardized, dataset.labels)
        self._fitted = True
        return self

    def score(self, recording: Signal) -> float:
        """Classifier score of a single recording."""
        self._require_fitted()
        vector = feature_vector(recording, subset=self.feature_subset)
        standardized = self._scaler.transform(vector.reshape(1, -1))
        return float(self._classifier.decision_scores(standardized)[0])

    def classify(self, recording: Signal) -> DetectionResult:
        """Full verdict on a single recording."""
        self._require_fitted()  # before paying for feature extraction
        vector = feature_vector(recording, subset=self.feature_subset)
        return self.classify_features(vector)

    def classify_features(self, vector: np.ndarray) -> DetectionResult:
        """Verdict on an already-extracted feature vector.

        The scoring half of :meth:`classify`, exposed for callers
        that obtain the features elsewhere — the streaming guard
        accumulates them incrementally as an utterance's chunks
        arrive, then scores here through exactly the arithmetic the
        offline path uses (which is what makes the two bitwise
        identical).
        """
        self._require_fitted()
        vector = np.asarray(vector, dtype=np.float64)
        width = (
            len(self.feature_subset)
            if self.feature_subset is not None
            else len(FEATURE_NAMES)
        )
        if vector.shape != (width,):
            raise DefenseError(
                f"expected a feature vector of shape ({width},), got "
                f"{vector.shape}"
            )
        standardized = self._scaler.transform(vector.reshape(1, -1))
        score = float(self._classifier.decision_scores(standardized)[0])
        return DetectionResult(
            is_attack=score >= self.threshold,
            score=score,
            features=vector,
        )

    def scores_for(self, dataset: LabeledDataset) -> np.ndarray:
        """Scores for every row of a pre-extracted dataset."""
        self._require_fitted()
        standardized = self._scaler.transform(dataset.features)
        return self._classifier.decision_scores(standardized)

    def evaluate(self, dataset: LabeledDataset) -> ConfusionMatrix:
        """Confusion matrix of hard decisions on a dataset."""
        scores = self.scores_for(dataset)
        predictions = (scores >= self.threshold).astype(int)
        return confusion_matrix(dataset.labels, predictions)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise DefenseError(
                "detector used before fit(); train it on a labelled "
                "dataset first"
            )
