"""The defense's feature vector.

A thin, stable layer between trace analysis and the classifier: the
order and meaning of entries is fixed by :data:`FEATURE_NAMES`, and the
feature-ablation experiment (A3) selects subsets by name.
"""

from __future__ import annotations

import numpy as np

from repro.defense.traces import TraceAnalysis, analyze_traces
from repro.dsp.signals import Signal
from repro.errors import DefenseError

#: Names of the entries of the feature vector, in order.
FEATURE_NAMES: tuple[str, ...] = (
    "trace_power_db",
    "trace_to_voice_db",
    "envelope_correlation",
    "envelope_power_correlation",
    "voice_power_db",
)


def features_from_analysis(analysis: TraceAnalysis) -> np.ndarray:
    """Assemble the vector from a completed trace analysis."""
    return np.array(
        [
            analysis.trace_power_db,
            analysis.trace_to_voice_db,
            analysis.envelope_correlation,
            analysis.envelope_power_correlation,
            analysis.voice_power_db,
        ],
        dtype=np.float64,
    )


def feature_vector(
    recording: Signal, subset: tuple[str, ...] | None = None
) -> np.ndarray:
    """Extract the defense features of a recording.

    Parameters
    ----------
    recording:
        Device-rate digital recording.
    subset:
        Optional feature-name subset (order preserved from
        :data:`FEATURE_NAMES`); used by the ablation experiments.
    """
    full = features_from_analysis(analyze_traces(recording))
    if subset is None:
        return full
    indices = []
    for name in subset:
        if name not in FEATURE_NAMES:
            raise DefenseError(
                f"unknown feature {name!r}; known: {FEATURE_NAMES}"
            )
        indices.append(FEATURE_NAMES.index(name))
    if not indices:
        raise DefenseError("feature subset must not be empty")
    return full[indices]
