"""The defense's feature vector.

A thin, stable layer between trace analysis and the classifier: the
order and meaning of entries is fixed by :data:`FEATURE_NAMES`, and the
feature-ablation experiment (A3) selects subsets by name.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.defense.traces import (
    TraceAnalysis,
    analyze_traces,
    analyze_traces_batch,
)
from repro.dsp.signals import Signal, SignalBatch
from repro.errors import DefenseError

#: Names of the entries of the feature vector, in order.
FEATURE_NAMES: tuple[str, ...] = (
    "trace_power_db",
    "trace_to_voice_db",
    "envelope_correlation",
    "envelope_power_correlation",
    "voice_power_db",
)


def features_from_analysis(
    analysis: TraceAnalysis, subset: tuple[str, ...] | None = None
) -> np.ndarray:
    """Assemble the vector from a completed trace analysis.

    ``subset`` selects entries by name exactly like
    :func:`feature_vector` — the streaming guard builds its vectors
    here from incrementally-accumulated analyses, and the selection
    must match the offline path's.
    """
    full = np.array(
        [
            analysis.trace_power_db,
            analysis.trace_to_voice_db,
            analysis.envelope_correlation,
            analysis.envelope_power_correlation,
            analysis.voice_power_db,
        ],
        dtype=np.float64,
    )
    return _select(full, subset)


def feature_vector(
    recording: Signal, subset: tuple[str, ...] | None = None
) -> np.ndarray:
    """Extract the defense features of a recording.

    Parameters
    ----------
    recording:
        Device-rate digital recording.
    subset:
        Optional feature-name subset (order preserved from
        :data:`FEATURE_NAMES`); used by the ablation experiments.
    """
    full = features_from_analysis(analyze_traces(recording))
    return _select(full, subset)


def _select(
    full: np.ndarray, subset: tuple[str, ...] | None
) -> np.ndarray:
    if subset is None:
        return full
    indices = []
    for name in subset:
        if name not in FEATURE_NAMES:
            raise DefenseError(
                f"unknown feature {name!r}; known: {FEATURE_NAMES}"
            )
        indices.append(FEATURE_NAMES.index(name))
    if not indices:
        raise DefenseError("feature subset must not be empty")
    return full[..., indices]


def feature_matrix(
    recordings: Sequence[Signal],
    subset: tuple[str, ...] | None = None,
) -> np.ndarray:
    """Defense features of many recordings, extracted in batches.

    Row ``i`` of the returned ``(n_recordings, n_features)`` matrix is
    bitwise identical to ``feature_vector(recordings[i], subset)`` —
    but equal-length recordings at one sample rate are analysed
    together as a :class:`~repro.dsp.signals.SignalBatch` (stacked
    Welch PSDs and band envelopes), which is how the defense
    experiments' dataset synthesis amortises its DSP. Mixed lengths or
    rates are handled by grouping; input order is preserved.
    """
    if not recordings:
        raise DefenseError("feature_matrix needs at least one recording")
    groups: dict[tuple[int, float, str], list[int]] = {}
    for index, recording in enumerate(recordings):
        key = (
            recording.n_samples,
            recording.sample_rate,
            recording.unit,
        )
        groups.setdefault(key, []).append(index)
    width = len(subset) if subset is not None else len(FEATURE_NAMES)
    out = np.empty((len(recordings), width), dtype=np.float64)
    for indices in groups.values():
        batch = SignalBatch.from_signals(
            [recordings[i] for i in indices]
        )
        analyses = analyze_traces_batch(batch)
        for row_index, analysis in zip(indices, analyses):
            out[row_index] = _select(
                features_from_analysis(analysis), subset
            )
    return out
