"""Labelled dataset synthesis for the defense.

Builds paired recordings through the *full physical pipeline*:

* label 0 (genuine): a talker/loudspeaker plays the command audibly at
  a randomised conversational level; the victim microphone records it.
* label 1 (attack): an inaudible attacker (single-speaker at full
  drive, or the long-range array) delivers the same command; the same
  microphone records the demodulated result.

Each recording then yields one defense feature vector. Conditions
(command, distance, trial noise) are crossed so the classifier cannot
shortcut on loudness or command identity; the experiment configs hold
out commands and distances to test generalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.defense.features import FEATURE_NAMES, feature_matrix
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
    horn_tweeter,
    ultrasonic_piezo_element,
)
from repro.speech.commands import COMMAND_CORPUS, synthesize_command
from repro.errors import DefenseError


@dataclass(frozen=True)
class DatasetConfig:
    """Recipe for a labelled defense dataset.

    Parameters
    ----------
    commands:
        Corpus command names to include.
    distances_m:
        Source-to-microphone distances to cross with commands.
    n_trials:
        Recordings per (command, distance, class) cell; each trial
        redraws ambient and microphone noise and the talker level.
    attacker_kind:
        ``"single_full"`` (wideband speaker at full drive — the strong,
        conspicuous attack) or ``"long_range"`` (the array).
    n_array_speakers:
        Sideband speaker count for the long-range attacker.
    device:
        ``"phone"`` or ``"echo"`` microphone preset.
    speech_spl_range:
        Genuine talker level range (uniformly drawn per trial), dB SPL
        at 1 m.
    ambient_noise_spl:
        Room noise floor, dB SPL.
    seed:
        Master seed; the dataset is a pure function of its config.
    """

    commands: tuple[str, ...] = ("ok_google", "alexa", "take_a_picture")
    distances_m: tuple[float, ...] = (1.0, 2.0)
    n_trials: int = 5
    attacker_kind: str = "single_full"
    n_array_speakers: int = 16
    device: str = "phone"
    speech_spl_range: tuple[float, float] = (55.0, 68.0)
    ambient_noise_spl: float = 40.0
    feature_subset: tuple[str, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.commands:
            raise DefenseError("dataset needs at least one command")
        unknown = [c for c in self.commands if c not in COMMAND_CORPUS]
        if unknown:
            raise DefenseError(f"unknown commands {unknown}")
        if not self.distances_m or any(d <= 0 for d in self.distances_m):
            raise DefenseError("distances must be a non-empty positive list")
        if self.n_trials < 1:
            raise DefenseError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.attacker_kind not in ("single_full", "long_range"):
            raise DefenseError(
                f"unknown attacker_kind {self.attacker_kind!r}"
            )
        if self.device not in ("phone", "echo"):
            raise DefenseError(f"unknown device {self.device!r}")
        low, high = self.speech_spl_range
        if not 30 <= low <= high <= 100:
            raise DefenseError(
                f"implausible speech SPL range {self.speech_spl_range}"
            )


@dataclass
class LabeledDataset:
    """Feature matrix + labels + per-row condition metadata."""

    features: np.ndarray
    labels: np.ndarray
    metadata: list[dict] = field(repr=False)
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise DefenseError("features/labels row counts differ")
        if len(self.metadata) != self.features.shape[0]:
            raise DefenseError("metadata length mismatch")

    @property
    def n_samples(self) -> int:
        """Number of labelled recordings."""
        return int(self.features.shape[0])

    def split(
        self, train_fraction: float, rng: np.random.Generator
    ) -> tuple["LabeledDataset", "LabeledDataset"]:
        """Random stratified-ish split into train and test subsets."""
        if not 0 < train_fraction < 1:
            raise DefenseError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        order = rng.permutation(self.n_samples)
        n_train = max(1, int(round(train_fraction * self.n_samples)))
        n_train = min(n_train, self.n_samples - 1)
        return self._subset(order[:n_train]), self._subset(order[n_train:])

    def filter(self, predicate) -> "LabeledDataset":
        """Subset by a metadata predicate (e.g. held-out commands)."""
        indices = np.array(
            [i for i, meta in enumerate(self.metadata) if predicate(meta)],
            dtype=int,
        )
        if indices.size == 0:
            raise DefenseError("filter produced an empty dataset")
        return self._subset(indices)

    def _subset(self, indices: np.ndarray) -> "LabeledDataset":
        return LabeledDataset(
            features=self.features[indices],
            labels=self.labels[indices],
            metadata=[self.metadata[i] for i in indices],
            feature_names=self.feature_names,
        )


def _microphone(device: str):
    if device == "phone":
        return android_phone_microphone()
    return amazon_echo_microphone()


def _build_attacker(config: DatasetConfig, position: Position):
    if config.attacker_kind == "single_full":
        return SingleSpeakerAttacker(horn_tweeter(), position)
    array = grid_array(
        config.n_array_speakers, position, ultrasonic_piezo_element
    )
    return LongRangeAttacker(array, allocation_strategy="waterfill")


def build_dataset(config: DatasetConfig) -> LabeledDataset:
    """Synthesise the dataset a :class:`DatasetConfig` describes.

    Attack emissions are generated once per command and reused across
    distances and trials (the waveform the attacker radiates does not
    depend on them); trial variation comes from ambient noise,
    microphone self-noise and talker level.
    """
    rng = np.random.default_rng(config.seed)
    microphone = _microphone(config.device)
    channel = AcousticChannel(
        room=None, ambient_noise_spl=config.ambient_noise_spl
    )
    origin = Position(0.0, 2.0, 1.0)
    attacker = _build_attacker(config, origin)
    recordings = []
    labels: list[int] = []
    metadata: list[dict] = []
    names = config.feature_subset or FEATURE_NAMES
    for command in config.commands:
        voice = synthesize_command(command, rng)
        attack_sources = list(attacker.emit(voice).sources)
        for distance in config.distances_m:
            mic_position = origin.translated(distance, 0.0, 0.0)
            for _ in range(config.n_trials):
                # Genuine playback at a randomised talker level.
                spl = rng.uniform(*config.speech_spl_range)
                playback = AudiblePlaybackAttacker(
                    origin, speech_spl_at_1m=spl
                )
                genuine_sources = list(playback.emit(voice).sources)
                recordings.append(
                    microphone.record(
                        channel.receive(
                            genuine_sources, mic_position, rng
                        ),
                        rng,
                    )
                )
                labels.append(0)
                metadata.append(
                    {
                        "command": command,
                        "distance_m": distance,
                        "kind": "genuine",
                        "speech_spl": spl,
                    }
                )
                recordings.append(
                    microphone.record(
                        channel.receive(
                            attack_sources, mic_position, rng
                        ),
                        rng,
                    )
                )
                labels.append(1)
                metadata.append(
                    {
                        "command": command,
                        "distance_m": distance,
                        "kind": config.attacker_kind,
                    }
                )
    # Every random draw above happened in the same order as the
    # per-recording pipeline used to make them, so deferring feature
    # extraction to one batched pass changes throughput, not data.
    return LabeledDataset(
        features=feature_matrix(recordings, subset=names),
        labels=np.asarray(labels, dtype=int),
        metadata=metadata,
        feature_names=tuple(names),
    )
