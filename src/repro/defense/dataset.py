"""Labelled dataset synthesis for the defense.

Builds paired recordings through the *full physical pipeline*:

* label 0 (genuine): a talker/loudspeaker plays the command audibly at
  a randomised conversational level; the victim microphone records it.
* label 1 (attack): an inaudible attacker (single-speaker at full
  drive, or the long-range array) delivers the same command; the same
  microphone records the demodulated result.

Each recording then yields one defense feature vector. Conditions
(command, distance, trial noise) are crossed so the classifier cannot
shortcut on loudness or command identity; the experiment configs hold
out commands and distances to test generalisation.

Synthesis runs on the shared declarative trial pipeline
(:mod:`repro.sim.pipeline`), ending at the ADC instead of the
recogniser: each (command, distance, class) cell is one trial group
whose deterministic transmission — direct wave plus any room
reflections, plus the interference bed — is propagated once and whose
per-trial stages run as stacked batches. The genuine talker's
randomised level rides the pipeline's per-trial gain stage
(:func:`repro.sim.pipeline.level_stage`): propagation is linear, so a
level drawn per trial is exactly a gain on a transmission rendered
once at the reference level. ``scenario`` selects the environment
from the :mod:`repro.sim.spec` registry, which is what lets the
defense train and evaluate inside reverberant rooms, against walking
attackers and under TV interference rather than only in the free
field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.defense.features import (
    FEATURE_NAMES,
    feature_matrix,
    feature_vector,
)
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
    horn_tweeter,
    ultrasonic_piezo_element,
)
from repro.sim.cache import EmissionCache
from repro.sim.pipeline import build_pipeline, level_stage
from repro.sim.scenario import Scenario
from repro.sim.spec import RIG_POSITION, ScenarioSpec, get_scenario
from repro.speech.commands import COMMAND_CORPUS, synthesize_command
from repro.errors import DefenseError, ExperimentError

#: The reference SPL (dB at 1 m) the genuine playback is *rendered*
#: at; each trial's drawn talker level is applied as a gain relative
#: to this — conversational speech, matching the
#: :class:`~repro.attack.baselines.AudiblePlaybackAttacker` default.
GENUINE_REFERENCE_SPL = 60.0


@dataclass(frozen=True)
class DatasetConfig:
    """Recipe for a labelled defense dataset.

    Parameters
    ----------
    commands:
        Corpus command names to include.
    distances_m:
        Source-to-microphone distances to cross with commands.
        Distances the chosen scenario's room cannot host are dropped
        (the sweep stays physically meaningful); at least one must
        fit.
    n_trials:
        Recordings per (command, distance, class) cell; each trial
        redraws ambient and microphone noise and the talker level.
    attacker_kind:
        ``"single_full"`` (wideband speaker at full drive — the strong,
        conspicuous attack) or ``"long_range"`` (the array).
    n_array_speakers:
        Sideband speaker count for the long-range attacker.
    device:
        ``"phone"`` or ``"echo"`` microphone preset.
    speech_spl_range:
        Genuine talker level range (uniformly drawn per trial), dB SPL
        at 1 m.
    ambient_noise_spl:
        Room noise floor, dB SPL. Honoured in the free field (the
        legacy knob); named scenarios supply their own floor — a
        living room's 42 dB, outdoor wind's 55 dB — so the
        environment, not the config, sets the noise.
    scenario:
        Named environment from the :mod:`repro.sim.spec` registry the
        recordings are made in (``"free_field"``, ``"living_room"``,
        ``"tv_interference"``, ...).
    seed:
        Master seed; the dataset is a pure function of its config.
    """

    commands: tuple[str, ...] = ("ok_google", "alexa", "take_a_picture")
    distances_m: tuple[float, ...] = (1.0, 2.0)
    n_trials: int = 5
    attacker_kind: str = "single_full"
    n_array_speakers: int = 16
    device: str = "phone"
    speech_spl_range: tuple[float, float] = (55.0, 68.0)
    ambient_noise_spl: float = 40.0
    scenario: str = "free_field"
    feature_subset: tuple[str, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.commands:
            raise DefenseError("dataset needs at least one command")
        unknown = [c for c in self.commands if c not in COMMAND_CORPUS]
        if unknown:
            raise DefenseError(f"unknown commands {unknown}")
        if not self.distances_m or any(d <= 0 for d in self.distances_m):
            raise DefenseError("distances must be a non-empty positive list")
        if self.n_trials < 1:
            raise DefenseError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.attacker_kind not in ("single_full", "long_range"):
            raise DefenseError(
                f"unknown attacker_kind {self.attacker_kind!r}"
            )
        if self.device not in ("phone", "echo"):
            raise DefenseError(f"unknown device {self.device!r}")
        low, high = self.speech_spl_range
        if not 30 <= low <= high <= 100:
            raise DefenseError(
                f"implausible speech SPL range {self.speech_spl_range}"
            )
        try:
            self.resolve_scenario()
        except ExperimentError as error:
            raise DefenseError(str(error)) from None

    def resolve_scenario(self) -> ScenarioSpec:
        """The registry spec the recordings are made in."""
        return get_scenario(self.scenario)


@dataclass
class LabeledDataset:
    """Feature matrix + labels + per-row condition metadata."""

    features: np.ndarray
    labels: np.ndarray
    metadata: list[dict] = field(repr=False)
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.labels.shape[0]:
            raise DefenseError("features/labels row counts differ")
        if len(self.metadata) != self.features.shape[0]:
            raise DefenseError("metadata length mismatch")

    @property
    def n_samples(self) -> int:
        """Number of labelled recordings."""
        return int(self.features.shape[0])

    def split(
        self, train_fraction: float, rng: np.random.Generator
    ) -> tuple["LabeledDataset", "LabeledDataset"]:
        """Random stratified-ish split into train and test subsets."""
        if not 0 < train_fraction < 1:
            raise DefenseError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        order = rng.permutation(self.n_samples)
        n_train = max(1, int(round(train_fraction * self.n_samples)))
        n_train = min(n_train, self.n_samples - 1)
        return self._subset(order[:n_train]), self._subset(order[n_train:])

    def filter(self, predicate) -> "LabeledDataset":
        """Subset by a metadata predicate (e.g. held-out commands)."""
        indices = np.array(
            [i for i, meta in enumerate(self.metadata) if predicate(meta)],
            dtype=int,
        )
        if indices.size == 0:
            raise DefenseError("filter produced an empty dataset")
        return self._subset(indices)

    def _subset(self, indices: np.ndarray) -> "LabeledDataset":
        return LabeledDataset(
            features=self.features[indices],
            labels=self.labels[indices],
            metadata=[self.metadata[i] for i in indices],
            feature_names=self.feature_names,
        )


def _microphone(device: str):
    if device == "phone":
        return android_phone_microphone()
    return amazon_echo_microphone()


def _build_attacker(config: DatasetConfig, position):
    if config.attacker_kind == "single_full":
        return SingleSpeakerAttacker(horn_tweeter(), position)
    array = grid_array(
        config.n_array_speakers, position, ultrasonic_piezo_element
    )
    return LongRangeAttacker(array, allocation_strategy="waterfill")


def _cell_scenario(
    spec: ScenarioSpec, config: DatasetConfig, command: str, distance: float
) -> Scenario:
    """The concrete scenario one dataset cell records in."""
    scenario = spec.build(command, distance_m=distance)
    if config.scenario == "free_field":
        # The legacy knob: a free-field dataset keeps its configurable
        # floor; named environments bring their own.
        scenario = dc_replace(
            scenario, ambient_noise_spl=config.ambient_noise_spl
        )
    return scenario


def build_dataset(
    config: DatasetConfig,
    batch: bool = True,
    precision: str | None = None,
) -> LabeledDataset:
    """Synthesise the dataset a :class:`DatasetConfig` describes.

    Attack emissions are generated once per command and reused across
    distances and trials (the waveform the attacker radiates does not
    depend on them), and the genuine playback is rendered once per
    command at :data:`GENUINE_REFERENCE_SPL`; trial variation comes
    from ambient noise, microphone self-noise and the talker-level
    gain. Every (command, distance, class) cell executes through the
    shared trial pipeline — batched by default. ``batch=False`` walks
    the scalar stage list instead *and* extracts features one
    recording at a time, so the flag is an honest fully-scalar versus
    fully-batched A/B; features and recordings are bitwise identical
    either way, which the experiment-level differential suites check.
    ``precision`` selects the pipeline's numeric mode
    (:func:`repro.sim.pipeline.resolve_precision`): ``"float64"`` is
    the bitwise-frozen golden default, ``"float32"`` the opt-in
    fast-math path whose features agree within tolerance rather than
    bitwise.
    """
    spec = config.resolve_scenario()
    try:
        distances = spec.clamp_distances(config.distances_m)
    except ExperimentError as error:
        raise DefenseError(str(error)) from None
    rng = np.random.default_rng(config.seed)
    microphone = _microphone(config.device)
    attacker = _build_attacker(config, RIG_POSITION)
    low_spl, high_spl = config.speech_spl_range
    names = config.feature_subset or FEATURE_NAMES
    # One invariants cache shared by every cell's pipelines: the
    # transmitted interference bed depends on geometry and rate, not
    # on command or class, so a tv_interference dataset propagates it
    # once per distance instead of once per (command, distance, class).
    invariants = EmissionCache()
    recordings = []
    labels: list[int] = []
    metadata: list[dict] = []
    for command in config.commands:
        voice = synthesize_command(command, rng)
        attack_sources = list(attacker.emit(voice).sources)
        playback = AudiblePlaybackAttacker(
            RIG_POSITION, speech_spl_at_1m=GENUINE_REFERENCE_SPL
        )
        genuine_sources = list(playback.emit(voice).sources)
        for distance in distances:
            scenario = _cell_scenario(spec, config, command, distance)
            # Genuine cell: the talker-level draw is the pipeline's
            # per-trial gain stage, so its draw order (level, then
            # ambient, then self-noise) is fixed by the stage list.
            levels: list[float] = []
            genuine_pipeline = build_pipeline(
                scenario,
                microphone,
                recognize=False,
                gain_stage=level_stage(
                    low_spl,
                    high_spl,
                    GENUINE_REFERENCE_SPL,
                    capture=levels,
                ),
                invariants=invariants,
                precision=precision,
            )
            genuine_recordings = genuine_pipeline.run_trials(
                genuine_pipeline.context(genuine_sources),
                rng.spawn(config.n_trials),
                batch=batch,
            )
            for recording, spl in zip(genuine_recordings, levels):
                recordings.append(recording)
                labels.append(0)
                metadata.append(
                    {
                        "command": command,
                        "distance_m": distance,
                        "kind": "genuine",
                        "speech_spl": spl,
                        "scenario": config.scenario,
                    }
                )
            # Attack cell: same environment, same stage list minus the
            # talker gain.
            attack_pipeline = build_pipeline(
                scenario,
                microphone,
                recognize=False,
                invariants=invariants,
                precision=precision,
            )
            attack_recordings = attack_pipeline.run_trials(
                attack_pipeline.context(attack_sources),
                rng.spawn(config.n_trials),
                batch=batch,
            )
            for recording in attack_recordings:
                recordings.append(recording)
                labels.append(1)
                metadata.append(
                    {
                        "command": command,
                        "distance_m": distance,
                        "kind": config.attacker_kind,
                        "scenario": config.scenario,
                    }
                )
    if batch:
        # Feature extraction is deferred to one batched pass over
        # every recording; equal-length rows share stacked PSDs and
        # envelopes.
        features = feature_matrix(recordings, subset=names)
    else:
        # The scalar A/B stays scalar end to end: one recording per
        # extraction call, bitwise identical rows to the batched pass.
        features = np.stack(
            [
                feature_vector(recording, subset=names)
                for recording in recordings
            ]
        )
    return LabeledDataset(
        features=features,
        labels=np.asarray(labels, dtype=int),
        metadata=metadata,
        feature_names=tuple(names),
    )
