"""Low-frequency demodulation trace extraction.

The physics: if the microphone records an attacked signal, its output
(before the device's band limits) is approximately

    a1*(m(t) demodulated voice) + a2*m(t)^2 (squared envelope) + noise

The squared envelope term concentrates below ~50 Hz (speech energy
envelopes move at syllabic rates, a few hertz, and the intra-band
difference frequencies of each spectral chunk extend to the chunk
bandwidth). Its amplitude tracks the instantaneous voice power, so the
sub-50 Hz band is not merely energetic — it is *correlated in time*
with the voice-band envelope. Both properties are measured here.

The measurements are environment-agnostic by design: recordings made
in a reverberant room, under TV interference or against a walking
attacker (any :class:`~repro.sim.spec.ScenarioSpec` environment the
dataset layer records in) flow through the same estimators — a vocal
tract still radiates no coherent sub-50 Hz energy in a living room,
and reflections intermodulate at the diaphragm exactly like direct
waves. :func:`separation_d_prime` quantifies how well a trace feature
separates the classes a given environment produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import band_pass_array
from repro.dsp.framing import frame_count
from repro.dsp.measures import (
    max_cross_correlation,
    power_ratio_to_db,
)
from repro.dsp.signals import Signal, SignalBatch
from repro.dsp.spectrum import band_power_matrix, welch_psd_matrix
from repro.errors import DefenseError

#: The demodulation-trace band, hertz. The lower edge clears the
#: microphone's AC-coupling corner; the upper edge is the paper
#: family's sub-50 Hz region.
TRACE_BAND_HZ = (15.0, 50.0)

#: The voice band used as the reference, hertz.
VOICE_BAND_HZ = (300.0, 3000.0)

#: Welch segment length (samples) of the trace PSD estimate; signals
#: shorter than one segment fall back to a single padded FFT of their
#: own length. The streaming accumulator shares these so its online
#: estimate is the same estimator.
TRACE_SEGMENT_SAMPLES = 8192

#: Welch window of the trace PSD estimate (see the rationale at the
#: call site in :func:`analyze_traces_batch`).
TRACE_WINDOW = "blackman"


def band_envelope(
    signal: Signal,
    low_hz: float,
    high_hz: float,
    frame_s: float = 0.02,
) -> np.ndarray:
    """Frame-RMS envelope of a band-passed version of the signal.

    Returns one RMS value per ``frame_s`` frame — a compact envelope
    representation whose frame rate is high enough (50 Hz) to follow
    syllables but too low to carry voice-band content itself.
    Delegates to :func:`band_envelope_matrix` with a one-row batch, so
    the scalar and batched estimators can never drift apart.
    """
    batch = SignalBatch(
        signal.samples[np.newaxis, :], signal.sample_rate, signal.unit
    )
    return band_envelope_matrix(batch, low_hz, high_hz, frame_s)[0]


def band_envelope_matrix(
    batch: SignalBatch,
    low_hz: float,
    high_hz: float,
    frame_s: float = 0.02,
) -> np.ndarray:
    """Frame-RMS envelopes of every row of a recording batch.

    The batched counterpart of :func:`band_envelope`: the band-pass
    runs along the last axis of the whole stack and the frame RMS
    reduces per frame, one ``(n_signals, n_frames)`` matrix out.
    """
    if batch.duration <= frame_s:
        raise DefenseError(
            f"signal too short ({batch.duration:.3f} s) for envelope "
            f"frames of {frame_s} s"
        )
    # Order 8 keeps the voice fundamental (>= ~100 Hz) from leaking
    # into the trace band through the filter skirts: at 4th order the
    # leaked f0 forms a ~-30 dB floor that buries weak traces.
    banded = band_pass_array(
        batch.samples,
        batch.sample_rate,
        max(low_hz, 1.0),
        min(high_hz, batch.nyquist * 0.99),
        order=8,
    )
    frame_len = int(round(frame_s * batch.sample_rate))
    # Contiguous frames: hop == frame_len, trailing remainder dropped.
    n_frames = frame_count(banded.shape[-1], frame_len, frame_len)
    frames = banded[:, : n_frames * frame_len].reshape(
        batch.n_signals, n_frames, frame_len
    )
    return np.sqrt(np.mean(np.square(frames), axis=-1))


def separation_d_prime(
    genuine: np.ndarray, attacked: np.ndarray
) -> float:
    """Class separation of one trace feature, in pooled-sigma units.

    The d' statistic the defense figures report: mean difference over
    the pooled standard deviation. Zero when the pooled variance
    vanishes (degenerate single-point classes). Used per feature and
    per environment to show which traces carry the detection in which
    scene.
    """
    genuine = np.asarray(genuine, dtype=float)
    attacked = np.asarray(attacked, dtype=float)
    if genuine.size == 0 or attacked.size == 0:
        raise DefenseError(
            "separation_d_prime needs samples from both classes"
        )
    pooled = float(
        np.sqrt(0.5 * (np.var(genuine) + np.var(attacked)))
    )
    if pooled <= 0.0:
        return 0.0
    return float((np.mean(attacked) - np.mean(genuine)) / pooled)


@dataclass(frozen=True)
class TraceAnalysis:
    """Demodulation-trace measurements of one recording.

    Attributes
    ----------
    trace_power_db:
        Power in the trace band relative to total signal power, dB.
    trace_to_voice_db:
        Trace-band power relative to voice-band power, dB.
    envelope_correlation:
        Peak normalised cross-correlation between the trace-band
        envelope and the voice-band envelope (the squared-envelope
        signature; near zero for genuine speech).
    envelope_power_correlation:
        Correlation between the trace-band envelope and the *squared*
        voice-band envelope — sharper for strong attacks because the
        trace literally is the squared message.
    voice_power_db:
        Voice-band power relative to total, dB (context feature that
        lets the classifier normalise for recording loudness).
    """

    trace_power_db: float
    trace_to_voice_db: float
    envelope_correlation: float
    envelope_power_correlation: float
    voice_power_db: float


def analyze_traces(recording: Signal) -> TraceAnalysis:
    """Measure the demodulation traces of a device-rate recording.

    Delegates to :func:`analyze_traces_batch` with a one-row batch —
    one implementation, identical numbers at every batch size.

    Parameters
    ----------
    recording:
        A digital microphone recording (any device rate >= 8 kHz; the
        voice reference band is clipped to the recording's bandwidth).
    """
    batch = SignalBatch(
        recording.samples[np.newaxis, :],
        recording.sample_rate,
        recording.unit,
    )
    return analyze_traces_batch(batch)[0]


def analyze_traces_batch(batch: SignalBatch) -> list[TraceAnalysis]:
    """Trace analyses of a whole recording batch at once.

    The Welch PSDs, band powers and band envelopes of every row
    compute as stacked ``axis=-1`` operations; only the short
    lag-search cross-correlations remain per-row loops, over ~50-frame
    envelopes rather than full recordings. Per-row results are bitwise
    independent of how recordings are grouped into batches.
    """
    # Blackman window: the Hann sidelobe floor (-31 dB first lobe)
    # leaks the speech fundamental into the sub-50 Hz bins and masks
    # weak traces; Blackman's -58 dB sidelobes keep the estimate clean.
    freqs, psd = welch_psd_matrix(
        batch.samples,
        batch.sample_rate,
        segment_length=min(TRACE_SEGMENT_SAMPLES, batch.n_samples),
        window=TRACE_WINDOW,
    )
    return analyses_from_psd(batch, freqs, psd)


def analyses_from_psd(
    batch: SignalBatch, freqs: np.ndarray, psd: np.ndarray
) -> list[TraceAnalysis]:
    """Assemble trace analyses from an already-estimated Welch PSD.

    The back half of :func:`analyze_traces_batch`, split out so the
    streaming guard's incremental extractor — which accumulates the
    same Welch segments online as an utterance's chunks arrive — can
    finish through *the same* band-power, envelope and correlation
    arithmetic and stay bitwise identical to the offline path. ``psd``
    must be the ``(n_signals, n_bins)`` matrix a
    :data:`TRACE_WINDOW`-windowed Welch estimate of ``batch`` produces
    (:func:`~repro.dsp.spectrum.welch_psd_matrix` offline,
    :class:`repro.stream.features.WelchAccumulator` online).
    """
    if batch.sample_rate < 8000.0:
        raise DefenseError(
            "trace analysis needs at least an 8 kHz recording, got "
            f"{batch.sample_rate} Hz"
        )
    bin_width = float(freqs[1] - freqs[0]) if len(freqs) > 1 else 0.0
    # Row-wise 1-D sums, matching PowerSpectrum.total_power bitwise
    # (a 2-D axis reduction pairs additions differently by an ulp).
    totals = np.array(
        [max(float(np.sum(row)) * bin_width, 1e-30) for row in psd]
    )
    trace_powers = band_power_matrix(freqs, psd, *TRACE_BAND_HZ)
    voice_high = min(VOICE_BAND_HZ[1], batch.nyquist * 0.95)
    voice_powers = band_power_matrix(freqs, psd, VOICE_BAND_HZ[0], voice_high)
    trace_envs = band_envelope_matrix(batch, *TRACE_BAND_HZ)
    voice_envs = band_envelope_matrix(batch, VOICE_BAND_HZ[0], voice_high)
    n = min(trace_envs.shape[-1], voice_envs.shape[-1])
    analyses = []
    for index in range(batch.n_signals):
        trace_env = trace_envs[index, :n]
        voice_env = voice_envs[index, :n]
        # Allow +-3 frames (60 ms) of lag: the trace and the voice
        # ride through different filter group delays.
        correlation = max_cross_correlation(trace_env, voice_env, max_lag=3)
        power_correlation = max_cross_correlation(
            trace_env, np.square(voice_env), max_lag=3
        )
        total = totals[index]
        trace_power = trace_powers[index]
        voice_power = voice_powers[index]
        analyses.append(
            TraceAnalysis(
                trace_power_db=power_ratio_to_db(
                    max(trace_power, 1e-30) / total
                ),
                trace_to_voice_db=power_ratio_to_db(
                    max(trace_power, 1e-30) / max(voice_power, 1e-30)
                ),
                envelope_correlation=correlation,
                envelope_power_correlation=power_correlation,
                voice_power_db=power_ratio_to_db(
                    max(voice_power, 1e-30) / total
                ),
            )
        )
    return analyses
