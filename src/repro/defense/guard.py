"""The deployed defense: a guarded voice assistant.

The paper's defense is not a standalone classifier — it sits *in
front of* the assistant's recogniser and vetoes commands whose
recordings carry demodulation traces. :class:`GuardedVoiceAssistant`
composes the two, exposing the single call a device firmware would
make per utterance and the bookkeeping the evaluation needs (what was
recognised, whether the guard fired, what the device ultimately did).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.defense.detector import DetectionResult, InaudibleVoiceDetector
from repro.dsp.signals import Signal
from repro.speech.recognizer import KeywordRecognizer, RecognitionResult
from repro.errors import DefenseError


@dataclass(frozen=True)
class GuardedOutcome:
    """What the protected assistant did with one recording.

    Attributes
    ----------
    executed_command:
        The command acted upon, or ``None`` if nothing was executed
        (either not recognised, or vetoed by the guard).
    recognition:
        The raw recogniser result.
    detection:
        The guard's verdict (``None`` when recognition already failed —
        the guard is only consulted for recordings that would
        otherwise trigger an action).
    vetoed:
        True when recognition succeeded but the guard blocked it.
    """

    executed_command: str | None
    recognition: RecognitionResult
    detection: DetectionResult | None
    vetoed: bool


def guard_outcome(
    recognition: RecognitionResult,
    detect: Callable[[], DetectionResult],
) -> GuardedOutcome:
    """Fold a recognition result and a (lazy) detection into an outcome.

    The single statement of the guard's decision policy — consult the
    detector only when recognition accepted, veto on a positive
    verdict, otherwise execute. Both the offline
    :class:`GuardedVoiceAssistant` and the online
    :class:`repro.stream.guard.StreamingGuard` decide through this
    function, so the two deployments cannot drift apart: they differ
    only in *how* ``detect`` obtains its features (whole recording vs
    incremental accumulation), which the parity suites pin bitwise.
    """
    if not recognition.accepted:
        return GuardedOutcome(
            executed_command=None,
            recognition=recognition,
            detection=None,
            vetoed=False,
        )
    detection = detect()
    if detection.is_attack:
        return GuardedOutcome(
            executed_command=None,
            recognition=recognition,
            detection=detection,
            vetoed=True,
        )
    return GuardedOutcome(
        executed_command=recognition.command,
        recognition=recognition,
        detection=detection,
        vetoed=False,
    )


class GuardedVoiceAssistant:
    """A voice assistant with the inaudible-command defense installed.

    Parameters
    ----------
    recognizer:
        An enrolled :class:`KeywordRecognizer` (the assistant's ASR).
    detector:
        A trained :class:`InaudibleVoiceDetector` (the guard).

    Notes
    -----
    The guard runs only when the recogniser accepts — matching the
    deployment the paper describes, where the defense filters
    *actionable* audio rather than the always-on stream (which would
    multiply the false-alarm budget by every second of silence).
    """

    def __init__(
        self,
        recognizer: KeywordRecognizer,
        detector: InaudibleVoiceDetector,
    ) -> None:
        if not recognizer.commands:
            raise DefenseError(
                "the recogniser has no enrolled commands; enroll before "
                "installing the guard"
            )
        self.recognizer = recognizer
        self.detector = detector

    def process(self, recording: Signal) -> GuardedOutcome:
        """Handle one recording exactly as device firmware would."""
        recognition = self.recognizer.recognize(recording)
        return guard_outcome(
            recognition, lambda: self.detector.classify(recording)
        )

    def attack_succeeds(self, recording: Signal, command: str) -> bool:
        """Did an injected ``command`` get *executed* despite the guard?

        The end-to-end security metric of the defended system: the
        attack must now beat the recogniser *and* evade the detector.
        """
        outcome = self.process(recording)
        return outcome.executed_command == command
