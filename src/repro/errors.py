"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SampleRateError(ReproError):
    """Two signals with incompatible sample rates were combined.

    The library never resamples implicitly; callers must convert
    explicitly with :func:`repro.dsp.resample.resample` so that every
    rate change is a visible, auditable step.
    """


class SignalDomainError(ReproError):
    """An operation received a signal in the wrong physical domain.

    For example, feeding an electrical (volt) signal to an acoustic
    propagation model that expects sound pressure in pascals.
    """


class FilterDesignError(ReproError):
    """A filter specification cannot be realised.

    Raised for cut-off frequencies at or beyond Nyquist, non-positive
    orders, or inverted band edges.
    """


class ModulationError(ReproError):
    """Invalid modulation parameters.

    Raised when a carrier frequency would place a sideband at or above
    Nyquist, or when the modulation depth is outside ``(0, 1]``.
    """


class GeometryError(ReproError):
    """Invalid spatial configuration, such as coincident source and
    receiver positions or a room that does not contain a position."""


class HardwareModelError(ReproError):
    """Invalid hardware-model configuration.

    Raised for non-physical parameters such as a negative saturation
    level, an ADC with zero bits, or a speaker with an empty passband.
    """


class SynthesisError(ReproError):
    """Speech synthesis failed, e.g. an unknown phoneme or an empty
    phoneme sequence."""


class RecognitionError(ReproError):
    """The recogniser was used incorrectly, e.g. asked to classify
    before any templates were enrolled."""


class AttackConfigError(ReproError):
    """Invalid attack configuration.

    Raised for empty speaker arrays, band splits that do not cover the
    requested voice bandwidth, or carrier frequencies that make the
    attack audible by construction.
    """


class DefenseError(ReproError):
    """Invalid defense configuration or use, e.g. predicting with an
    untrained classifier or training on a single-class dataset."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured, e.g. an empty sweep."""


class StreamError(ReproError):
    """Invalid use of the online streaming layer.

    Raised for reads outside a ring buffer's retained window, pushes
    into a closed stream, or finalising an utterance that received no
    samples.
    """
