"""The multi-source acoustic channel.

This is the physical stage on which the long-range attack plays out:
each ultrasonic speaker radiates its own waveform; the channel
propagates every waveform (direct path plus reflections if a room is
given) to the victim microphone's diaphragm and sums the pressures.
Only *after* this summation does the microphone's nonlinearity square
the total — which is why spectral slices radiated from different
speakers can recombine into a full voice command that no single
speaker ever emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.room import ImageSourceRoomModel
from repro.dsp.signals import Signal, SignalBatch, Unit, mix, white_noise
from repro.errors import GeometryError, SignalDomainError


@dataclass(frozen=True)
class PlacedSource:
    """A pressure waveform (referenced to 1 m) at a spatial position."""

    pressure_at_1m: Signal
    position: Position

    def __post_init__(self) -> None:
        if self.pressure_at_1m.unit != Unit.PASCAL:
            raise SignalDomainError(
                "PlacedSource requires a pressure waveform in pascals, "
                f"got unit {self.pressure_at_1m.unit!r}"
            )


@dataclass
class AcousticChannel:
    """Propagates multiple sources to one receiving point.

    Parameters
    ----------
    room:
        Optional rectangular room; when given, first-order reflections
        are included and positions are validated against the room.
        When ``None`` the channel is free field (direct path only).
    propagation:
        Point-to-point propagation model shared by all paths.
    ambient_noise_spl:
        SPL of the background noise floor added at the receiver,
        dB SPL. Quiet rooms are ~35-45 dB SPL. ``None`` disables noise
        (useful for deterministic analyses).
    """

    room: Room | None = None
    propagation: PropagationModel = field(default_factory=PropagationModel)
    ambient_noise_spl: float | None = 40.0

    def receive(
        self,
        sources: list[PlacedSource],
        receiver: Position,
        rng: np.random.Generator | None = None,
    ) -> Signal:
        """Pressure waveform arriving at ``receiver`` from all sources.

        Parameters
        ----------
        sources:
            Placed source waveforms; all must share one sample rate.
        receiver:
            Microphone position.
        rng:
            Random generator for the ambient noise. Required when
            ``ambient_noise_spl`` is set, to keep runs reproducible.
        """
        return self.add_ambient(self.transmit(sources, receiver), rng)

    def add_ambient(
        self, total: Signal, rng: np.random.Generator | None
    ) -> Signal:
        """Add one trial's ambient-noise draw to a clean waveform.

        The stochastic half of :meth:`receive`, exposed so callers
        that assemble the clean waveform themselves (the scenario
        runner sums attack, motion and interference contributions
        first) add noise through the *same* code path and draw.
        """
        if self.ambient_noise_spl is None:
            return total
        if rng is None:
            raise SignalDomainError(
                "ambient noise enabled but no random generator given; "
                "pass rng or set ambient_noise_spl=None"
            )
        return total + self._ambient_noise(total, rng)

    def transmit(
        self, sources: list[PlacedSource], receiver: Position
    ) -> Signal:
        """The deterministic arrived pressure: all sources, no noise.

        This is the trial-invariant half of :meth:`receive` — for a
        fixed emission and geometry every trial shares this waveform,
        which is why the batched trial kernel computes it exactly once
        per trial group. Free-field transmissions of equal-length
        sources run through
        :meth:`~repro.acoustics.propagation.PropagationModel.propagate_batch`
        (one stacked FFT for the whole rig); room transmissions stack
        each source's direct + six image paths through the same kernel
        (:meth:`~repro.acoustics.room.ImageSourceRoomModel.transmit_batch`);
        mixed lengths and subclassed propagation models take the
        per-source, per-path scalar path. All produce bitwise
        identical sums.
        """
        if not sources:
            raise SignalDomainError("receive requires at least one source")
        rates = {s.pressure_at_1m.sample_rate for s in sources}
        if len(rates) != 1:
            raise SignalDomainError(
                f"all sources must share one sample rate, got {sorted(rates)}"
            )
        if (
            self.room is not None
            and type(self.propagation) is PropagationModel
        ):
            model = ImageSourceRoomModel(
                room=self.room, propagation=self.propagation
            )
            return mix(
                [
                    model.transmit_batch(
                        source.pressure_at_1m, source.position, receiver
                    )
                    for source in sources
                ]
            )
        lengths = {s.pressure_at_1m.n_samples for s in sources}
        batchable = (
            self.room is None
            and len(sources) > 1
            and len(lengths) == 1
            and type(self.propagation) is PropagationModel
        )
        if batchable:
            distances = []
            for source in sources:
                d = source.position.distance_to(receiver)
                if d == 0.0:
                    raise GeometryError(
                        "source and receiver are coincident; no "
                        "propagation path exists"
                    )
                distances.append(d)
            rate = sources[0].pressure_at_1m.sample_rate
            stack = np.stack(
                [s.pressure_at_1m.samples for s in sources]
            )
            arrived = self.propagation.propagate_batch(
                stack, rate, distances
            )
            # Sequential row accumulation matches mix()'s fold order.
            acc = arrived[0].copy()
            for row in arrived[1:]:
                acc = np.add(acc, row)
            return Signal(acc, rate, Unit.PASCAL)
        contributions = []
        for source in sources:
            contributions.append(
                self._transmit_one(
                    source.pressure_at_1m, source.position, receiver
                )
            )
        return mix(contributions)

    def receive_batch(
        self,
        sources: list[PlacedSource],
        receiver: Position,
        rngs: list[np.random.Generator],
    ) -> SignalBatch:
        """One arrived waveform per trial generator, as a stacked batch.

        Row ``i`` is bitwise identical to
        ``receive(sources, receiver, rngs[i])``: the deterministic
        transmission is computed once and each row adds that trial's
        ambient-noise draw (the same :func:`white_noise` draw, from
        the same generator, as the scalar path makes).
        """
        clean = self.transmit(sources, receiver)
        return self.ambient_batch(clean, rngs)

    def ambient_batch(
        self,
        clean: Signal | SignalBatch,
        rngs: list[np.random.Generator],
    ) -> SignalBatch:
        """Per-trial ambient-noise copies of the transmitted waveform.

        The noise-adding half of :meth:`receive_batch`, split out so
        the trial kernel can pay for :meth:`transmit` once and then
        stream trial chunks through here with bounded memory. ``clean``
        is either one shared waveform (static scenarios — every trial
        hears the same transmission) or an already-stacked
        ``(n_trials, n_samples)`` batch (mobile scenarios — each row
        carries that trial's geometry gain). Row ``i`` of the result
        adds the draw ``rngs[i]`` would make on the scalar path.
        """
        if not rngs:
            raise SignalDomainError(
                "ambient_batch requires at least one trial generator"
            )
        if isinstance(clean, SignalBatch) and clean.n_signals != len(rngs):
            raise SignalDomainError(
                f"{clean.n_signals} stacked clean waveforms but "
                f"{len(rngs)} trial generators"
            )
        if self.ambient_noise_spl is not None and any(
            rng is None for rng in rngs
        ):
            raise SignalDomainError(
                "ambient noise enabled but a trial generator is None; "
                "pass one seeded generator per trial or set "
                "ambient_noise_spl=None"
            )
        if self.ambient_noise_spl is None:
            if isinstance(clean, SignalBatch):
                return clean
            return SignalBatch.tiled(clean, len(rngs))
        from repro.acoustics.spl import spl_to_pressure

        rms_pa = spl_to_pressure(self.ambient_noise_spl)
        n = clean.n_samples
        n_draw = int(round(clean.duration * clean.sample_rate))
        rows = np.empty((len(rngs), n), dtype=clean.samples.dtype)
        for index, rng in enumerate(rngs):
            draw = rng.normal(0.0, 1.0, n_draw)
            np.multiply(draw, rms_pa, out=draw)
            if n_draw == n:
                noise = draw
            else:
                noise = np.zeros(n)
                noise[:n_draw] = draw
            row = (
                clean.samples[index]
                if isinstance(clean, SignalBatch)
                else clean.samples
            )
            np.add(row, noise, out=rows[index])
        return SignalBatch.adopt(rows, clean.sample_rate, Unit.PASCAL)

    def _transmit_one(
        self, pressure_at_1m: Signal, source: Position, receiver: Position
    ) -> Signal:
        if self.room is not None:
            model = ImageSourceRoomModel(
                room=self.room, propagation=self.propagation
            )
            return model.transmit(pressure_at_1m, source, receiver)
        d = source.distance_to(receiver)
        if d == 0.0:
            raise GeometryError(
                "source and receiver are coincident; no propagation "
                "path exists"
            )
        return self.propagation.propagate(pressure_at_1m, d)

    def _ambient_noise(
        self, template: Signal, rng: np.random.Generator
    ) -> Signal:
        from repro.acoustics.spl import spl_to_pressure

        rms_pa = spl_to_pressure(self.ambient_noise_spl)
        return white_noise(
            duration=template.duration,
            sample_rate=template.sample_rate,
            rng=rng,
            rms_level=rms_pa,
            unit=Unit.PASCAL,
        ).padded_to(template.n_samples)
