"""The multi-source acoustic channel.

This is the physical stage on which the long-range attack plays out:
each ultrasonic speaker radiates its own waveform; the channel
propagates every waveform (direct path plus reflections if a room is
given) to the victim microphone's diaphragm and sums the pressures.
Only *after* this summation does the microphone's nonlinearity square
the total — which is why spectral slices radiated from different
speakers can recombine into a full voice command that no single
speaker ever emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.room import ImageSourceRoomModel
from repro.dsp.signals import Signal, Unit, mix, white_noise
from repro.errors import GeometryError, SignalDomainError


@dataclass(frozen=True)
class PlacedSource:
    """A pressure waveform (referenced to 1 m) at a spatial position."""

    pressure_at_1m: Signal
    position: Position

    def __post_init__(self) -> None:
        if self.pressure_at_1m.unit != Unit.PASCAL:
            raise SignalDomainError(
                "PlacedSource requires a pressure waveform in pascals, "
                f"got unit {self.pressure_at_1m.unit!r}"
            )


@dataclass
class AcousticChannel:
    """Propagates multiple sources to one receiving point.

    Parameters
    ----------
    room:
        Optional rectangular room; when given, first-order reflections
        are included and positions are validated against the room.
        When ``None`` the channel is free field (direct path only).
    propagation:
        Point-to-point propagation model shared by all paths.
    ambient_noise_spl:
        SPL of the background noise floor added at the receiver,
        dB SPL. Quiet rooms are ~35-45 dB SPL. ``None`` disables noise
        (useful for deterministic analyses).
    """

    room: Room | None = None
    propagation: PropagationModel = field(default_factory=PropagationModel)
    ambient_noise_spl: float | None = 40.0

    def receive(
        self,
        sources: list[PlacedSource],
        receiver: Position,
        rng: np.random.Generator | None = None,
    ) -> Signal:
        """Pressure waveform arriving at ``receiver`` from all sources.

        Parameters
        ----------
        sources:
            Placed source waveforms; all must share one sample rate.
        receiver:
            Microphone position.
        rng:
            Random generator for the ambient noise. Required when
            ``ambient_noise_spl`` is set, to keep runs reproducible.
        """
        if not sources:
            raise SignalDomainError("receive requires at least one source")
        rates = {s.pressure_at_1m.sample_rate for s in sources}
        if len(rates) != 1:
            raise SignalDomainError(
                f"all sources must share one sample rate, got {sorted(rates)}"
            )
        contributions = []
        for source in sources:
            contributions.append(
                self._transmit_one(
                    source.pressure_at_1m, source.position, receiver
                )
            )
        total = mix(contributions)
        if self.ambient_noise_spl is not None:
            if rng is None:
                raise SignalDomainError(
                    "ambient noise enabled but no random generator given; "
                    "pass rng or set ambient_noise_spl=None"
                )
            total = total + self._ambient_noise(total, rng)
        return total

    def _transmit_one(
        self, pressure_at_1m: Signal, source: Position, receiver: Position
    ) -> Signal:
        if self.room is not None:
            model = ImageSourceRoomModel(
                room=self.room, propagation=self.propagation
            )
            return model.transmit(pressure_at_1m, source, receiver)
        d = source.distance_to(receiver)
        if d == 0.0:
            raise GeometryError(
                "source and receiver are coincident; no propagation "
                "path exists"
            )
        return self.propagation.propagate(pressure_at_1m, d)

    def _ambient_noise(
        self, template: Signal, rng: np.random.Generator
    ) -> Signal:
        from repro.acoustics.spl import spl_to_pressure

        rms_pa = spl_to_pressure(self.ambient_noise_spl)
        return white_noise(
            duration=template.duration,
            sample_rate=template.sample_rate,
            rng=rng,
            rms_level=rms_pa,
            unit=Unit.PASCAL,
        ).padded_to(template.n_samples)
