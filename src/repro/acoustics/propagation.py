"""Point-to-point acoustic propagation.

A source waveform is referenced to its on-axis pressure at one metre
(the standard way loudspeaker output is specified). Propagation to a
receiver applies:

* spherical spreading — pressure falls as ``1/d``;
* atmospheric absorption — frequency dependent (ISO 9613-1), applied as
  a zero-phase FFT-domain gain so a wideband attack signal has each
  component attenuated correctly;
* time of flight — a fractional-sample delay at 343 m/s.

The frequency dependence matters: at three metres a 2 kHz voice band
loses ~0.05 dB to absorption while a 40 kHz carrier loses ~4 dB, which
is precisely the asymmetry that forces inaudible attackers to crank up
power and thereby betray themselves via speaker leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import fft as sp_fft

from repro.acoustics.atmosphere import (
    AtmosphericConditions,
    absorption_coefficient_db_per_m,
)
from repro.acoustics.spl import SPEED_OF_SOUND
from repro.dsp.signals import Signal, Unit
from repro.errors import SignalDomainError


def propagation_loss_db(
    frequency_hz: float,
    distance_m: float,
    conditions: AtmosphericConditions | None = None,
) -> float:
    """Total loss in dB from 1 m to ``distance_m`` for a pure tone.

    Combines ``20 log10(d)`` spreading with ISO 9613-1 absorption. At
    exactly one metre the loss is zero by definition.
    """
    if distance_m <= 0:
        raise SignalDomainError(
            f"distance must be positive, got {distance_m}"
        )
    spreading = 20.0 * np.log10(distance_m)
    absorption = absorption_coefficient_db_per_m(frequency_hz, conditions) * (
        distance_m - 1.0
    )
    # Absorption is referenced to the 1 m point, so a listener closer
    # than 1 m sees (slightly) less absorption, never negative total.
    return float(spreading + max(absorption, -spreading))


@dataclass
class PropagationModel:
    """Applies spreading, absorption and delay to waveforms.

    Parameters
    ----------
    conditions:
        Atmospheric conditions for the absorption model.
    include_delay:
        Whether to apply time-of-flight delay. Disable for analyses
        that align signals in time.
    speed_of_sound:
        Propagation speed, m/s.
    """

    conditions: AtmosphericConditions = field(
        default_factory=AtmosphericConditions
    )
    include_delay: bool = True
    speed_of_sound: float = SPEED_OF_SOUND

    def absorption_gain(
        self, frequencies_hz: np.ndarray, distance_m: float
    ) -> np.ndarray:
        """Linear amplitude gains for absorption over the path.

        Vectorised over FFT bin frequencies; the DC bin gets unity gain
        (absorption is undefined at 0 Hz and irrelevant there).
        """
        gains = np.ones_like(frequencies_hz, dtype=np.float64)
        nonzero = frequencies_hz > 0
        alphas = np.array(
            [
                absorption_coefficient_db_per_m(f, self.conditions)
                for f in frequencies_hz[nonzero]
            ]
        )
        loss_db = alphas * max(distance_m - 1.0, 0.0)
        gains[nonzero] = 10.0 ** (-loss_db / 20.0)
        return gains

    def _bin_gains(
        self, freqs: np.ndarray, distance_m: float
    ) -> np.ndarray:
        """Absorption gains per FFT bin, coarse-grained for speed.

        ISO 9613-1 is evaluated on a 64-point log grid and
        interpolated onto the bins, since per-bin evaluation of the
        scalar model would dominate runtime for megasample signals.
        Shared verbatim by :meth:`propagate` and
        :meth:`propagate_batch` so the two paths are bitwise identical
        per (waveform, distance) by construction.

        Results are memoised per (bin layout, distance): conditions are
        fixed per model instance, and a trial group evaluates the same
        layout for every source and the same distance for every
        re-visit of a cell, so repeated calls return the cached gain
        row instead of re-running the scalar ISO model 64 times.
        """
        key = (len(freqs), float(freqs[-1]), float(distance_m))
        cache = self.__dict__.setdefault("_gain_cache", {})
        cached = cache.get(key)
        if cached is not None:
            return cached
        if len(freqs) > 64:
            grid = np.geomspace(
                max(freqs[1], 1.0), max(freqs[-1], 2.0), num=64
            )
            grid_gain = self.absorption_gain(grid, distance_m)
            gains = np.interp(freqs, grid, grid_gain, left=1.0)
        else:
            gains = self.absorption_gain(freqs, distance_m)
        gains.setflags(write=False)
        cache[key] = gains
        return gains

    def propagate(self, pressure_at_1m: Signal, distance_m: float) -> Signal:
        """Propagate a pressure waveform from 1 m to ``distance_m``.

        The input must be in pascals (use the speaker model to get
        there); the output is the pressure waveform at the receiver.
        """
        if pressure_at_1m.unit != Unit.PASCAL:
            raise SignalDomainError(
                "propagate expects a pressure waveform in pascals, got "
                f"unit {pressure_at_1m.unit!r}"
            )
        if distance_m <= 0:
            raise SignalDomainError(
                f"distance must be positive, got {distance_m}"
            )
        spreading_gain = 1.0 / distance_m
        spectrum = sp_fft.rfft(pressure_at_1m.samples)
        freqs = np.fft.rfftfreq(
            pressure_at_1m.n_samples, d=1.0 / pressure_at_1m.sample_rate
        )
        gains = self._bin_gains(freqs, distance_m)
        attenuated = sp_fft.irfft(
            spectrum * gains, n=pressure_at_1m.n_samples
        )
        out = pressure_at_1m.replace(samples=attenuated * spreading_gain)
        if self.include_delay:
            out = out.delayed(distance_m / self.speed_of_sound)
        return out

    def propagate_batch(
        self,
        pressures_at_1m: np.ndarray,
        sample_rate: float,
        distances_m: Sequence[float],
        shared_input: bool = False,
    ) -> np.ndarray:
        """Propagate a stack of equal-length waveforms, one per path.

        The batched counterpart of :meth:`propagate` for free-field
        multi-source channels: row ``i`` of the returned array is the
        waveform ``pressures_at_1m[i]`` propagated over
        ``distances_m[i]``, zero-padded to the common post-delay
        length. The spreading/absorption spectrum shaping runs as one
        two-dimensional FFT over the whole stack; per-row gains and the
        fractional-sample delay reuse exactly the scalar code paths, so
        each row is bitwise identical to
        ``propagate(Signal(row), d)`` — summing the rows reproduces
        :func:`repro.dsp.signals.mix` of the scalar results.

        ``shared_input`` declares that every row of the stack is the
        *same* waveform (a room model fanning one source over its
        reflection paths): the forward FFT is then computed once and
        broadcast instead of once per row — bitwise identical output
        (identical rows have identical spectra), ~``n_paths``× less
        forward-FFT work.
        """
        stack = np.asarray(pressures_at_1m, dtype=np.float64)
        if stack.ndim != 2:
            raise SignalDomainError(
                "propagate_batch expects a 2-D (n_paths, n_samples) "
                f"stack, got shape {stack.shape}"
            )
        distances = [float(d) for d in distances_m]
        if len(distances) != stack.shape[0]:
            raise SignalDomainError(
                f"{stack.shape[0]} waveforms but {len(distances)} "
                "distances"
            )
        for distance in distances:
            if distance <= 0:
                raise SignalDomainError(
                    f"distance must be positive, got {distance}"
                )
        n = stack.shape[-1]
        if shared_input:
            spectra = np.broadcast_to(
                sp_fft.rfft(stack[0]), (stack.shape[0], n // 2 + 1)
            )
        else:
            spectra = sp_fft.rfft(stack, axis=-1)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        # Per-path gain rows via the same coarse-grid interpolation the
        # scalar path uses (bitwise identical per row).
        gain_rows = np.empty_like(spectra, dtype=np.float64)
        for index, distance in enumerate(distances):
            gain_rows[index] = self._bin_gains(freqs, distance)
        attenuated = sp_fft.irfft(spectra * gain_rows, n=n, axis=-1)
        spreading = np.array(
            [1.0 / distance for distance in distances]
        )[:, np.newaxis]
        attenuated = attenuated * spreading
        if not self.include_delay:
            return attenuated
        # Fractional-sample delay per path, exactly as Signal.delayed:
        # integer shift + linear interpolation for the remainder.
        wholes, shifted_rows = [], []
        x = np.arange(n, dtype=np.float64)
        for row, distance in zip(attenuated, distances):
            total = (distance / self.speed_of_sound) * sample_rate
            whole = int(np.floor(total))
            frac = total - whole
            if frac > 1e-9:
                row = np.interp(x - frac, x, row, left=0.0, right=0.0)
            wholes.append(whole)
            shifted_rows.append(row)
        max_len = n + max(wholes)
        out = np.zeros((stack.shape[0], max_len))
        for index, (whole, row) in enumerate(zip(wholes, shifted_rows)):
            out[index, whole : whole + n] = row
        return out

    def time_of_flight(self, distance_m: float) -> float:
        """Propagation delay in seconds over ``distance_m``."""
        if distance_m < 0:
            raise SignalDomainError(
                f"distance must be non-negative, got {distance_m}"
            )
        return distance_m / self.speed_of_sound
