"""Sound pressure level conversions and source-level helpers.

All acoustic waveforms in this library are in pascals, so SPL values
are exact functions of the sample data rather than bookkeeping carried
alongside it.
"""

from __future__ import annotations

import math

from repro.dsp.measures import EPSILON_POWER
from repro.errors import SignalDomainError

#: Reference RMS pressure for 0 dB SPL, in pascals.
REFERENCE_PRESSURE = 20e-6

#: Speed of sound in air at ~20 °C, m/s.
SPEED_OF_SOUND = 343.0

#: Density of air at ~20 °C, kg/m^3.
AIR_DENSITY = 1.204

#: Reference acoustic power for dB re 1 pW, watts.
REFERENCE_POWER = 1e-12


def pressure_to_spl(rms_pressure_pa: float) -> float:
    """Convert an RMS pressure in pascals to dB SPL."""
    if rms_pressure_pa < 0:
        raise SignalDomainError(
            f"RMS pressure must be non-negative, got {rms_pressure_pa}"
        )
    ratio_sq = max(
        (rms_pressure_pa / REFERENCE_PRESSURE) ** 2, EPSILON_POWER
    )
    return 10.0 * math.log10(ratio_sq)


def spl_to_pressure(spl_db: float) -> float:
    """Convert dB SPL to an RMS pressure in pascals."""
    return REFERENCE_PRESSURE * 10.0 ** (spl_db / 20.0)


def spl_at_distance(
    spl_at_1m: float, distance_m: float, absorption_db_per_m: float = 0.0
) -> float:
    """SPL at ``distance_m`` given the on-axis SPL at one metre.

    Combines inverse-square spreading (``-20 log10 d``) with linear
    atmospheric absorption. Distances below one metre are allowed (the
    near field is not modelled; SPL simply continues the inverse-square
    law) but must be positive.
    """
    if distance_m <= 0:
        raise SignalDomainError(
            f"distance must be positive, got {distance_m}"
        )
    if absorption_db_per_m < 0:
        raise SignalDomainError(
            f"absorption must be non-negative, got {absorption_db_per_m}"
        )
    spreading = 20.0 * math.log10(distance_m)
    absorption = absorption_db_per_m * distance_m
    return spl_at_1m - spreading - absorption


def source_power_to_spl_at_1m(
    acoustic_power_w: float, directivity_index_db: float = 0.0
) -> float:
    """On-axis SPL at 1 m of a point source radiating the given power.

    For a source of acoustic power ``W`` radiating into full space, the
    intensity at distance r is ``W / (4*pi*r^2)``; the directivity
    index adds on-axis gain for directional sources such as the horn
    tweeters and piezo elements used by the attack. The conversion uses
    ``I = p^2 / (rho * c)``.
    """
    if acoustic_power_w <= 0:
        raise SignalDomainError(
            f"acoustic power must be positive, got {acoustic_power_w}"
        )
    intensity = acoustic_power_w / (4.0 * math.pi)
    pressure_sq = intensity * AIR_DENSITY * SPEED_OF_SOUND
    spl = 10.0 * math.log10(pressure_sq / REFERENCE_PRESSURE**2)
    return spl + directivity_index_db


def electrical_to_acoustic_power(
    electrical_power_w: float, efficiency: float
) -> float:
    """Radiated acoustic power of a speaker driven with electrical power.

    Typical piezo tweeter efficiencies are on the order of 1-5 %.
    """
    if electrical_power_w < 0:
        raise SignalDomainError(
            f"electrical power must be non-negative, got {electrical_power_w}"
        )
    if not 0 < efficiency <= 1:
        raise SignalDomainError(
            f"efficiency must be in (0, 1], got {efficiency}"
        )
    return electrical_power_w * efficiency
