"""First-order image-source model of a rectangular room.

Reflections matter to the reproduction in a specific way: the victim's
microphone receives not just the direct ultrasonic wave but six
first-order wall reflections, each with its own delay and absorption.
These copies intermodulate at the microphone's nonlinearity exactly
like direct waves do, adding reverberant colouring to the demodulated
command — one of the effects the recogniser-accuracy-vs-distance
curves inherit. First-order images capture the dominant reflections;
higher orders are strongly suppressed at ultrasound because every
extra bounce costs wall absorption *and* metres of air absorption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.dsp.signals import Signal, mix
from repro.errors import GeometryError


@dataclass(frozen=True)
class Path:
    """One acoustic path between a source and a receiver.

    Attributes
    ----------
    distance_m:
        Total travelled distance.
    reflection_count:
        Number of wall bounces (0 for the direct path).
    amplitude_factor:
        Pressure multiplier from wall reflections (1.0 for direct).
    """

    distance_m: float
    reflection_count: int
    amplitude_factor: float


@dataclass
class ImageSourceRoomModel:
    """Direct path plus first-order reflections in a box room.

    Parameters
    ----------
    room:
        The rectangular room (geometry + wall absorption).
    propagation:
        The point-to-point propagation model used for every path.
    include_reflections:
        When ``False`` the model reduces to free-field propagation —
        used by tests and by anechoic ablations.
    """

    room: Room
    propagation: PropagationModel = field(default_factory=PropagationModel)
    include_reflections: bool = True

    def paths(self, source: Position, receiver: Position) -> list[Path]:
        """Enumerate the direct path and the six first-order images."""
        self.room.require_inside(source, "source")
        self.room.require_inside(receiver, "receiver")
        direct = source.distance_to(receiver)
        if direct == 0.0:
            raise GeometryError(
                "source and receiver are coincident; no propagation "
                "path exists"
            )
        result = [
            Path(distance_m=direct, reflection_count=0, amplitude_factor=1.0)
        ]
        if not self.include_reflections:
            return result
        reflection_gain = self.room.reflection_amplitude()
        planes = (
            ("x", 0.0),
            ("x", self.room.length_m),
            ("y", 0.0),
            ("y", self.room.width_m),
            ("z", 0.0),
            ("z", self.room.height_m),
        )
        for axis, coordinate in planes:
            image = source.mirrored(axis, coordinate)
            d = image.distance_to(receiver)
            result.append(
                Path(
                    distance_m=d,
                    reflection_count=1,
                    amplitude_factor=reflection_gain,
                )
            )
        return result

    def transmit(
        self, pressure_at_1m: Signal, source: Position, receiver: Position
    ) -> Signal:
        """Propagate a source waveform to the receiver over all paths."""
        contributions = []
        for path in self.paths(source, receiver):
            received = self.propagation.propagate(
                pressure_at_1m, path.distance_m
            )
            contributions.append(received * path.amplitude_factor)
        return mix(contributions)

    def transmit_batch(
        self, pressure_at_1m: Signal, source: Position, receiver: Position
    ) -> Signal:
        """:meth:`transmit` through the stacked per-path FFT kernel.

        The direct path and the six first-order images are stacked into
        one :meth:`~repro.acoustics.propagation.PropagationModel.propagate_batch`
        call — a single two-dimensional FFT for the whole reflection
        fan — and the rows are folded in path order with their wall
        amplitude factors. Because ``propagate_batch`` is bitwise
        identical per row to ``propagate`` and the fold replicates
        :func:`~repro.dsp.signals.mix`'s zero-padded left fold, the
        result is bitwise identical to :meth:`transmit`.

        Only valid for the stock :class:`PropagationModel`: a subclass
        overriding ``propagate`` would be silently bypassed here, so
        callers (the acoustic channel) must route subclassed models
        through the scalar path.
        """
        paths = self.paths(source, receiver)
        stack = np.broadcast_to(
            pressure_at_1m.samples,
            (len(paths), pressure_at_1m.n_samples),
        )
        arrived = self.propagation.propagate_batch(
            stack,
            pressure_at_1m.sample_rate,
            [path.distance_m for path in paths],
            shared_input=True,
        )
        total = arrived[0] * paths[0].amplitude_factor
        for row, path in zip(arrived[1:], paths[1:]):
            total = np.add(total, row * path.amplitude_factor)
        return Signal(
            total, pressure_at_1m.sample_rate, pressure_at_1m.unit
        )
