"""Atmospheric absorption of sound per ISO 9613-1.

Ultrasound attenuates far faster than audible sound: roughly 1 dB/m at
30 kHz and 3 dB/m at 60 kHz under typical indoor conditions, versus
~0.01 dB/m at 1 kHz. This asymmetry is central to the reproduced
paper: the attacker's ultrasonic carrier fades quickly with distance,
which is why raw power (and hence the audible-leakage problem, and
hence the multi-speaker design) dominates the attack's range story.

The formulas below are the full ISO 9613-1 model: classical absorption
plus the two vibrational relaxation terms of oxygen and nitrogen, as
functions of temperature, relative humidity and ambient pressure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SignalDomainError

#: Reference atmospheric pressure, kPa.
REFERENCE_PRESSURE_KPA = 101.325

#: Reference temperature, kelvin (20 °C).
REFERENCE_TEMPERATURE_K = 293.15

#: Triple-point isotherm temperature of water, kelvin.
TRIPLE_POINT_K = 273.16


@dataclass(frozen=True)
class AtmosphericConditions:
    """Ambient conditions for absorption calculations.

    Attributes
    ----------
    temperature_c:
        Air temperature in degrees Celsius.
    relative_humidity:
        Relative humidity in percent (0-100).
    pressure_kpa:
        Ambient pressure in kilopascal.
    """

    temperature_c: float = 20.0
    relative_humidity: float = 50.0
    pressure_kpa: float = REFERENCE_PRESSURE_KPA

    def __post_init__(self) -> None:
        if not -50.0 <= self.temperature_c <= 60.0:
            raise SignalDomainError(
                f"temperature {self.temperature_c} °C outside the model's "
                "validated range [-50, 60]"
            )
        if not 0.0 <= self.relative_humidity <= 100.0:
            raise SignalDomainError(
                f"relative humidity must be in [0, 100] %, got "
                f"{self.relative_humidity}"
            )
        if self.pressure_kpa <= 0:
            raise SignalDomainError(
                f"pressure must be positive, got {self.pressure_kpa} kPa"
            )

    @property
    def temperature_k(self) -> float:
        """Temperature in kelvin."""
        return self.temperature_c + 273.15

    def molar_concentration_water_vapor(self) -> float:
        """Molar concentration of water vapour, percent (ISO 9613-1 B.1)."""
        p_rel = self.pressure_kpa / REFERENCE_PRESSURE_KPA
        t_rel = self.temperature_k / TRIPLE_POINT_K
        c = -6.8346 * t_rel**-1.261 + 4.6151
        p_sat_rel = 10.0**c
        return self.relative_humidity * p_sat_rel / p_rel


def absorption_coefficient_db_per_m(
    frequency_hz: float,
    conditions: AtmosphericConditions | None = None,
) -> float:
    """Pure-tone atmospheric absorption in dB per metre (ISO 9613-1).

    Parameters
    ----------
    frequency_hz:
        Acoustic frequency; must be positive. Valid per the standard
        from 50 Hz to 10 MHz, comfortably covering both speech and the
        attack's ultrasonic band.
    conditions:
        Ambient conditions; defaults to 20 °C, 50 % RH, 1 atm.
    """
    if frequency_hz <= 0:
        raise SignalDomainError(
            f"frequency must be positive, got {frequency_hz}"
        )
    cond = conditions or AtmosphericConditions()
    f = frequency_hz
    t = cond.temperature_k
    t_rel = t / REFERENCE_TEMPERATURE_K
    p_rel = cond.pressure_kpa / REFERENCE_PRESSURE_KPA
    h = cond.molar_concentration_water_vapor()

    # Relaxation frequencies of oxygen and nitrogen (ISO 9613-1 eq. 3-4).
    f_ro = p_rel * (
        24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h)
    )
    f_rn = (
        p_rel
        / math.sqrt(t_rel)
        * (9.0 + 280.0 * h * math.exp(-4.170 * (t_rel ** (-1.0 / 3.0) - 1.0)))
    )

    # Absorption coefficient (ISO 9613-1 eq. 5), in dB/m.
    classical = 1.84e-11 / p_rel * math.sqrt(t_rel)
    oxygen = (
        0.01275
        * math.exp(-2239.1 / t)
        / (f_ro + f * f / f_ro)
    )
    nitrogen = (
        0.1068
        * math.exp(-3352.0 / t)
        / (f_rn + f * f / f_rn)
    )
    alpha = (
        8.686
        * f
        * f
        * (classical + t_rel ** (-5.0 / 2.0) * (oxygen + nitrogen))
    )
    return float(alpha)


def absorption_over_path_db(
    frequency_hz: float,
    distance_m: float,
    conditions: AtmosphericConditions | None = None,
) -> float:
    """Total absorption over a straight path of ``distance_m`` metres."""
    if distance_m < 0:
        raise SignalDomainError(
            f"distance must be non-negative, got {distance_m}"
        )
    return absorption_coefficient_db_per_m(frequency_hz, conditions) * distance_m
