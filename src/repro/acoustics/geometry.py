"""Spatial primitives: positions, distances and rectangular rooms."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True)
class Position:
    """A point in 3-D space, metres.

    The coordinate frame is arbitrary but consistent within a scenario;
    rooms place one corner at the origin with walls along the axes.
    """

    x: float
    y: float
    z: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("x", self.x), ("y", self.y), ("z", self.z)):
            if not math.isfinite(value):
                raise GeometryError(f"coordinate {name} must be finite")

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to another position, metres."""
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "Position":
        """Return a new position offset by the given deltas."""
        return Position(self.x + dx, self.y + dy, self.z + dz)

    def mirrored(self, axis: str, plane_coordinate: float) -> "Position":
        """Reflect across an axis-aligned plane (used by image sources)."""
        if axis == "x":
            return Position(2 * plane_coordinate - self.x, self.y, self.z)
        if axis == "y":
            return Position(self.x, 2 * plane_coordinate - self.y, self.z)
        if axis == "z":
            return Position(self.x, self.y, 2 * plane_coordinate - self.z)
        raise GeometryError(f"axis must be 'x', 'y' or 'z', got {axis!r}")


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions, metres."""
    return a.distance_to(b)


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room with one corner at the origin.

    Attributes
    ----------
    length_m, width_m, height_m:
        Interior dimensions along x, y, z.
    wall_absorption:
        Fraction of incident *energy* absorbed per wall reflection, in
        ``[0, 1]``. Typical meeting rooms are 0.2-0.6; ultrasound is
        absorbed more strongly than audible sound by soft surfaces, so
        attack scenarios default to a fairly dead 0.5.
    """

    length_m: float
    width_m: float
    height_m: float
    wall_absorption: float = 0.5

    def __post_init__(self) -> None:
        for name, value in (
            ("length_m", self.length_m),
            ("width_m", self.width_m),
            ("height_m", self.height_m),
        ):
            if value <= 0:
                raise GeometryError(f"{name} must be positive, got {value}")
        if not 0.0 <= self.wall_absorption <= 1.0:
            raise GeometryError(
                f"wall_absorption must be in [0, 1], got "
                f"{self.wall_absorption}"
            )

    def contains(self, position: Position) -> bool:
        """True if the position lies inside (or on the boundary of) the room."""
        return (
            0.0 <= position.x <= self.length_m
            and 0.0 <= position.y <= self.width_m
            and 0.0 <= position.z <= self.height_m
        )

    def require_inside(self, position: Position, label: str) -> None:
        """Raise :class:`GeometryError` if a position is outside the room."""
        if not self.contains(position):
            raise GeometryError(
                f"{label} at ({position.x}, {position.y}, {position.z}) "
                f"is outside the {self.length_m} x {self.width_m} x "
                f"{self.height_m} m room"
            )

    def reflection_amplitude(self) -> float:
        """Pressure-amplitude factor applied per wall bounce.

        Energy absorption ``a`` leaves a fraction ``1 - a`` of energy,
        i.e. ``sqrt(1 - a)`` of pressure amplitude.
        """
        return math.sqrt(1.0 - self.wall_absorption)

    @staticmethod
    def meeting_room() -> "Room":
        """The 6.5 x 4 x 2.5 m closed meeting room used by the
        evaluation (dimensions taken from the attack literature)."""
        return Room(length_m=6.5, width_m=4.0, height_m=2.5)
