"""Acoustic propagation substrate.

Models the physical path between the attacker's ultrasonic speakers and
the victim's microphone:

``spl``
    Sound-pressure-level conversions (pascal <-> dB SPL) and source
    power <-> on-axis SPL.
``atmosphere``
    ISO 9613-1 atmospheric absorption. Ultrasound absorbs on the order
    of 0.5-3 dB/m at 25-60 kHz — this, together with spreading loss, is
    the physical mechanism that limits attack range and motivates the
    paper's multi-speaker design.
``geometry``
    3-D positions, distances and simple room boxes.
``propagation``
    Point-to-point propagation: spherical spreading, frequency-
    dependent absorption, time-of-flight delay.
``room``
    First-order image-source reflections inside a rectangular room.
``channel``
    Multi-source to single-microphone acoustic channel: the place where
    the per-speaker waves of the split attack physically mix.
"""

from repro.acoustics.spl import (
    AIR_DENSITY,
    REFERENCE_PRESSURE,
    SPEED_OF_SOUND,
    pressure_to_spl,
    source_power_to_spl_at_1m,
    spl_at_distance,
    spl_to_pressure,
)
from repro.acoustics.atmosphere import (
    AtmosphericConditions,
    absorption_coefficient_db_per_m,
)
from repro.acoustics.geometry import Position, Room, distance
from repro.acoustics.propagation import (
    PropagationModel,
    propagation_loss_db,
)
from repro.acoustics.room import ImageSourceRoomModel
from repro.acoustics.channel import AcousticChannel, PlacedSource

__all__ = [
    "REFERENCE_PRESSURE",
    "SPEED_OF_SOUND",
    "AIR_DENSITY",
    "pressure_to_spl",
    "spl_to_pressure",
    "spl_at_distance",
    "source_power_to_spl_at_1m",
    "AtmosphericConditions",
    "absorption_coefficient_db_per_m",
    "Position",
    "Room",
    "distance",
    "PropagationModel",
    "propagation_loss_db",
    "ImageSourceRoomModel",
    "AcousticChannel",
    "PlacedSource",
]
