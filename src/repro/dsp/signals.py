"""The :class:`Signal` container and elementary waveform factories.

A :class:`Signal` couples a one-dimensional ``float64`` sample array
with the sample rate it was captured or generated at and the physical
unit of its samples. Binding the rate to the data removes a whole
class of bugs in which a waveform generated at the acoustic simulation
rate (typically 192 kHz) is silently interpreted at a device rate
(16-48 kHz) or vice versa: any arithmetic that combines two signals
checks rates and units and raises immediately on a mismatch.

Units are deliberately lightweight string constants (:class:`Unit`)
rather than a full quantity system; the library only ever needs to
distinguish sound pressure (pascal), electrical signals (volt) and
dimensionless digital samples.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import SampleRateError, SignalDomainError


class Unit:
    """Physical units a :class:`Signal` may carry.

    ``PASCAL``
        Acoustic sound pressure, used throughout propagation.
    ``VOLT``
        Electrical signals inside microphone/speaker models.
    ``DIGITAL``
        Dimensionless samples after an ADC, in ``[-1, 1]``.
    """

    PASCAL = "Pa"
    VOLT = "V"
    DIGITAL = "digital"

    _ALL = (PASCAL, VOLT, DIGITAL)

    @classmethod
    def validate(cls, unit: str) -> str:
        """Return ``unit`` if it is a known unit, else raise."""
        if unit not in cls._ALL:
            raise SignalDomainError(
                f"unknown unit {unit!r}; expected one of {cls._ALL}"
            )
        return unit


class Signal:
    """A sampled waveform with an explicit sample rate and unit.

    Parameters
    ----------
    samples:
        One-dimensional array-like of real samples. Copied and cast to
        ``float64`` — except ``float32`` input, which is kept as is
        (the opt-in fast-math path; see
        :func:`repro.sim.pipeline.build_pipeline`).
    sample_rate:
        Sampling frequency in hertz; must be positive.
    unit:
        One of the :class:`Unit` constants. Defaults to
        ``Unit.DIGITAL``.

    Notes
    -----
    Instances are *mostly* immutable by convention: methods return new
    signals rather than mutating in place, and the sample buffer is
    marked read-only so accidental mutation raises.
    """

    __slots__ = ("_samples", "_sample_rate", "_unit")

    def __init__(
        self,
        samples: Iterable[float] | np.ndarray,
        sample_rate: float,
        unit: str = Unit.DIGITAL,
    ) -> None:
        dtype = (
            np.float32
            if getattr(samples, "dtype", None) == np.float32
            else np.float64
        )
        array = np.asarray(samples, dtype=dtype)
        if array.ndim != 1:
            raise SignalDomainError(
                f"Signal requires a 1-D sample array, got shape "
                f"{array.shape}; stack multiple waveforms with "
                "SignalBatch instead"
            )
        if not np.all(np.isfinite(array)):
            raise SignalDomainError("Signal samples must be finite")
        if sample_rate <= 0 or not math.isfinite(sample_rate):
            raise SampleRateError(
                f"sample_rate must be a positive finite number, got {sample_rate}"
            )
        self._samples = array.copy()
        self._samples.flags.writeable = False
        self._sample_rate = float(sample_rate)
        self._unit = Unit.validate(unit)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        """Read-only view of the sample array."""
        return self._samples

    @property
    def sample_rate(self) -> float:
        """Sampling frequency in hertz."""
        return self._sample_rate

    @property
    def unit(self) -> str:
        """Physical unit of the samples (a :class:`Unit` constant)."""
        return self._unit

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self._samples.shape[0])

    @property
    def duration(self) -> float:
        """Signal length in seconds."""
        return self.n_samples / self._sample_rate

    @property
    def nyquist(self) -> float:
        """Nyquist frequency (half the sample rate) in hertz."""
        return self._sample_rate / 2.0

    def times(self) -> np.ndarray:
        """Sample timestamps in seconds, starting at zero."""
        return np.arange(self.n_samples) / self._sample_rate

    # ------------------------------------------------------------------
    # Scalar statistics
    # ------------------------------------------------------------------
    def rms(self) -> float:
        """Root-mean-square amplitude; zero for an empty signal."""
        if self.n_samples == 0:
            return 0.0
        return float(np.sqrt(np.mean(np.square(self._samples))))

    def peak(self) -> float:
        """Largest absolute sample value; zero for an empty signal."""
        if self.n_samples == 0:
            return 0.0
        return float(np.max(np.abs(self._samples)))

    def energy(self) -> float:
        """Sum of squared samples (discrete-time energy)."""
        return float(np.sum(np.square(self._samples)))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def replace(
        self,
        samples: np.ndarray | None = None,
        sample_rate: float | None = None,
        unit: str | None = None,
    ) -> "Signal":
        """Return a copy with any of the three fields replaced."""
        return Signal(
            self._samples if samples is None else samples,
            self._sample_rate if sample_rate is None else sample_rate,
            self._unit if unit is None else unit,
        )

    def with_unit(self, unit: str) -> "Signal":
        """Return the same waveform relabelled with a different unit.

        This is an explicit escape hatch for transducer models, which
        genuinely convert between physical domains.
        """
        return self.replace(unit=unit)

    def copy(self) -> "Signal":
        """Return an independent copy."""
        return self.replace()

    # ------------------------------------------------------------------
    # Compatibility checks
    # ------------------------------------------------------------------
    def require_same_rate(self, other: "Signal") -> None:
        """Raise :class:`SampleRateError` unless rates match."""
        if not math.isclose(
            self._sample_rate, other._sample_rate, rel_tol=1e-12
        ):
            raise SampleRateError(
                f"sample rates differ: {self._sample_rate} Hz vs "
                f"{other._sample_rate} Hz; resample explicitly first"
            )

    def require_same_unit(self, other: "Signal") -> None:
        """Raise :class:`SignalDomainError` unless units match."""
        if self._unit != other._unit:
            raise SignalDomainError(
                f"units differ: {self._unit!r} vs {other._unit!r}"
            )

    def _binary_op(
        self, other: "Signal | float", op: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ) -> "Signal":
        if isinstance(other, Signal):
            self.require_same_rate(other)
            self.require_same_unit(other)
            n = max(self.n_samples, other.n_samples)
            a = np.zeros(n)
            b = np.zeros(n)
            a[: self.n_samples] = self._samples
            b[: other.n_samples] = other._samples
            return self.replace(samples=op(a, b))
        return self.replace(samples=op(self._samples, float(other)))

    def __add__(self, other: "Signal | float") -> "Signal":
        return self._binary_op(other, np.add)

    __radd__ = __add__

    def __sub__(self, other: "Signal | float") -> "Signal":
        return self._binary_op(other, np.subtract)

    def __mul__(self, other: "Signal | float") -> "Signal":
        if isinstance(other, Signal):
            # Pointwise products (e.g. modulation) are unit-producing
            # operations; keep the left operand's unit but require
            # matching rates.
            self.require_same_rate(other)
            n = min(self.n_samples, other.n_samples)
            return self.replace(
                samples=self._samples[:n] * other._samples[:n]
            )
        return self.replace(samples=self._samples * float(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Signal":
        return self.replace(samples=-self._samples)

    def __len__(self) -> int:
        return self.n_samples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signal):
            return NotImplemented
        return (
            self._unit == other._unit
            and math.isclose(self._sample_rate, other._sample_rate)
            and self.n_samples == other.n_samples
            and bool(np.array_equal(self._samples, other._samples))
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(
            (self._unit, self._sample_rate, self._samples.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"Signal(n={self.n_samples}, rate={self._sample_rate:g} Hz, "
            f"unit={self._unit!r}, dur={self.duration:.4f} s)"
        )

    # ------------------------------------------------------------------
    # Shape operations
    # ------------------------------------------------------------------
    def scaled_to_peak(self, peak: float) -> "Signal":
        """Scale so the largest absolute sample equals ``peak``.

        A silent signal is returned unchanged, since there is no finite
        gain that achieves the requested peak.
        """
        if peak < 0:
            raise SignalDomainError(f"peak must be non-negative, got {peak}")
        current = self.peak()
        if current == 0.0:
            return self.copy()
        gain = peak / current
        if not np.isfinite(gain):
            # A subnormal peak makes the one-step gain overflow to
            # inf; normalising first keeps every intermediate in
            # range (|sample| <= current, so sample/current is in
            # [-1, 1]). Only this degenerate path takes the two-step
            # route — the normal path stays bitwise unchanged.
            return self.replace(samples=self.samples / current * peak)
        return self * gain

    def scaled_to_rms(self, target_rms: float) -> "Signal":
        """Scale so the RMS equals ``target_rms`` (silence unchanged)."""
        if target_rms < 0:
            raise SignalDomainError(
                f"target_rms must be non-negative, got {target_rms}"
            )
        current = self.rms()
        if current == 0.0:
            return self.copy()
        gain = target_rms / current
        if not np.isfinite(gain):
            # Same overflow guard as scaled_to_peak: normalise first
            # when the one-step gain leaves float range.
            return self.replace(samples=self.samples / current * target_rms)
        return self * gain

    def slice_time(self, start: float, end: float) -> "Signal":
        """Return the sub-signal between ``start`` and ``end`` seconds."""
        if end < start:
            raise SignalDomainError(
                f"slice end ({end}) precedes start ({start})"
            )
        i0 = max(0, int(round(start * self._sample_rate)))
        i1 = min(self.n_samples, int(round(end * self._sample_rate)))
        return self.replace(samples=self._samples[i0:i1])

    def padded(self, n_before: int = 0, n_after: int = 0) -> "Signal":
        """Return a copy zero-padded by the given sample counts."""
        if n_before < 0 or n_after < 0:
            raise SignalDomainError("padding counts must be non-negative")
        return self.replace(
            samples=np.concatenate(
                [np.zeros(n_before), self._samples, np.zeros(n_after)]
            )
        )

    def padded_to(self, n_samples: int) -> "Signal":
        """Zero-pad at the end so the signal has ``n_samples`` samples."""
        if n_samples < self.n_samples:
            raise SignalDomainError(
                f"padded_to target ({n_samples}) is shorter than the "
                f"signal ({self.n_samples}); use slicing to shorten"
            )
        return self.padded(n_after=n_samples - self.n_samples)

    def delayed(self, delay_seconds: float) -> "Signal":
        """Return the signal delayed by a (possibly fractional) time.

        The delay is implemented as an integer shift plus linear
        interpolation for the fractional remainder, which is accurate
        for signals oversampled relative to their content (as all
        acoustic-rate signals in this library are).
        """
        if delay_seconds < 0:
            raise SignalDomainError(
                f"delay must be non-negative, got {delay_seconds}"
            )
        total = delay_seconds * self._sample_rate
        whole = int(math.floor(total))
        frac = total - whole
        if frac > 1e-9:
            x = np.arange(self.n_samples, dtype=np.float64)
            shifted = np.interp(
                x - frac, x, self._samples, left=0.0, right=0.0
            )
        else:
            shifted = self._samples
        return self.replace(
            samples=np.concatenate([np.zeros(whole), shifted])
        )

    def faded(self, fade_seconds: float) -> "Signal":
        """Apply raised-cosine fade-in and fade-out of the given length.

        Fading attack waveforms avoids audible clicks at the edges,
        which would defeat the point of an inaudible signal.
        """
        n_fade = int(round(fade_seconds * self._sample_rate))
        if n_fade <= 0:
            return self.copy()
        if 2 * n_fade > self.n_samples:
            raise SignalDomainError(
                "fade length exceeds half the signal duration"
            )
        ramp = 0.5 * (1 - np.cos(np.pi * np.arange(n_fade) / n_fade))
        samples = self._samples.copy()
        samples[:n_fade] *= ramp
        samples[-n_fade:] *= ramp[::-1]
        return self.replace(samples=samples)

    def concat(self, other: "Signal") -> "Signal":
        """Concatenate another signal of the same rate and unit."""
        self.require_same_rate(other)
        self.require_same_unit(other)
        return self.replace(
            samples=np.concatenate([self._samples, other._samples])
        )


class SignalBatch:
    """A stack of equal-length waveforms sharing one rate and unit.

    The container behind the vectorized trial kernel
    (:mod:`repro.sim.batch`): ``samples`` is a two-dimensional
    ``float64`` array (``float32`` input is preserved, for the opt-in
    fast-math path) of shape ``(n_signals, n_samples)`` — one trial
    (or one source) per row, time along the last axis. Batched DSP
    stages operate on the whole stack with ``axis=-1`` operations, so
    per-row results are bitwise identical to running each row through
    the scalar :class:`Signal` pipeline.

    Like :class:`Signal`, the buffer is read-only and rate/unit are
    bound to the data, so rate-mixing bugs raise instead of silently
    corrupting a whole batch at once.
    """

    __slots__ = ("_samples", "_sample_rate", "_unit")

    def __init__(
        self,
        samples: np.ndarray,
        sample_rate: float,
        unit: str = Unit.DIGITAL,
    ) -> None:
        dtype = (
            np.float32
            if getattr(samples, "dtype", None) == np.float32
            else np.float64
        )
        array = np.asarray(samples, dtype=dtype)
        if array.ndim != 2:
            raise SignalDomainError(
                "SignalBatch requires a 2-D (n_signals, n_samples) "
                f"array, got shape {array.shape}; wrap a single "
                "waveform with Signal, or reshape explicitly"
            )
        if array.shape[0] < 1:
            raise SignalDomainError(
                "SignalBatch requires at least one row"
            )
        if not np.all(np.isfinite(array)):
            raise SignalDomainError("SignalBatch samples must be finite")
        if sample_rate <= 0 or not math.isfinite(sample_rate):
            raise SampleRateError(
                f"sample_rate must be a positive finite number, got "
                f"{sample_rate}"
            )
        self._samples = array.copy()
        self._samples.flags.writeable = False
        self._sample_rate = float(sample_rate)
        self._unit = Unit.validate(unit)

    @classmethod
    def adopt(
        cls,
        samples: np.ndarray,
        sample_rate: float,
        unit: str = Unit.DIGITAL,
    ) -> "SignalBatch":
        """Wrap a freshly-allocated array without the defensive copy.

        Identical validation (shape, finiteness, rate) and the same
        read-only invariant as the constructor, but the array is
        adopted in place instead of copied. For hot batch kernels that
        hand over ownership of an array they just computed and hold no
        other reference to; the caller must not touch ``samples``
        afterwards. Anything that is not already a contiguous float
        array of the right dtype falls back to the copying
        constructor.
        """
        if not (
            isinstance(samples, np.ndarray)
            and samples.dtype in (np.float64, np.float32)
            and samples.flags.c_contiguous
            and samples.base is None
        ):
            return cls(samples, sample_rate, unit)
        batch = cls.__new__(cls)
        if samples.ndim != 2:
            raise SignalDomainError(
                "SignalBatch requires a 2-D (n_signals, n_samples) "
                f"array, got shape {samples.shape}; wrap a single "
                "waveform with Signal, or reshape explicitly"
            )
        if samples.shape[0] < 1:
            raise SignalDomainError(
                "SignalBatch requires at least one row"
            )
        if not np.all(np.isfinite(samples)):
            raise SignalDomainError("SignalBatch samples must be finite")
        if sample_rate <= 0 or not math.isfinite(sample_rate):
            raise SampleRateError(
                f"sample_rate must be a positive finite number, got "
                f"{sample_rate}"
            )
        samples.flags.writeable = False
        batch._samples = samples
        batch._sample_rate = float(sample_rate)
        batch._unit = Unit.validate(unit)
        return batch

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        """Read-only ``(n_signals, n_samples)`` sample matrix."""
        return self._samples

    @property
    def sample_rate(self) -> float:
        """Sampling frequency in hertz, shared by every row."""
        return self._sample_rate

    @property
    def unit(self) -> str:
        """Physical unit of the samples (a :class:`Unit` constant)."""
        return self._unit

    @property
    def n_signals(self) -> int:
        """Number of stacked waveforms (rows)."""
        return int(self._samples.shape[0])

    @property
    def n_samples(self) -> int:
        """Samples per waveform (the last-axis length)."""
        return int(self._samples.shape[-1])

    @property
    def duration(self) -> float:
        """Per-row length in seconds."""
        return self.n_samples / self._sample_rate

    @property
    def nyquist(self) -> float:
        """Nyquist frequency (half the sample rate) in hertz."""
        return self._sample_rate / 2.0

    def __len__(self) -> int:
        return self.n_signals

    def __repr__(self) -> str:
        return (
            f"SignalBatch(n_signals={self.n_signals}, "
            f"n={self.n_samples}, rate={self._sample_rate:g} Hz, "
            f"unit={self._unit!r})"
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_signals(cls, signals: Sequence[Signal]) -> "SignalBatch":
        """Stack equal-length signals of one rate and unit."""
        if not signals:
            raise SignalDomainError(
                "from_signals requires at least one signal"
            )
        first = signals[0]
        for other in signals[1:]:
            first.require_same_rate(other)
            first.require_same_unit(other)
            if other.n_samples != first.n_samples:
                raise SignalDomainError(
                    "from_signals requires equal lengths, got "
                    f"{first.n_samples} and {other.n_samples} samples"
                )
        return cls(
            np.stack([s.samples for s in signals]),
            first.sample_rate,
            first.unit,
        )

    @classmethod
    def tiled(cls, signal: Signal, n_signals: int) -> "SignalBatch":
        """``n_signals`` identical copies of one waveform."""
        if n_signals < 1:
            raise SignalDomainError(
                f"n_signals must be >= 1, got {n_signals}"
            )
        return cls.adopt(
            np.tile(signal.samples, (n_signals, 1)),
            signal.sample_rate,
            signal.unit,
        )

    def row(self, index: int) -> Signal:
        """The ``index``-th waveform as a scalar :class:`Signal`."""
        if not 0 <= index < self.n_signals:
            raise SignalDomainError(
                f"row index {index} outside [0, {self.n_signals})"
            )
        return Signal(
            self._samples[index], self._sample_rate, self._unit
        )

    def signals(self) -> list[Signal]:
        """Every row as an independent scalar :class:`Signal`."""
        return [self.row(i) for i in range(self.n_signals)]

    def replace(
        self,
        samples: np.ndarray | None = None,
        sample_rate: float | None = None,
        unit: str | None = None,
    ) -> "SignalBatch":
        """Return a copy with any of the three fields replaced."""
        return SignalBatch(
            self._samples if samples is None else samples,
            self._sample_rate if sample_rate is None else sample_rate,
            self._unit if unit is None else unit,
        )


# ----------------------------------------------------------------------
# Waveform factories
# ----------------------------------------------------------------------
def _n_samples(duration: float, sample_rate: float) -> int:
    if duration < 0:
        raise SignalDomainError(f"duration must be non-negative, got {duration}")
    if sample_rate <= 0:
        raise SampleRateError(
            f"sample_rate must be positive, got {sample_rate}"
        )
    return int(round(duration * sample_rate))


def silence(
    duration: float, sample_rate: float, unit: str = Unit.DIGITAL
) -> Signal:
    """All-zero signal of the given duration."""
    return Signal(np.zeros(_n_samples(duration, sample_rate)), sample_rate, unit)


def tone(
    frequency: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
    unit: str = Unit.DIGITAL,
) -> Signal:
    """Pure cosine tone.

    Raises
    ------
    SignalDomainError
        If the frequency is negative or at/above Nyquist (such a tone
        cannot be represented and aliasing it silently would corrupt
        downstream spectral reasoning).
    """
    if frequency < 0:
        raise SignalDomainError(f"frequency must be non-negative, got {frequency}")
    if frequency >= sample_rate / 2:
        raise SignalDomainError(
            f"tone at {frequency} Hz is not representable at "
            f"{sample_rate} Hz (Nyquist {sample_rate / 2} Hz)"
        )
    t = np.arange(_n_samples(duration, sample_rate)) / sample_rate
    return Signal(
        amplitude * np.cos(2 * np.pi * frequency * t + phase),
        sample_rate,
        unit,
    )


def multi_tone(
    components: Sequence[tuple[float, float]],
    duration: float,
    sample_rate: float,
    unit: str = Unit.DIGITAL,
) -> Signal:
    """Sum of cosine tones given as ``(frequency, amplitude)`` pairs."""
    if not components:
        raise SignalDomainError("multi_tone requires at least one component")
    n = _n_samples(duration, sample_rate)
    t = np.arange(n) / sample_rate
    out = np.zeros(n)
    for frequency, amplitude in components:
        if frequency < 0 or frequency >= sample_rate / 2:
            raise SignalDomainError(
                f"component at {frequency} Hz is not representable at "
                f"{sample_rate} Hz"
            )
        out += amplitude * np.cos(2 * np.pi * frequency * t)
    return Signal(out, sample_rate, unit)


def chirp(
    f_start: float,
    f_end: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    unit: str = Unit.DIGITAL,
) -> Signal:
    """Linear frequency sweep from ``f_start`` to ``f_end``."""
    for f in (f_start, f_end):
        if f < 0 or f >= sample_rate / 2:
            raise SignalDomainError(
                f"chirp endpoint {f} Hz is not representable at "
                f"{sample_rate} Hz"
            )
    n = _n_samples(duration, sample_rate)
    t = np.arange(n) / sample_rate
    if duration > 0:
        k = (f_end - f_start) / duration
    else:
        k = 0.0
    phase = 2 * np.pi * (f_start * t + 0.5 * k * t * t)
    return Signal(amplitude * np.cos(phase), sample_rate, unit)


def white_noise(
    duration: float,
    sample_rate: float,
    rng: np.random.Generator,
    rms_level: float = 1.0,
    unit: str = Unit.DIGITAL,
) -> Signal:
    """Gaussian white noise with the requested RMS level.

    The random generator is a required argument: every stochastic
    element in this library takes an explicit
    :class:`numpy.random.Generator` so experiments are reproducible.
    """
    if rms_level < 0:
        raise SignalDomainError(
            f"rms_level must be non-negative, got {rms_level}"
        )
    n = _n_samples(duration, sample_rate)
    return Signal(rng.normal(0.0, 1.0, n) * rms_level, sample_rate, unit)


def from_samples(
    samples: Iterable[float] | np.ndarray,
    sample_rate: float,
    unit: str = Unit.DIGITAL,
) -> Signal:
    """Convenience alias for the :class:`Signal` constructor."""
    return Signal(samples, sample_rate, unit)


def mix(signals: Sequence[Signal]) -> Signal:
    """Sum a non-empty sequence of signals sample-wise.

    All inputs must share rate and unit; shorter signals are treated as
    zero-padded to the longest length. This is the primitive the
    acoustic channel uses to combine waves from multiple speakers at
    the microphone diaphragm.
    """
    if not signals:
        raise SignalDomainError("mix requires at least one signal")
    total = signals[0]
    for s in signals[1:]:
        total = total + s
    return total
