"""Scalar signal measures: dB conversions, SNR, THD, correlation.

Conventions
-----------
* ``linear_to_db`` / ``db_to_linear`` operate on *amplitude* ratios
  (20 log10); ``power_ratio_to_db`` / ``db_to_power_ratio`` operate on
  *power* ratios (10 log10). The two families are deliberately named
  differently because mixing them up is the classic acoustics bug.
* A floor of :data:`EPSILON_POWER` avoids ``-inf`` for silent signals
  while remaining ~300 dB below any level this library measures.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.signals import Signal
from repro.errors import SignalDomainError

#: Smallest power considered distinguishable from silence.
EPSILON_POWER = 1e-30


def rms(samples: np.ndarray | Signal) -> float:
    """Root-mean-square of an array or :class:`Signal`."""
    if isinstance(samples, Signal):
        return samples.rms()
    array = np.asarray(samples, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.square(array))))


def linear_to_db(amplitude_ratio: float) -> float:
    """Convert an amplitude ratio to decibels (20 log10)."""
    if amplitude_ratio < 0:
        raise SignalDomainError(
            f"amplitude ratio must be non-negative, got {amplitude_ratio}"
        )
    return 10.0 * np.log10(max(amplitude_ratio**2, EPSILON_POWER))


def db_to_linear(db: float) -> float:
    """Convert decibels to an amplitude ratio (inverse of 20 log10)."""
    return float(10.0 ** (db / 20.0))


def power_ratio_to_db(power_ratio: float) -> float:
    """Convert a power ratio to decibels (10 log10)."""
    if power_ratio < 0:
        raise SignalDomainError(
            f"power ratio must be non-negative, got {power_ratio}"
        )
    return float(10.0 * np.log10(max(power_ratio, EPSILON_POWER)))


def db_to_power_ratio(db: float) -> float:
    """Convert decibels to a power ratio (inverse of 10 log10)."""
    return float(10.0 ** (db / 10.0))


def snr_db(signal: Signal, noise: Signal) -> float:
    """Signal-to-noise ratio in dB from separate signal and noise.

    Both inputs must share rate and unit; the ratio is of mean-square
    powers.
    """
    signal.require_same_rate(noise)
    signal.require_same_unit(noise)
    p_signal = signal.rms() ** 2
    p_noise = noise.rms() ** 2
    return power_ratio_to_db(
        max(p_signal, EPSILON_POWER) / max(p_noise, EPSILON_POWER)
    )


def residual_snr_db(reference: Signal, degraded: Signal) -> float:
    """SNR of ``degraded`` against ``reference`` after optimal gain.

    The degraded signal is projected onto the reference (least-squares
    gain), and the residual is treated as noise. Robust to arbitrary
    scaling, which matters because nonlinear demodulation changes
    absolute levels.
    """
    reference.require_same_rate(degraded)
    n = min(reference.n_samples, degraded.n_samples)
    if n == 0:
        raise SignalDomainError("cannot compare empty signals")
    x = reference.samples[:n]
    y = degraded.samples[:n]
    denom = float(np.dot(x, x))
    if denom <= EPSILON_POWER:
        raise SignalDomainError("reference signal is silent")
    gain = float(np.dot(x, y)) / denom
    residual = y - gain * x
    p_signal = float(np.mean(np.square(gain * x)))
    p_noise = float(np.mean(np.square(residual)))
    return power_ratio_to_db(
        max(p_signal, EPSILON_POWER) / max(p_noise, EPSILON_POWER)
    )


def thd(signal: Signal, fundamental_hz: float, n_harmonics: int = 5) -> float:
    """Total harmonic distortion as an amplitude ratio.

    Computed from the Welch PSD: the square root of the summed harmonic
    powers (2f..Nf) over the fundamental power. Harmonics above Nyquist
    are ignored.
    """
    from repro.dsp.spectrum import welch_psd  # local import: avoid cycle

    if fundamental_hz <= 0 or fundamental_hz >= signal.nyquist:
        raise SignalDomainError(
            f"fundamental {fundamental_hz} Hz outside (0, {signal.nyquist})"
        )
    if n_harmonics < 1:
        raise SignalDomainError(
            f"n_harmonics must be >= 1, got {n_harmonics}"
        )
    psd = welch_psd(signal)
    half_band = max(psd.bin_width * 3, fundamental_hz * 0.02)
    p_fund = psd.band_power(
        fundamental_hz - half_band, fundamental_hz + half_band
    )
    if p_fund <= EPSILON_POWER:
        raise SignalDomainError(
            f"no power found at the fundamental {fundamental_hz} Hz"
        )
    p_harm = 0.0
    for k in range(2, n_harmonics + 2):
        f_k = k * fundamental_hz
        if f_k >= signal.nyquist:
            break
        p_harm += psd.band_power(f_k - half_band, f_k + half_band)
    return float(np.sqrt(p_harm / p_fund))


def normalized_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation of two equal-length arrays, in ``[-1, 1]``.

    Returns 0.0 when either input has (near-)zero variance, which is
    the behaviour the defense features need for silent segments.
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1:
        raise SignalDomainError(
            "correlation needs 1-D arrays, got shapes "
            f"{x.shape} and {y.shape}; pass one envelope row at a "
            "time, not a batch matrix"
        )
    if x.shape != y.shape:
        raise SignalDomainError(
            f"correlation inputs must match in shape: {x.shape} vs {y.shape}"
        )
    if x.size < 2:
        return 0.0
    x = x - np.mean(x)
    y = y - np.mean(y)
    denom = float(np.sqrt(np.sum(x * x) * np.sum(y * y)))
    if denom <= EPSILON_POWER:
        return 0.0
    return float(np.clip(np.dot(x, y) / denom, -1.0, 1.0))


def max_cross_correlation(
    a: np.ndarray, b: np.ndarray, max_lag: int = 0
) -> float:
    """Maximum normalised correlation over integer lags up to ``max_lag``.

    Used by the defense to align the low-frequency trace with the voice
    band envelope despite small group-delay differences.
    """
    if max_lag < 0:
        raise SignalDomainError(f"max_lag must be >= 0, got {max_lag}")
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1:
        raise SignalDomainError(
            "cross-correlation needs 1-D arrays, got shapes "
            f"{x.shape} and {y.shape}; pass one envelope row at a "
            "time, not a batch matrix"
        )
    n = min(x.size, y.size)
    x = x[:n]
    y = y[:n]
    best = normalized_correlation(x, y)
    for lag in range(1, max_lag + 1):
        if lag >= n:
            break
        best = max(best, normalized_correlation(x[lag:], y[: n - lag]))
        best = max(best, normalized_correlation(x[: n - lag], y[lag:]))
    return best
