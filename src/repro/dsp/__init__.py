"""Digital signal processing substrate.

Every other subsystem in the library (acoustics, hardware models,
attack generation, defense features) is built on the primitives in this
package:

``signals``
    The :class:`~repro.dsp.signals.Signal` container (samples + sample
    rate + physical unit) and waveform factories (tones, chirps, noise).
``filters``
    FIR and IIR filter design and application with explicit, validated
    band edges.
``resample``
    Explicit rational resampling; the only sanctioned way to change a
    signal's sample rate.
``modulation``
    Amplitude modulation / demodulation used by the attack pipeline.
``spectrum``
    Welch PSD, STFT/spectrogram and band-energy analysis.
``measures``
    dB conversions, RMS/SNR/THD and correlation measures.
``windows``
    Window functions used by the spectral estimators.
``framing``
    Frame/hop arithmetic shared by the VAD, the defense envelopes and
    the streaming chunker (one statement of the frame grid).
"""

from repro.dsp.signals import (
    Signal,
    Unit,
    chirp,
    from_samples,
    mix,
    multi_tone,
    silence,
    tone,
    white_noise,
)
from repro.dsp.filters import (
    FilterSpec,
    band_pass,
    band_stop,
    fir_band_pass,
    fir_low_pass,
    high_pass,
    low_pass,
)
from repro.dsp.framing import (
    frame_count,
    frame_params,
    frame_rms,
    sliding_frames,
)
from repro.dsp.resample import rational_ratio, resample, upsample_to
from repro.dsp.modulation import (
    am_demodulate_envelope,
    am_demodulate_square_law,
    am_modulate,
    coherent_demodulate,
    dsb_sc_modulate,
)
from repro.dsp.spectrum import (
    PowerSpectrum,
    Spectrogram,
    band_power,
    band_rms,
    dominant_frequency,
    power_spectrum,
    spectrogram,
    welch_psd,
)
from repro.dsp.measures import (
    db_to_linear,
    db_to_power_ratio,
    linear_to_db,
    max_cross_correlation,
    normalized_correlation,
    power_ratio_to_db,
    residual_snr_db,
    rms,
    snr_db,
    thd,
)

__all__ = [
    "Signal",
    "Unit",
    "tone",
    "multi_tone",
    "chirp",
    "white_noise",
    "silence",
    "from_samples",
    "mix",
    "FilterSpec",
    "low_pass",
    "high_pass",
    "band_pass",
    "band_stop",
    "fir_low_pass",
    "fir_band_pass",
    "frame_params",
    "frame_count",
    "sliding_frames",
    "frame_rms",
    "resample",
    "upsample_to",
    "rational_ratio",
    "am_modulate",
    "dsb_sc_modulate",
    "am_demodulate_envelope",
    "am_demodulate_square_law",
    "coherent_demodulate",
    "PowerSpectrum",
    "Spectrogram",
    "welch_psd",
    "power_spectrum",
    "spectrogram",
    "band_power",
    "band_rms",
    "dominant_frequency",
    "rms",
    "linear_to_db",
    "db_to_linear",
    "power_ratio_to_db",
    "db_to_power_ratio",
    "snr_db",
    "residual_snr_db",
    "thd",
    "normalized_correlation",
    "max_cross_correlation",
]
