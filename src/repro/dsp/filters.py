"""Filter design and application.

Two families are provided:

* Zero-phase IIR (Butterworth, applied with ``filtfilt``) — the
  workhorse for band-limiting inside models, where phase linearity and
  no group delay matter more than causality.
* Linear-phase FIR (windowed sinc) — used where an explicit impulse
  response is useful (e.g. channel models) or where very sharp
  transition bands at high rates are needed.

All design functions validate band edges against Nyquist and raise
:class:`~repro.errors.FilterDesignError` rather than letting scipy
produce a silently-wrong filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.signals import Signal
from repro.errors import FilterDesignError


@dataclass(frozen=True)
class FilterSpec:
    """Declarative description of a frequency-selective filter.

    Attributes
    ----------
    kind:
        One of ``"lowpass"``, ``"highpass"``, ``"bandpass"``,
        ``"bandstop"``.
    low_hz:
        Lower band edge; ignored for ``lowpass``.
    high_hz:
        Upper band edge; ignored for ``highpass``.
    order:
        Butterworth order (per section for band filters).
    """

    kind: str
    low_hz: float = 0.0
    high_hz: float = 0.0
    order: int = 6

    def __post_init__(self) -> None:
        if self.kind not in ("lowpass", "highpass", "bandpass", "bandstop"):
            raise FilterDesignError(f"unknown filter kind {self.kind!r}")
        if self.order < 1:
            raise FilterDesignError(
                f"filter order must be >= 1, got {self.order}"
            )

    def apply(self, signal: Signal) -> Signal:
        """Apply this spec to a signal (zero-phase Butterworth)."""
        if self.kind == "lowpass":
            return low_pass(signal, self.high_hz, order=self.order)
        if self.kind == "highpass":
            return high_pass(signal, self.low_hz, order=self.order)
        if self.kind == "bandpass":
            return band_pass(signal, self.low_hz, self.high_hz, order=self.order)
        return band_stop(signal, self.low_hz, self.high_hz, order=self.order)


def _check_edge(frequency: float, sample_rate: float, name: str) -> None:
    nyquist = sample_rate / 2
    if not (0 < frequency < nyquist):
        raise FilterDesignError(
            f"{name} ({frequency} Hz) must lie strictly between 0 and "
            f"Nyquist ({nyquist} Hz) at sample rate {sample_rate} Hz"
        )


def _min_length(order: int) -> int:
    # filtfilt needs a signal longer than its padding; a generous lower
    # bound avoids cryptic scipy errors on near-empty inputs.
    return 3 * (2 * order + 1)


@lru_cache(maxsize=128)
def _butter_sos_design(
    order: int, edges: tuple[float, ...], btype: str, fs: float
) -> np.ndarray:
    """One Butterworth SOS design per distinct specification.

    ``scipy.signal.butter`` re-runs its analog-prototype, bilinear
    and zpk-pairing linear algebra on every call (~10 ms for the
    order-8 band filters); the streaming guard designs the *same* two
    band-pass filters at every utterance close, so the design is
    memoised. ``butter`` is deterministic for identical arguments, so
    a cache hit is bitwise identical to a fresh design.
    """
    critical = list(edges) if len(edges) > 1 else edges[0]
    return sp_signal.butter(
        order, critical, btype=btype, fs=fs, output="sos"
    )


def butter_sos(
    order: int, edges: tuple[float, ...], btype: str, fs: float
) -> np.ndarray:
    """A fresh copy of the cached Butterworth SOS design."""
    # Copy per call: the design work is the expensive part, and a
    # private copy means no caller can corrupt the cached array.
    return _butter_sos_design(order, tuple(edges), btype, float(fs)).copy()


def sos_filtfilt_array(x: np.ndarray, sos: np.ndarray) -> np.ndarray:
    """Zero-phase SOS filtering along the last axis of a raw array.

    The single application point for every Butterworth filter in the
    library: scalar :class:`Signal` filtering and the batched
    ``*_array`` variants both land here, so a stacked
    ``(n_signals, n_samples)`` batch is filtered row-by-row with
    *bitwise* the same arithmetic as one waveform at a time.

    Float32 input stays float32 (the opt-in fast-math path); anything
    else is promoted to float64, the golden mode.
    """
    x = np.asarray(x)
    dtype = np.float32 if x.dtype == np.float32 else np.float64
    x = np.asarray(x, dtype=dtype)
    if x.ndim not in (1, 2):
        raise FilterDesignError(
            f"expected a 1-D waveform or 2-D (n_signals, n_samples) "
            f"batch, got shape {x.shape}"
        )
    order_hint = sos.shape[0] * 2
    if x.shape[-1] <= _min_length(order_hint):
        raise FilterDesignError(
            f"signal too short ({x.shape[-1]} samples) for "
            f"zero-phase filtering at this order"
        )
    if x.ndim == 1:
        return sp_signal.sosfiltfilt(sos, x, axis=-1)
    # Filter a stack one row at a time. Handing the whole
    # (n_signals, n_samples) block to sosfiltfilt re-reads the full
    # stack from main memory on every cascaded-section pass (and pays
    # a stack-sized copy inside sosfilt), which is measurably slower
    # than streaming one cache-resident row through all sections.
    #
    # The per-row passes below replicate scipy's sosfiltfilt exactly
    # (odd extension, x[0]/y[-1]-scaled initial conditions, default
    # padlen) but hoist the row-invariant work — sosfilt_zi's per-
    # section linear solves and the padlen arithmetic — out of the
    # loop, where sosfiltfilt would redo it for every row.
    n_sections = sos.shape[0]
    ntaps = 2 * n_sections + 1
    ntaps -= min(int((sos[:, 2] == 0).sum()), int((sos[:, 5] == 0).sum()))
    edge = ntaps * 3
    zi = sp_signal.sosfilt_zi(sos)
    out = np.empty_like(x)
    for index in range(x.shape[0]):
        row = x[index]
        ext = np.concatenate(
            (
                2 * row[:1] - row[edge:0:-1],
                row,
                2 * row[-1:] - row[-2 : -(edge + 2) : -1],
            )
        )
        y, _ = sp_signal.sosfilt(sos, ext, zi=zi * ext[:1])
        y, _ = sp_signal.sosfilt(sos, y[::-1], zi=zi * y[-1:])
        out[index] = y[::-1][edge:-edge]
    return out


def _apply_sos(signal: Signal, sos: np.ndarray) -> Signal:
    return signal.replace(samples=sos_filtfilt_array(signal.samples, sos))


def low_pass_array(
    x: np.ndarray, sample_rate: float, cutoff_hz: float, order: int = 6
) -> np.ndarray:
    """Zero-phase Butterworth low-pass along the last axis."""
    _check_edge(cutoff_hz, sample_rate, "cutoff_hz")
    sos = butter_sos(order, (cutoff_hz,), "lowpass", sample_rate)
    return sos_filtfilt_array(x, sos)


def high_pass_array(
    x: np.ndarray, sample_rate: float, cutoff_hz: float, order: int = 6
) -> np.ndarray:
    """Zero-phase Butterworth high-pass along the last axis."""
    _check_edge(cutoff_hz, sample_rate, "cutoff_hz")
    sos = butter_sos(order, (cutoff_hz,), "highpass", sample_rate)
    return sos_filtfilt_array(x, sos)


def band_pass_array(
    x: np.ndarray,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
    order: int = 6,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass along the last axis."""
    _check_band(low_hz, high_hz, sample_rate)
    sos = butter_sos(order, (low_hz, high_hz), "bandpass", sample_rate)
    return sos_filtfilt_array(x, sos)


def low_pass(signal: Signal, cutoff_hz: float, order: int = 6) -> Signal:
    """Zero-phase Butterworth low-pass filter."""
    return signal.replace(
        samples=low_pass_array(
            signal.samples, signal.sample_rate, cutoff_hz, order
        )
    )


def high_pass(signal: Signal, cutoff_hz: float, order: int = 6) -> Signal:
    """Zero-phase Butterworth high-pass filter."""
    return signal.replace(
        samples=high_pass_array(
            signal.samples, signal.sample_rate, cutoff_hz, order
        )
    )


def _check_band(low_hz: float, high_hz: float, sample_rate: float) -> None:
    _check_edge(low_hz, sample_rate, "low_hz")
    _check_edge(high_hz, sample_rate, "high_hz")
    if low_hz >= high_hz:
        raise FilterDesignError(
            f"band edges inverted: low {low_hz} Hz >= high {high_hz} Hz"
        )


def band_pass(
    signal: Signal, low_hz: float, high_hz: float, order: int = 6
) -> Signal:
    """Zero-phase Butterworth band-pass filter."""
    return signal.replace(
        samples=band_pass_array(
            signal.samples, signal.sample_rate, low_hz, high_hz, order
        )
    )


def band_stop(
    signal: Signal, low_hz: float, high_hz: float, order: int = 6
) -> Signal:
    """Zero-phase Butterworth band-stop (notch) filter."""
    _check_band(low_hz, high_hz, signal.sample_rate)
    sos = butter_sos(
        order, (low_hz, high_hz), "bandstop", signal.sample_rate
    )
    return _apply_sos(signal, sos)


# ----------------------------------------------------------------------
# FIR designs
# ----------------------------------------------------------------------
def fir_low_pass_taps(
    cutoff_hz: float, sample_rate: float, n_taps: int = 257
) -> np.ndarray:
    """Design windowed-sinc low-pass taps (Hamming window)."""
    _check_edge(cutoff_hz, sample_rate, "cutoff_hz")
    if n_taps < 3 or n_taps % 2 == 0:
        raise FilterDesignError(
            f"n_taps must be an odd integer >= 3, got {n_taps}"
        )
    return sp_signal.firwin(n_taps, cutoff_hz, fs=sample_rate)


def fir_band_pass_taps(
    low_hz: float, high_hz: float, sample_rate: float, n_taps: int = 257
) -> np.ndarray:
    """Design windowed-sinc band-pass taps (Hamming window)."""
    _check_band(low_hz, high_hz, sample_rate)
    if n_taps < 3 or n_taps % 2 == 0:
        raise FilterDesignError(
            f"n_taps must be an odd integer >= 3, got {n_taps}"
        )
    return sp_signal.firwin(
        n_taps, [low_hz, high_hz], fs=sample_rate, pass_zero=False
    )


def _apply_fir(signal: Signal, taps: np.ndarray) -> Signal:
    # Compensate the linear-phase group delay so FIR results align with
    # the zero-phase IIR paths used elsewhere.
    delay = (len(taps) - 1) // 2
    padded = np.concatenate([signal.samples, np.zeros(delay)])
    filtered = sp_signal.lfilter(taps, [1.0], padded)[delay:]
    return signal.replace(samples=filtered)


def fir_low_pass(
    signal: Signal, cutoff_hz: float, n_taps: int = 257
) -> Signal:
    """Linear-phase FIR low-pass, delay-compensated."""
    taps = fir_low_pass_taps(cutoff_hz, signal.sample_rate, n_taps)
    return _apply_fir(signal, taps)


def fir_band_pass(
    signal: Signal, low_hz: float, high_hz: float, n_taps: int = 257
) -> Signal:
    """Linear-phase FIR band-pass, delay-compensated."""
    taps = fir_band_pass_taps(low_hz, high_hz, signal.sample_rate, n_taps)
    return _apply_fir(signal, taps)
