"""Window functions used by the spectral estimators.

Implemented directly (rather than via :mod:`scipy.signal.windows`) so
their definitions are explicit and testable; all are the standard
periodic-symmetric forms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalDomainError


def rectangular(n: int) -> np.ndarray:
    """All-ones window (no tapering)."""
    _check_length(n)
    return np.ones(n)


def hann(n: int) -> np.ndarray:
    """Hann (raised-cosine) window — default for PSD estimation."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2 * np.pi * k / (n - 1))


def hamming(n: int) -> np.ndarray:
    """Hamming window."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2 * np.pi * k / (n - 1))


def blackman(n: int) -> np.ndarray:
    """Blackman window — higher sidelobe rejection, wider main lobe."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    x = 2 * np.pi * k / (n - 1)
    return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2 * x)


_WINDOWS = {
    "rectangular": rectangular,
    "hann": hann,
    "hamming": hamming,
    "blackman": blackman,
}


def get_window(name: str, n: int) -> np.ndarray:
    """Look up a window by name.

    Raises
    ------
    SignalDomainError
        For unknown window names, listing the valid choices.
    """
    try:
        factory = _WINDOWS[name]
    except KeyError:
        raise SignalDomainError(
            f"unknown window {name!r}; choose from {sorted(_WINDOWS)}"
        ) from None
    return factory(n)


def _check_length(n: int) -> None:
    if n < 1:
        raise SignalDomainError(f"window length must be >= 1, got {n}")


def coherent_gain(window: np.ndarray) -> float:
    """Mean of the window — amplitude correction for windowed FFTs."""
    return float(np.mean(window))


def noise_gain(window: np.ndarray) -> float:
    """Mean square of the window — power correction for windowed PSDs."""
    return float(np.mean(np.square(window)))
