"""Explicit sample-rate conversion.

The library simulates acoustics at a high rate (typically 192 kHz, so
ultrasonic carriers up to ~90 kHz are representable) while devices
record at 16-48 kHz. :func:`resample` is the single sanctioned way to
move between rates; `Signal` arithmetic deliberately refuses to mix
rates so that every conversion is visible in the code.

Resampling uses scipy's polyphase implementation, which applies a
proper anti-aliasing filter — important here because the attack
signals are rich in energy right at band edges.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.signals import Signal
from repro.errors import SampleRateError

#: Largest numerator/denominator allowed when converting the rate ratio
#: to a rational number. 1000 covers every standard audio-rate pair
#: (44100/48000 = 147/160, 192000/16000 = 12, ...).
_MAX_RATIO_DENOMINATOR = 1000


def rational_ratio(
    target_rate: float, source_rate: float
) -> tuple[int, int]:
    """Return ``(up, down)`` such that ``target/source == up/down``.

    Raises
    ------
    SampleRateError
        If the ratio cannot be expressed with numerator and denominator
        below :data:`_MAX_RATIO_DENOMINATOR` — a symptom of a typo'd
        sample rate rather than a legitimate conversion.
    """
    if target_rate <= 0 or source_rate <= 0:
        raise SampleRateError(
            f"rates must be positive, got {target_rate} and {source_rate}"
        )
    ratio = Fraction(target_rate / source_rate).limit_denominator(
        _MAX_RATIO_DENOMINATOR
    )
    achieved = source_rate * ratio.numerator / ratio.denominator
    if abs(achieved - target_rate) > 1e-6 * target_rate:
        raise SampleRateError(
            f"cannot express rate conversion {source_rate} -> "
            f"{target_rate} Hz as a small rational ratio; "
            "check the requested rates"
        )
    return ratio.numerator, ratio.denominator


def resample_array(
    x: np.ndarray, source_rate: float, target_rate: float
) -> np.ndarray:
    """Polyphase-resample a raw array along its last axis.

    The shared implementation under :func:`resample` and the batched
    trial kernel: a stacked ``(n_signals, n_samples)`` batch resamples
    row-by-row with bitwise the same arithmetic as one waveform at a
    time. Float32 input stays float32 (the opt-in fast-math path);
    anything else is promoted to float64, the golden mode.
    """
    dtype = np.float32 if getattr(x, "dtype", None) == np.float32 else np.float64
    x = np.asarray(x, dtype=dtype)
    if x.ndim not in (1, 2):
        raise SampleRateError(
            f"expected a 1-D waveform or 2-D (n_signals, n_samples) "
            f"batch, got shape {x.shape}"
        )
    if abs(target_rate - source_rate) < 1e-9:
        return x.copy()
    up, down = rational_ratio(target_rate, source_rate)
    return np.asarray(
        sp_signal.resample_poly(x, up, down, axis=-1), dtype=dtype
    )


def resample(signal: Signal, target_rate: float) -> Signal:
    """Resample to ``target_rate`` via polyphase filtering.

    The anti-aliasing filter is scipy's default Kaiser-windowed design,
    which attenuates aliases by ~60 dB — far below every effect this
    library measures.
    """
    if abs(target_rate - signal.sample_rate) < 1e-9:
        return signal.copy()
    return Signal(
        resample_array(signal.samples, signal.sample_rate, target_rate),
        target_rate,
        signal.unit,
    )


def upsample_to(signal: Signal, target_rate: float) -> Signal:
    """Resample upwards only; refuse a rate decrease.

    This is the "Upsampling" step of the attack pipeline: the voice
    command recorded at 48 kHz must move to the acoustic rate before
    ultrasonic modulation. Passing a lower rate here is always a bug,
    so it raises instead of silently discarding bandwidth.
    """
    if target_rate < signal.sample_rate:
        raise SampleRateError(
            f"upsample_to called with target {target_rate} Hz below the "
            f"current rate {signal.sample_rate} Hz; use resample() if a "
            "rate decrease is intended"
        )
    return resample(signal, target_rate)
