"""Frame/hop arithmetic: the single source of truth.

Several subsystems cut waveforms into short analysis frames — the
energy VAD (:mod:`repro.speech.vad`), the defense's band envelopes
(:mod:`repro.defense.traces`) and the online chunker of the streaming
guard (:mod:`repro.stream.chunker`). They used to restate the same
``int(round(seconds * rate))`` conversions and off-by-one frame-count
edge cases independently; any drift between those restatements breaks
the streaming subsystem's bitwise-parity guarantee (an online frame
count that disagrees with the offline one by one frame shifts every
downstream decision). This module is the one statement of that
arithmetic:

* :func:`frame_params` — seconds to integer ``(frame_len, hop)``;
* :func:`frame_count` — how many complete frames a sample count holds;
* :func:`sliding_frames` — the strided ``(n_frames, frame_len)`` view;
* :func:`frame_rms` — per-frame RMS energies over that view.

Offline callers pass a whole waveform; the streaming chunker applies
the same functions to the growing prefix it has buffered, which is why
its frame boundaries and energies match the offline ones bitwise by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalDomainError


def frame_params(
    sample_rate: float,
    frame_length_s: float,
    hop_length_s: float,
) -> tuple[int, int]:
    """Integer ``(frame_len, hop)`` for second-valued frame settings.

    Uses ``int(round(...))`` — the conversion every framing call site
    in the library has always used — and validates that both come out
    positive, so a pathological rate/length combination fails here
    with one message instead of as a downstream stride error.
    """
    frame_len = int(round(frame_length_s * sample_rate))
    hop = int(round(hop_length_s * sample_rate))
    if frame_len <= 0 or hop <= 0:
        raise SignalDomainError(
            f"frame and hop lengths must be positive, got frame "
            f"{frame_length_s} s and hop {hop_length_s} s at "
            f"{sample_rate} Hz"
        )
    return frame_len, hop


def frame_count(n_samples: int, frame_len: int, hop: int) -> int:
    """Complete frames in ``n_samples`` (frame ``i`` starts at
    ``i * hop`` and spans ``frame_len`` samples).

    Zero when the signal is shorter than one frame — callers decide
    whether that is an error (the VAD raises) or simply "no frames
    yet" (the streaming chunker waits for more samples).
    """
    if frame_len <= 0 or hop <= 0:
        raise SignalDomainError(
            f"frame_len and hop must be positive, got {frame_len} "
            f"and {hop}"
        )
    if n_samples < frame_len:
        return 0
    return (n_samples - frame_len) // hop + 1


def sliding_frames(
    samples: np.ndarray, frame_len: int, hop: int
) -> np.ndarray:
    """The ``(n_frames, frame_len)`` strided frame view of a waveform.

    A zero-copy view when possible (the same
    ``sliding_window_view(...)[::hop]`` the VAD has always used), so
    per-frame reductions over it are bitwise identical wherever they
    run.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise SignalDomainError(
            f"sliding_frames expects a 1-D waveform, got shape "
            f"{samples.shape}"
        )
    if frame_len <= 0 or hop <= 0:
        raise SignalDomainError(
            f"frame_len and hop must be positive, got {frame_len} "
            f"and {hop}"
        )
    if samples.shape[0] < frame_len:
        raise SignalDomainError(
            f"waveform ({samples.shape[0]} samples) shorter than one "
            f"frame ({frame_len})"
        )
    return np.lib.stride_tricks.sliding_window_view(samples, frame_len)[
        ::hop
    ]


def frame_rms(
    samples: np.ndarray, frame_len: int, hop: int
) -> np.ndarray:
    """Per-frame RMS energies, one value per complete frame.

    The exact reduction the VAD applies —
    ``sqrt(mean(square(frame)))`` along the frame axis — shared so
    that online frame energies computed over a streamed prefix match
    the offline ones over the full recording bitwise.
    """
    frames = sliding_frames(samples, frame_len, hop)
    return np.sqrt(np.mean(np.square(frames), axis=1))


def sliding_frames_matrix(
    samples: np.ndarray, frame_len: int, hop: int
) -> np.ndarray:
    """The ``(n_rows, n_frames, frame_len)`` frame view of a stack.

    Row ``i`` of the result is exactly ``sliding_frames(samples[i])``
    — the same strided view, taken along the last axis — so per-frame
    reductions over a whole stream batch are bitwise identical to the
    per-row calls they replace.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise SignalDomainError(
            f"sliding_frames_matrix expects a 2-D (n_rows, n_samples) "
            f"stack, got shape {samples.shape}"
        )
    if frame_len <= 0 or hop <= 0:
        raise SignalDomainError(
            f"frame_len and hop must be positive, got {frame_len} "
            f"and {hop}"
        )
    if samples.shape[-1] < frame_len:
        raise SignalDomainError(
            f"rows ({samples.shape[-1]} samples) shorter than one "
            f"frame ({frame_len})"
        )
    return np.lib.stride_tricks.sliding_window_view(
        samples, frame_len, axis=-1
    )[:, ::hop]


def frame_rms_matrix(
    samples: np.ndarray, frame_len: int, hop: int
) -> np.ndarray:
    """Per-frame RMS energies of every row of a sample stack.

    The ``(n_rows, n_frames)`` counterpart of :func:`frame_rms`: one
    ``sqrt(mean(square))`` reduction over the strided frame view of
    the whole stack. Each row is bitwise identical to
    ``frame_rms(samples[i], ...)`` — the per-frame pairwise summation
    is unchanged by the leading batch axis — which is what lets the
    fleet kernel compute every stream's frame energies in one op.
    """
    frames = sliding_frames_matrix(samples, frame_len, hop)
    return np.sqrt(np.mean(np.square(frames), axis=-1))
