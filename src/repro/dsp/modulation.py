"""Amplitude modulation and demodulation.

The attack pipeline shifts a baseband voice command ``m(t)`` to an
ultrasonic carrier ``f_c`` as

    s(t) = [beta * m(t) + 1] * cos(2*pi*f_c*t)          (with carrier)

or, in the two-speaker/split variants, as the suppressed-carrier
product ``m(t) * cos(2*pi*f_c*t)`` with the carrier radiated
separately. On the receiving side the *microphone's own quadratic
nonlinearity* performs square-law demodulation; the functions here also
provide ideal envelope/coherent demodulators used as analysis
references and by the defense's reconstruction features.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.filters import low_pass
from repro.dsp.signals import Signal
from repro.errors import ModulationError


def _check_carrier(
    carrier_hz: float, bandwidth_hz: float, sample_rate: float
) -> None:
    if carrier_hz <= 0:
        raise ModulationError(
            f"carrier frequency must be positive, got {carrier_hz}"
        )
    if bandwidth_hz < 0:
        raise ModulationError(
            f"bandwidth must be non-negative, got {bandwidth_hz}"
        )
    nyquist = sample_rate / 2
    if carrier_hz + bandwidth_hz >= nyquist:
        raise ModulationError(
            f"upper sideband {carrier_hz + bandwidth_hz} Hz reaches "
            f"Nyquist ({nyquist} Hz); raise the sample rate or lower "
            "the carrier"
        )
    if carrier_hz - bandwidth_hz <= 0:
        raise ModulationError(
            f"lower sideband {carrier_hz - bandwidth_hz} Hz touches DC; "
            "the carrier is too low for this bandwidth"
        )


def am_modulate(
    baseband: Signal,
    carrier_hz: float,
    modulation_depth: float = 1.0,
    carrier_amplitude: float = 1.0,
    bandwidth_hz: float | None = None,
    phase: float = 0.0,
) -> Signal:
    """Full-carrier amplitude modulation.

    Produces ``A * (1 + depth * m_n(t)) * cos(2*pi*f_c*t)`` where
    ``m_n`` is the baseband normalised to unit peak. The result peaks
    at ``A * (1 + depth)``.

    Parameters
    ----------
    baseband:
        Message signal; normalised internally to unit peak so that
        ``modulation_depth`` has its textbook meaning.
    carrier_hz:
        Carrier frequency. Together with ``bandwidth_hz`` (defaulting
        to the baseband Nyquist) it must keep both sidebands inside
        ``(0, Nyquist)``.
    modulation_depth:
        AM depth in ``(0, 1]``. Depths above 1 overmodulate, which
        square-law receivers demodulate with gross distortion, so they
        are rejected.
    carrier_amplitude:
        Peak amplitude of the unmodulated carrier.

    Raises
    ------
    ModulationError
        For invalid depth or a sideband outside the representable band.
    """
    if not 0 < modulation_depth <= 1:
        raise ModulationError(
            f"modulation depth must be in (0, 1], got {modulation_depth}"
        )
    if carrier_amplitude <= 0:
        raise ModulationError(
            f"carrier amplitude must be positive, got {carrier_amplitude}"
        )
    if bandwidth_hz is None:
        bandwidth_hz = baseband.sample_rate / 2
    _check_carrier(carrier_hz, bandwidth_hz, baseband.sample_rate)
    peak = baseband.peak()
    message = baseband.samples / peak if peak > 0 else baseband.samples
    t = baseband.times()
    carrier = np.cos(2 * np.pi * carrier_hz * t + phase)
    modulated = (
        carrier_amplitude * (1.0 + modulation_depth * message) * carrier
    )
    return baseband.replace(samples=modulated)


def dsb_sc_modulate(
    baseband: Signal,
    carrier_hz: float,
    amplitude: float = 1.0,
    bandwidth_hz: float | None = None,
    phase: float = 0.0,
) -> Signal:
    """Double-sideband suppressed-carrier modulation.

    This is the per-speaker waveform in the split attack: the sidebands
    ride on one speaker while the carrier tone is radiated by another,
    so no single speaker carries the complete AM signal whose envelope
    its own nonlinearity could make audible.
    """
    if amplitude <= 0:
        raise ModulationError(f"amplitude must be positive, got {amplitude}")
    if bandwidth_hz is None:
        bandwidth_hz = baseband.sample_rate / 2
    _check_carrier(carrier_hz, bandwidth_hz, baseband.sample_rate)
    peak = baseband.peak()
    message = baseband.samples / peak if peak > 0 else baseband.samples
    t = baseband.times()
    modulated = amplitude * message * np.cos(2 * np.pi * carrier_hz * t + phase)
    return baseband.replace(samples=modulated)


def am_demodulate_envelope(
    modulated: Signal, cutoff_hz: float = 8000.0, order: int = 6
) -> Signal:
    """Ideal envelope detector: analytic-signal magnitude, low-passed,
    with the DC carrier pedestal removed.

    Used as the *reference* demodulator when checking how faithful the
    microphone's nonlinear demodulation is.
    """
    envelope = np.abs(sp_signal.hilbert(modulated.samples))
    env_signal = modulated.replace(samples=envelope)
    smoothed = low_pass(env_signal, cutoff_hz, order=order)
    return smoothed.replace(samples=smoothed.samples - np.mean(smoothed.samples))


def am_demodulate_square_law(
    modulated: Signal, cutoff_hz: float = 8000.0, order: int = 6
) -> Signal:
    """Square-law demodulation: ``x -> x**2`` then low-pass, DC removed.

    This mirrors exactly what the microphone's quadratic term does and
    is used in analysis to predict the recorded baseband.
    """
    squared = modulated.replace(samples=np.square(modulated.samples))
    smoothed = low_pass(squared, cutoff_hz, order=order)
    return smoothed.replace(samples=smoothed.samples - np.mean(smoothed.samples))


def coherent_demodulate(
    modulated: Signal,
    carrier_hz: float,
    cutoff_hz: float = 8000.0,
    phase: float = 0.0,
    order: int = 6,
) -> Signal:
    """Synchronous (product) demodulation with a known carrier.

    Multiplying by the carrier shifts the sidebands back to baseband;
    the factor 2 restores the original amplitude scale.
    """
    if carrier_hz <= 0 or carrier_hz >= modulated.nyquist:
        raise ModulationError(
            f"carrier {carrier_hz} Hz outside (0, {modulated.nyquist}) Hz"
        )
    t = modulated.times()
    product = modulated.samples * np.cos(2 * np.pi * carrier_hz * t + phase)
    mixed = modulated.replace(samples=2.0 * product)
    smoothed = low_pass(mixed, cutoff_hz, order=order)
    return smoothed.replace(samples=smoothed.samples - np.mean(smoothed.samples))
