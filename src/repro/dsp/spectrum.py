"""Spectral analysis: PSD, spectrogram, band energies.

These are the measurement instruments of the whole reproduction: the
attack's inaudibility argument and the defense's sub-50 Hz traces are
both statements about band powers, so the estimators here are written
for correct absolute scaling (verified by Parseval-style tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import fft as sp_fft

from repro.dsp import windows as win
from repro.dsp.signals import Signal
from repro.errors import SignalDomainError


@dataclass(frozen=True)
class PowerSpectrum:
    """A one-sided power spectral density estimate.

    Attributes
    ----------
    frequencies:
        Bin centre frequencies in hertz, ascending.
    psd:
        Power spectral density per bin, in (signal unit)^2 / Hz.
    """

    frequencies: np.ndarray
    psd: np.ndarray

    def __post_init__(self) -> None:
        if self.frequencies.shape != self.psd.shape:
            raise SignalDomainError(
                "frequencies and psd must have identical shapes"
            )

    @property
    def bin_width(self) -> float:
        """Frequency resolution in hertz."""
        if len(self.frequencies) < 2:
            return 0.0
        return float(self.frequencies[1] - self.frequencies[0])

    def total_power(self) -> float:
        """Integrate the PSD over all frequencies (= mean square)."""
        return float(np.sum(self.psd) * self.bin_width)

    def band_power(self, low_hz: float, high_hz: float) -> float:
        """Integrate the PSD over ``[low_hz, high_hz]``."""
        if low_hz > high_hz:
            raise SignalDomainError(
                f"band edges inverted: {low_hz} > {high_hz}"
            )
        mask = (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        return float(np.sum(self.psd[mask]) * self.bin_width)

    def peak_frequency(self) -> float:
        """Frequency of the largest PSD bin."""
        if len(self.frequencies) == 0:
            raise SignalDomainError("empty spectrum has no peak")
        return float(self.frequencies[int(np.argmax(self.psd))])


def _one_sided_correction(power: np.ndarray, n_fft: int) -> np.ndarray:
    """Double the bins a one-sided spectrum folds together, in place.

    For an even ``n_fft`` the DC and Nyquist bins are unique and every
    other bin absorbs its negative-frequency twin; for an odd ``n_fft``
    there is no Nyquist bin, so everything but DC doubles. Shared by
    :func:`welch_psd_matrix` and :func:`spectrogram` so the two
    estimators can never disagree on parity handling.
    """
    if n_fft % 2 == 0:
        power[..., 1:-1] *= 2.0
    else:
        power[..., 1:] *= 2.0
    return power


def welch_psd_matrix(
    x: np.ndarray,
    sample_rate: float,
    segment_length: int = 4096,
    overlap: float = 0.5,
    window: str = "hann",
) -> tuple[np.ndarray, np.ndarray]:
    """Welch PSDs of a stacked ``(n_signals, n_samples)`` batch.

    Returns ``(frequencies, psd)`` with ``psd`` of shape
    ``(n_signals, n_bins)``. Each segment's FFT is computed for every
    row at once (``axis=-1``), but segments accumulate in the same
    sequential order as :func:`welch_psd`, so each row of the result is
    bitwise identical to the scalar estimate of that row — the
    guarantee the batched defense feature extraction relies on.
    """
    x = np.asarray(x)
    dtype = np.float32 if x.dtype == np.float32 else np.float64
    x = np.asarray(x, dtype=dtype)
    if x.ndim != 2:
        raise SignalDomainError(
            f"welch_psd_matrix expects a 2-D (n_signals, n_samples) "
            f"batch, got shape {x.shape}"
        )
    n_samples = x.shape[-1]
    if n_samples == 0:
        raise SignalDomainError("cannot estimate the PSD of an empty signal")
    if not 0 <= overlap < 1:
        raise SignalDomainError(f"overlap must be in [0, 1), got {overlap}")
    n_seg = min(segment_length, n_samples)
    step = max(1, int(round(n_seg * (1 - overlap))))
    w = win.get_window(window, n_seg).astype(dtype)
    scale = dtype(
        1.0 / (sample_rate * np.sum(np.square(w.astype(np.float64))))
    )
    if n_samples >= n_seg:
        # One strided (n_signals, n_segments, n_seg) view over all
        # Welch positions, windowed and transformed in a single batched
        # rfft. Summing over the segment axis is a sequential reduction
        # in numpy (pairwise summation only applies along the fast
        # axis), so each row stays bitwise identical to the scalar
        # one-segment-at-a-time accumulation — the guarantee the
        # streaming extractor and golden traces rely on.
        view = np.lib.stride_tricks.sliding_window_view(x, n_seg, axis=-1)
        segments = view[:, ::step, :] * w
        count = segments.shape[1]
        power = np.square(np.abs(sp_fft.rfft(segments, axis=-1))) * scale
        acc = power.sum(axis=1)
    else:  # signals shorter than one segment: single padded FFT
        segment = np.zeros((x.shape[0], n_seg), dtype=dtype)
        segment[..., :n_samples] = x
        spectrum = sp_fft.rfft(segment * w, axis=-1)
        acc = np.square(np.abs(spectrum)) * scale
        count = 1
    psd = _one_sided_correction(acc / count, n_seg)
    freqs = np.fft.rfftfreq(n_seg, d=1.0 / sample_rate)
    return freqs, psd


def welch_psd(
    signal: Signal,
    segment_length: int = 4096,
    overlap: float = 0.5,
    window: str = "hann",
) -> PowerSpectrum:
    """Welch-averaged one-sided PSD.

    Implemented from scratch on the FFT so scaling is fully under test:
    with a Hann window and 50 % overlap the estimate integrates to the
    signal's mean-square value (Parseval). Delegates to
    :func:`welch_psd_matrix` with a one-row batch, so scalar and
    batched estimates can never drift apart.
    """
    freqs, psd = welch_psd_matrix(
        signal.samples[np.newaxis, :],
        signal.sample_rate,
        segment_length=segment_length,
        overlap=overlap,
        window=window,
    )
    return PowerSpectrum(frequencies=freqs, psd=psd[0])


def band_power_matrix(
    frequencies: np.ndarray,
    psd: np.ndarray,
    low_hz: float,
    high_hz: float,
) -> np.ndarray:
    """Per-row band power of a ``(n_signals, n_bins)`` PSD matrix.

    The batched counterpart of :meth:`PowerSpectrum.band_power`:
    integrates each row over ``[low_hz, high_hz]`` with the same mask
    and bin width, returning one power per row.
    """
    if low_hz > high_hz:
        raise SignalDomainError(
            f"band edges inverted: {low_hz} > {high_hz}"
        )
    psd = np.asarray(psd)
    if psd.ndim != 2 or psd.shape[-1] != frequencies.shape[0]:
        raise SignalDomainError(
            "psd must be (n_signals, n_bins) matching frequencies, "
            f"got psd shape {psd.shape} for {frequencies.shape[0]} bins"
        )
    if len(frequencies) < 2:
        bin_width = 0.0
    else:
        bin_width = float(frequencies[1] - frequencies[0])
    mask = (frequencies >= low_hz) & (frequencies <= high_hz)
    # Per-row 1-D sums: a 2-D axis reduction pairs its additions
    # differently from np.sum on a 1-D slice (off by an ulp on wide
    # bands), and rows must stay bitwise equal to
    # PowerSpectrum.band_power for the golden-trace guarantees.
    return np.array(
        [float(np.sum(row[mask])) * bin_width for row in psd]
    )


def power_spectrum(signal: Signal, window: str = "hann") -> PowerSpectrum:
    """Single-FFT one-sided PSD of the whole signal (max resolution)."""
    return welch_psd(
        signal, segment_length=signal.n_samples, overlap=0.0, window=window
    )


@dataclass(frozen=True)
class Spectrogram:
    """Short-time power spectrum.

    Attributes
    ----------
    times:
        Frame centre times in seconds.
    frequencies:
        Bin centre frequencies in hertz.
    power:
        Array of shape ``(len(frequencies), len(times))`` holding the
        per-frame PSD.
    """

    times: np.ndarray
    frequencies: np.ndarray
    power: np.ndarray

    def band_trajectory(self, low_hz: float, high_hz: float) -> np.ndarray:
        """Per-frame power inside a frequency band (length = n frames).

        With fewer than two frequency bins the bin width is undefined
        and the integral degenerates to zero — the same convention as
        :attr:`PowerSpectrum.bin_width` and
        :func:`band_power_matrix`, so single-bin band powers agree
        across all three paths.
        """
        mask = (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        if len(self.frequencies) >= 2:
            bin_width = float(self.frequencies[1] - self.frequencies[0])
        else:
            bin_width = 0.0
        return np.sum(self.power[mask, :], axis=0) * bin_width


def spectrogram(
    signal: Signal,
    frame_length: int = 1024,
    overlap: float = 0.75,
    window: str = "hann",
) -> Spectrogram:
    """STFT power spectrogram with PSD scaling per frame."""
    if signal.n_samples < frame_length:
        raise SignalDomainError(
            f"signal ({signal.n_samples} samples) shorter than one "
            f"spectrogram frame ({frame_length})"
        )
    if not 0 <= overlap < 1:
        raise SignalDomainError(f"overlap must be in [0, 1), got {overlap}")
    step = max(1, int(round(frame_length * (1 - overlap))))
    w = win.get_window(window, frame_length)
    scale = 1.0 / (signal.sample_rate * np.sum(np.square(w)))
    starts = np.arange(
        0, signal.n_samples - frame_length + 1, step, dtype=np.int64
    )
    # All frames in one strided view and one batched rfft; the per-bin
    # arithmetic is unchanged from the old one-frame-at-a-time loop.
    view = np.lib.stride_tricks.sliding_window_view(
        signal.samples, frame_length
    )
    frames = view[starts, :] * w
    power = np.square(np.abs(sp_fft.rfft(frames, axis=-1))) * scale
    power = _one_sided_correction(power, frame_length)
    centers = (starts + frame_length / 2) / signal.sample_rate
    freqs = np.fft.rfftfreq(frame_length, d=1.0 / signal.sample_rate)
    return Spectrogram(
        times=centers,
        frequencies=freqs,
        power=power.T,
    )


def band_power(signal: Signal, low_hz: float, high_hz: float) -> float:
    """Mean-square power of ``signal`` within a frequency band.

    Convenience wrapper over :func:`welch_psd`; the result is in
    (signal unit)^2 and can be converted to SPL by the acoustics layer.
    """
    return welch_psd(signal).band_power(low_hz, high_hz)


def band_rms(signal: Signal, low_hz: float, high_hz: float) -> float:
    """RMS amplitude of the in-band component of ``signal``."""
    return float(np.sqrt(max(band_power(signal, low_hz, high_hz), 0.0)))


def dominant_frequency(signal: Signal) -> float:
    """Frequency of the strongest spectral component."""
    return power_spectrum(signal).peak_frequency()
