"""S1 — streaming guard: online/offline parity, latency, fleet.

The paper's defense runs *online*, vetoing commands as audio arrives;
this experiment measures the streaming deployment
(:mod:`repro.stream`) against the offline reference:

* **Parity probes** — one attack and one genuine recording,
  synthesised through the trial pipeline in the chosen environment,
  streamed through a chunked :class:`~repro.stream.guard.StreamingGuard`
  at several chunk sizes. The ``bitwise`` column states whether the
  online verdict, score, features and recognition distance equal the
  offline :class:`~repro.defense.guard.GuardedVoiceAssistant` exactly
  — the subsystem's core guarantee, for every registered scenario.
* **Fleet rows** — a :class:`~repro.stream.fleet.FleetSimulator` run:
  concurrent device streams with online VAD segmentation, reporting
  utterance dispositions and the *stream-time* detection latency
  (audio time between an utterance's end and the verdict). Stream
  time, unlike wall clock, is deterministic, which keeps this table
  golden-stable; wall-clock throughput lives in
  ``benchmarks/bench_stream.py`` and ``BENCH_stream.json``.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.guard import GuardedOutcome, GuardedVoiceAssistant
from repro.sim.engine import ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario
from repro.stream.fleet import (
    FleetConfig,
    FleetSimulator,
    synthesize_utterances,
)
from repro.stream.guard import StreamingGuard
from repro.stream.shard import ShardedFleetSimulator


def train_detector(
    scenario: str, seed: int, n_trials: int, batch: bool = True
) -> InaudibleVoiceDetector:
    """A detector fitted on a small scenario-matched dataset.

    Shared with ``benchmarks/bench_stream.py`` so the benchmark's
    guard is the experiment's guard.
    """
    config = DatasetConfig(
        commands=("ok_google", "alexa"),
        distances_m=(1.0, 2.0),
        n_trials=n_trials,
        attacker_kind="single_full",
        scenario=scenario,
        seed=seed,
    )
    return InaudibleVoiceDetector().fit(
        build_dataset(config, batch=batch)
    )


def _outcomes_bitwise(
    online: GuardedOutcome, offline: GuardedOutcome
) -> bool:
    """Exact equality of everything a verdict carries."""
    if online.executed_command != offline.executed_command:
        return False
    if online.vetoed != offline.vetoed:
        return False
    if (
        online.recognition.accepted != offline.recognition.accepted
        or online.recognition.command != offline.recognition.command
        or online.recognition.distance != offline.recognition.distance
    ):
        return False
    if (online.detection is None) != (offline.detection is None):
        return False
    if online.detection is not None:
        if online.detection.score != offline.detection.score:
            return False
        if online.detection.is_attack != offline.detection.is_attack:
            return False
        if not np.array_equal(
            online.detection.features, offline.detection.features
        ):
            return False
    return True


def chunked_parity_probes(
    scenario: str,
    seed: int,
    chunk_ms: tuple[int, ...],
    detector: InaudibleVoiceDetector,
) -> list[tuple[str, int, GuardedOutcome, bool]]:
    """Stream both probes at each chunk size against the offline guard.

    Builds one attack and one genuine probe through the batched
    pipeline synthesis the fleet uses, then returns
    ``(kind, chunk_ms, online_outcome, bitwise)`` per case. This is
    the *single* statement of the parity probe — the S1 table and the
    ``bench_stream.py`` CI gate both walk it, so they can never
    desynchronise.
    """
    probe_rngs = [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed + 1).spawn(2)
    ]
    recordings, recognizer = synthesize_utterances(
        scenario,
        "ok_google",
        None,
        probe_rngs,
        np.array([True, False]),
        voice_seed=seed,
    )
    offline = GuardedVoiceAssistant(recognizer, detector)
    cases = []
    for kind, recording in zip(("attack", "genuine"), recordings):
        reference = offline.process(recording)
        for ms in chunk_ms:
            chunk = max(
                1, int(round(ms / 1000.0 * recording.sample_rate))
            )
            guard = StreamingGuard(
                recognizer,
                detector,
                recording.sample_rate,
                unit=recording.unit,
                gated=False,
            )
            online = guard.process_recording(recording, chunk)
            cases.append(
                (kind, ms, online, _outcomes_bitwise(online, reference))
            )
    return cases


def _describe(outcome: GuardedOutcome) -> tuple[str, object]:
    """(disposition, score) cells for one verdict."""
    if outcome.executed_command is not None:
        label = f"execute {outcome.executed_command}"
    elif outcome.vetoed:
        label = "veto"
    else:
        label = "reject"
    score = (
        "" if outcome.detection is None else outcome.detection.score
    )
    return label, score


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
    shards: int = 1,
    streams: int | None = None,
) -> ResultTable:
    """Parity, dispositions and stream-time latency of the online guard.

    ``shards`` routes the fleet through the process-sharded driver
    (:class:`~repro.stream.shard.ShardedFleetSimulator`). The engine's
    batch flag selects the fleet's structure-of-arrays kernel
    (``--no-batch`` streams every device through the scalar per-stream
    guard instead). ``streams`` overrides the fleet size. The rendered
    table — dispositions, latencies and the fleet digest row — is
    byte-identical for every shard count *and* both kernel paths at
    any fleet size (the CI shard-determinism job diffs ``--shards
    1/2/4`` and ``--no-batch`` stdout); wall-clock figures
    (streams/core/second, per-shard balance) go to stderr, like the
    CLI's timing lines.
    """
    spec = get_scenario(scenario)
    chunk_ms = (10, 50, 250) if quick else (5, 10, 50, 250)
    n_streams = (8 if quick else 32) if streams is None else streams
    table = ResultTable(
        title=(
            "S1: streaming guard — chunked online vs offline"
            + spec.title_suffix()
        ),
        columns=[
            "probe",
            "chunk ms",
            "outcome",
            "score",
            "bitwise",
            "latency ms",
        ],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        detector = train_detector(
            scenario, seed, n_trials=2 if quick else 4, batch=eng.batch
        )
        for kind, ms, online, bitwise in chunked_parity_probes(
            scenario, seed, chunk_ms, detector
        ):
            label, score = _describe(online)
            table.add_row(
                kind,
                ms,
                label,
                score,
                "yes" if bitwise else "no",
                "",
            )
        # The fleet: online segmentation end to end. Worker and shard
        # counts never change results (pinned by the determinism
        # suites), so a fixed small pool keeps the table byte-stable
        # everywhere.
        fleet_config = FleetConfig(
            scenario=scenario,
            n_streams=n_streams,
            utterances_per_stream=1,
            attack_fraction=0.5,
            seed=seed + 2,
            workers=4,
            shards=shards,
            vectorized=eng.batch,
        )
        if shards == 1:
            report = FleetSimulator(detector, fleet_config).run()
        else:
            report = ShardedFleetSimulator(
                detector, fleet_config
            ).run()
        cores = min(shards, os.cpu_count() or 1)
        balance = (
            min(report.shard_wall_seconds)
            / max(report.shard_wall_seconds)
            if report.shard_wall_seconds
            and max(report.shard_wall_seconds) > 0
            else 1.0
        )
        print(
            f"[S1] fleet shards={shards}: "
            f"{report.realtime_factor:.0f} sustained streams, "
            f"{report.realtime_factor / cores:.0f} streams/core/"
            f"second, shard balance {balance:.2f}",
            file=sys.stderr,
        )
        # Exact-quantile latency stats from the raw per-utterance
        # samples (repro.obs.metrics) — percentiles, not a sketch.
        stats = report.latency_stats()
        mean_latency_ms = 1000.0 * stats.mean if stats.count else 0.0
        p50_latency_ms = (
            1000.0 * stats.quantile(0.5) if stats.count else 0.0
        )
        p99_latency_ms = (
            1000.0 * stats.quantile(0.99) if stats.count else 0.0
        )
        max_latency_ms = 1000.0 * stats.max if stats.count else 0.0
        table.add_row(
            f"fleet ({report.config.n_streams} streams)",
            int(round(report.config.chunk_s * 1000)),
            (
                f"{report.n_vetoed} veto / {report.n_executed} execute"
                f" / {report.n_rejected} reject"
            ),
            "",
            "",
            mean_latency_ms,
        )
        table.add_row(
            "fleet p50 latency",
            int(round(report.config.chunk_s * 1000)),
            f"{stats.count} utterance samples",
            "",
            "",
            p50_latency_ms,
        )
        table.add_row(
            "fleet p99 latency",
            int(round(report.config.chunk_s * 1000)),
            f"{stats.count} utterance samples",
            "",
            "",
            p99_latency_ms,
        )
        table.add_row(
            "fleet worst-case latency",
            int(round(report.config.chunk_s * 1000)),
            f"{report.n_utterances} utterances segmented",
            "",
            "",
            max_latency_ms,
        )
        # The whole fleet's deterministic fingerprint: identical for
        # every --shards/--jobs value, which is exactly what the CI
        # shard-determinism job diffs byte-for-byte.
        table.add_row(
            "shard digest",
            "",
            report.digest_hex()[:16],
            "",
            "",
            "",
        )
    return table
