"""F3 — single-speaker attack success vs distance.

Two operating modes of the baseline rig:

* **full drive** — effective at metres of range but audibly leaking
  (the conspicuous configuration the paper family demonstrates);
* **inaudible drive** — capped by the bystander constraint, which
  collapses the useful range to arm's length. The gap between these
  two curves *is* the problem the long-range attack solves.

Every (distance, mode) cell is one trial group; the engine runs them
all in a single wave, reusing each mode's emission from the process
cache at every distance. ``scenario`` swaps the environment (room,
interference, motion, weather) from the ``repro.sim.spec`` registry;
sweep distances that do not fit the chosen room are dropped.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import single_full, single_inaudible
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Success rate by distance for both drive modes."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    distances = (0.5, 1.0, 2.0, 3.0) if quick else (
        0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0
    )
    distances = spec.clamp_distances(distances)
    n_trials = 3 if quick else 10
    device = VictimDevice.phone(seed=seed + 1)
    base = spec.build(command, distance_m=1.0)
    full_spec = EmissionSpec(single_full, (command, seed))
    capped_spec = EmissionSpec(single_inaudible, (command, seed))
    capped_level = capped_spec.emission().drive_level
    groups = []
    for distance in distances:
        moved = base.at_distance(distance)
        groups.append(TrialGroup(moved, device, full_spec, n_trials))
        groups.append(TrialGroup(moved, device, capped_spec, n_trials))
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rates = eng.success_rates(groups, rng)
    table = ResultTable(
        title=(
            "F3: single-speaker success rate vs distance "
            f"(inaudible cap drive = {capped_level:.3f})"
            + spec.title_suffix()
        ),
        columns=["distance m", "full drive", "inaudible drive"],
    )
    for index, distance in enumerate(distances):
        table.add_row(
            distance, rates[2 * index], rates[2 * index + 1]
        )
    return table
