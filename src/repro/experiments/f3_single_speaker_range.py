"""F3 — single-speaker attack success vs distance.

Two operating modes of the baseline rig:

* **full drive** — effective at metres of range but audibly leaking
  (the conspicuous configuration the paper family demonstrates);
* **inaudible drive** — capped by the bystander constraint, which
  collapses the useful range to arm's length. The gap between these
  two curves *is* the problem the long-range attack solves.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.attacker import SingleSpeakerAttacker
from repro.hardware.devices import horn_tweeter
from repro.sim.results import ResultTable
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import success_rate
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True, seed: int = 0, command: str = "ok_google"
) -> ResultTable:
    """Success rate by distance for both drive modes."""
    rng = np.random.default_rng(seed)
    distances = (0.5, 1.0, 2.0, 3.0) if quick else (
        0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0
    )
    n_trials = 3 if quick else 10
    device = VictimDevice.phone(seed=seed + 1)
    attacker_position = Position(0.0, 2.0, 1.0)
    attacker = SingleSpeakerAttacker(horn_tweeter(), attacker_position)
    base = Scenario(
        command=command,
        attacker_position=attacker_position,
        victim_position=attacker_position.translated(1.0, 0.0, 0.0),
    )
    voice = synthesize_command(command, rng)
    full = attacker.emit(voice, drive_level=1.0)
    capped = attacker.emit_inaudibly(voice)
    table = ResultTable(
        title=(
            "F3: single-speaker success rate vs distance "
            f"(inaudible cap drive = {capped.drive_level:.3f})"
        ),
        columns=["distance m", "full drive", "inaudible drive"],
    )
    for distance in distances:
        moved = base.at_distance(distance)
        runner = ScenarioRunner(moved, device)
        rate_full = success_rate(
            runner, list(full.sources), n_trials, rng
        )
        rate_capped = success_rate(
            runner, list(capped.sources), n_trials, rng
        )
        table.add_row(distance, rate_full, rate_capped)
    return table
