"""F1 — the nonlinearity demodulation demo.

Reproduces the paper family's three-panel figure (normal voice, attack
ultrasound, microphone recording) as band-power summaries: the attack
waveform carries essentially *no* audible-band energy, yet the
recording carries the voice band back — demodulated by the microphone
alone. ``scenario`` records the third panel in a registered
environment (reflections and the scene's noise floor included); the
demodulated voice band survives them all.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.signals import Signal
from repro.dsp.spectrum import welch_psd
from repro.experiments._emissions import single_full
from repro.hardware.devices import android_phone_microphone
from repro.sim.engine import EmissionSpec, ExperimentEngine, cached_voice
from repro.sim.pipeline import build_pipeline
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _band_fractions_db(signal: Signal) -> tuple[float, float, float]:
    """(voice 0.3-8k, mid 8-20k, ultrasonic >20k) power in dB rel total."""
    psd = welch_psd(
        signal, segment_length=min(8192, signal.n_samples), window="blackman"
    )
    total = max(psd.total_power(), 1e-30)

    def frac(low: float, high: float) -> float:
        high = min(high, signal.nyquist)
        if high <= low:
            return -300.0
        return float(
            10.0 * np.log10(max(psd.band_power(low, high), 1e-30) / total)
        )

    return (
        frac(300.0, 8000.0),
        frac(8000.0, 20000.0),
        frac(20000.0, signal.nyquist),
    )


def _band_row(task: tuple[str, Signal]) -> tuple[str, float, float, float]:
    """Worker: one labelled band-power summary row."""
    label, signal = task
    return (label, *_band_fractions_db(signal))


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    distance_m: float = 2.0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Generate the three signals and summarise their spectra.

    The ``quick`` flag exists for interface uniformity; F1 is cheap
    either way.
    """
    del quick
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    voice = cached_voice(command, seed)
    emission = EmissionSpec(single_full, (command, seed)).emission()
    # max_distance_m already returns min(ceiling, room span).
    built = spec.build(command, spec.max_distance_m(distance_m))
    # One trial of the recording pipeline, so the scene's reflections
    # AND its interference bed reach the microphone (channel.receive
    # alone would silently drop a TV across the room).
    pipeline = build_pipeline(
        built, android_phone_microphone(), recognize=False
    )
    (recording,) = pipeline.run_trials(
        pipeline.context(list(emission.sources)), [rng], batch=False
    )

    table = ResultTable(
        title=(
            "F1: band power (dB rel total) of the normal voice, the "
            "attack ultrasound and the microphone recording"
            + spec.title_suffix()
        ),
        columns=[
            "signal",
            "voice 0.3-8 kHz",
            "mid 8-20 kHz",
            "ultra >20 kHz",
        ],
    )
    tasks = [
        ("normal voice", voice),
        ("attack ultrasound", emission.drive),
        ("mic recording", recording),
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        for row in eng.map(_band_row, tasks):
            table.add_row(*row)
    return table
