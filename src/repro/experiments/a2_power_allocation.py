"""A2 — ablation: drive allocation strategy.

``uniform`` preserves the command's spectral shape exactly but throttles
every speaker to the most constrained one; ``waterfill`` lets every
speaker max out, accepting spectral tilt. The recogniser's mel/CMN
front-end largely ignores tilt, so waterfill buys range for free — the
design choice that makes the array's power advantage usable.

``scenario`` reruns the strategy comparison in a registered
environment; room scenarios cap the range search at the room's +x
interior span so the bisection never probes through a wall.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import array_split
from repro.sim.engine import EmissionSpec, ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Attack range per allocation strategy and array size."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    counts = (8,) if quick else (8, 16, 32)
    n_trials = 2 if quick else 4
    resolution = 0.5 if quick else 0.25
    max_distance = spec.max_distance_m(16.0)
    device = VictimDevice.phone(seed=seed + 1)
    built = spec.build(command, distance_m=1.0)
    table = ResultTable(
        title=(
            "A2: attack range by drive-allocation strategy"
            + spec.title_suffix()
        ),
        columns=["speakers", "strategy", "range m", "mean chunk level"],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        for n_speakers in counts:
            for strategy in ("uniform", "waterfill"):
                emission_spec = EmissionSpec(
                    array_split, (command, seed, n_speakers, strategy)
                )
                measured = eng.attack_range_m(
                    built,
                    device,
                    emission_spec,
                    rng,
                    n_trials=n_trials,
                    max_distance_m=max_distance,
                    resolution_m=resolution,
                )
                table.add_row(
                    n_speakers,
                    strategy,
                    measured,
                    float(
                        np.mean(
                            emission_spec.emission().allocation.chunk_levels
                        )
                    ),
                )
    return table
