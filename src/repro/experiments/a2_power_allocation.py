"""A2 — ablation: drive allocation strategy.

``uniform`` preserves the command's spectral shape exactly but throttles
every speaker to the most constrained one; ``waterfill`` lets every
speaker max out, accepting spectral tilt. The recogniser's mel/CMN
front-end largely ignores tilt, so waterfill buys range for free — the
design choice that makes the array's power advantage usable.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import attack_range_m
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True, seed: int = 0, command: str = "ok_google"
) -> ResultTable:
    """Attack range per allocation strategy and array size."""
    rng = np.random.default_rng(seed)
    counts = (8,) if quick else (8, 16, 32)
    n_trials = 2 if quick else 4
    resolution = 0.5 if quick else 0.25
    device = VictimDevice.phone(seed=seed + 1)
    center = Position(0.0, 2.0, 1.0)
    voice = synthesize_command(command, rng)
    scenario = Scenario(
        command=command,
        attacker_position=center,
        victim_position=center.translated(1.0, 0.0, 0.0),
    )
    table = ResultTable(
        title="A2: attack range by drive-allocation strategy",
        columns=["speakers", "strategy", "range m", "mean chunk level"],
    )
    for n_speakers in counts:
        array = grid_array(
            n_speakers, center, ultrasonic_piezo_element
        )
        for strategy in ("uniform", "waterfill"):
            attacker = LongRangeAttacker(
                array, allocation_strategy=strategy
            )
            emission = attacker.emit(voice)
            measured = attack_range_m(
                scenario,
                device,
                list(emission.sources),
                rng,
                n_trials=n_trials,
                resolution_m=resolution,
            )
            table.add_row(
                n_speakers,
                strategy,
                measured,
                float(np.mean(emission.allocation.chunk_levels)),
            )
    return table
