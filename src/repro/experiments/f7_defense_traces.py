"""F7 — defense trace feature separation.

The figure behind the defense: per-class distributions of the sub-50 Hz
trace power and the envelope correlation. Genuine recordings cluster
deep below the attacked ones because a vocal tract radiates no coherent
sub-50 Hz energy while nonlinear demodulation cannot avoid producing
it — in the free field and in every registered environment
(``scenario`` picks a room, interference or motion from the registry;
the dataset records there through the batched trial pipeline).

Dataset synthesis dominates the cost and is fully determined by its
:class:`DatasetConfig` (seed included), so the two attacker kinds are
fanned out as independent engine work units.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.features import FEATURE_NAMES
from repro.defense.traces import separation_d_prime
from repro.sim.engine import ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _feature_rows(
    task: tuple[DatasetConfig, bool],
) -> list[tuple[str, str, float, float, float]]:
    """Worker: build one attacker kind's dataset and summarise it."""
    config, batch = task
    dataset = build_dataset(config, batch=batch)
    genuine = dataset.features[dataset.labels == 0]
    attacked = dataset.features[dataset.labels == 1]
    rows = []
    for index, name in enumerate(FEATURE_NAMES):
        rows.append(
            (
                config.attacker_kind,
                name,
                float(np.mean(genuine[:, index])),
                float(np.mean(attacked[:, index])),
                separation_d_prime(
                    genuine[:, index], attacked[:, index]
                ),
            )
        )
    return rows


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Per-class mean/std of every defense feature, both attackers."""
    spec = get_scenario(scenario)
    n_trials = 2 if quick else 8
    distances = (1.0, 2.0) if quick else (1.0, 2.0, 3.0)
    table = ResultTable(
        title=(
            "F7: defense feature statistics per class"
            + spec.title_suffix()
        ),
        columns=["attacker", "feature", "genuine mean", "attack mean",
                 "separation (d')"],
    )
    configs = [
        DatasetConfig(
            commands=("ok_google", "add_milk"),
            distances_m=distances,
            n_trials=n_trials,
            attacker_kind=kind,
            n_array_speakers=8,
            scenario=scenario,
            seed=seed,
        )
        for kind in ("single_full", "long_range")
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        tasks = [(config, eng.batch) for config in configs]
        for rows in eng.map(_feature_rows, tasks):
            for row in rows:
                table.add_row(*row)
    return table
