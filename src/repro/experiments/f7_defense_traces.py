"""F7 — defense trace feature separation.

The figure behind the defense: per-class distributions of the sub-50 Hz
trace power and the envelope correlation. Genuine recordings cluster
deep below the attacked ones because a vocal tract radiates no coherent
sub-50 Hz energy while nonlinear demodulation cannot avoid producing
it.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.features import FEATURE_NAMES
from repro.sim.results import ResultTable


def run(quick: bool = True, seed: int = 0) -> ResultTable:
    """Per-class mean/std of every defense feature, both attackers."""
    n_trials = 2 if quick else 8
    distances = (1.0, 2.0) if quick else (1.0, 2.0, 3.0)
    table = ResultTable(
        title="F7: defense feature statistics per class",
        columns=["attacker", "feature", "genuine mean", "attack mean",
                 "separation (d')"],
    )
    for kind in ("single_full", "long_range"):
        config = DatasetConfig(
            commands=("ok_google", "add_milk"),
            distances_m=distances,
            n_trials=n_trials,
            attacker_kind=kind,
            n_array_speakers=8,
            seed=seed,
        )
        dataset = build_dataset(config)
        genuine = dataset.features[dataset.labels == 0]
        attacked = dataset.features[dataset.labels == 1]
        for index, name in enumerate(FEATURE_NAMES):
            g_mean = float(np.mean(genuine[:, index]))
            a_mean = float(np.mean(attacked[:, index]))
            pooled = float(
                np.sqrt(
                    0.5
                    * (
                        np.var(genuine[:, index])
                        + np.var(attacked[:, index])
                    )
                )
            )
            d_prime = (a_mean - g_mean) / pooled if pooled > 0 else 0.0
            table.add_row(kind, name, g_mean, a_mean, d_prime)
    return table
