"""F2 — audible self-leakage of a single speaker vs drive power.

The motivating measurement of the long-range design: as the single
wideband speaker's drive rises, its own nonlinearity demodulates the AM
waveform and the rig becomes audible to a bystander. Leakage SPL grows
~40 dB per decade of drive power (the quadratic term), crossing the
hearing threshold far below the power needed for long range.

The power points are independent, so the engine fans them out; each
worker rebuilds the (deterministic) speaker preset locally and only
the shared drive waveform is shipped.

``scenario`` tags the table with the registry environment. Leakage is
a *near-field* bystander measurement — at 0.5 m the direct wave
dominates any room reflection by an order of magnitude and the
threshold model is the unmasked hearing threshold — so the
environment labels the run without altering the physics; the flag
exists so every experiment shares the CLI's scenario axis.
"""

from __future__ import annotations

from repro.attack.leakage import leakage_report
from repro.attack.pipeline import AttackPipeline
from repro.dsp.signals import Signal
from repro.hardware.devices import horn_tweeter
from repro.sim.engine import ExperimentEngine, cached_voice
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _leakage_row(
    task: tuple[Signal, float, float],
) -> tuple[float, float, float, float, bool]:
    """Worker: leakage report for one drive-power fraction."""
    drive, fraction, bystander_distance_m = task
    speaker = horn_tweeter()
    power = fraction * speaker.config.max_electrical_power_w
    level = speaker.drive_level_for_power(power)
    report = leakage_report(speaker, drive, level, bystander_distance_m)
    return (
        power,
        level,
        report.a_weighted_level_dba,
        report.margin_db,
        report.is_audible,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    bystander_distance_m: float = 0.5,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Sweep drive power; report leakage level and audibility margin."""
    spec = get_scenario(scenario)
    voice = cached_voice(command, seed)
    drive = AttackPipeline().generate(voice)
    if quick:
        fractions = (0.01, 0.1, 0.5, 1.0)
    else:
        fractions = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.5, 1.0)
    table = ResultTable(
        title=(
            "F2: single-speaker audible leakage vs drive power "
            f"(bystander at {bystander_distance_m} m)"
            + spec.title_suffix()
        ),
        columns=[
            "power W",
            "drive level",
            "leakage dBA",
            "margin dB",
            "audible",
        ],
    )
    tasks = [
        (drive, fraction, bystander_distance_m) for fraction in fractions
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        for row in eng.map(_leakage_row, tasks):
            table.add_row(*row)
    return table
