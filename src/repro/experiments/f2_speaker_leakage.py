"""F2 — audible self-leakage of a single speaker vs drive power.

The motivating measurement of the long-range design: as the single
wideband speaker's drive rises, its own nonlinearity demodulates the AM
waveform and the rig becomes audible to a bystander. Leakage SPL grows
~40 dB per decade of drive power (the quadratic term), crossing the
hearing threshold far below the power needed for long range.
"""

from __future__ import annotations

import numpy as np

from repro.attack.leakage import leakage_report
from repro.attack.pipeline import AttackPipeline
from repro.hardware.devices import horn_tweeter
from repro.sim.results import ResultTable
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    bystander_distance_m: float = 0.5,
) -> ResultTable:
    """Sweep drive power; report leakage level and audibility margin."""
    rng = np.random.default_rng(seed)
    voice = synthesize_command(command, rng)
    drive = AttackPipeline().generate(voice)
    speaker = horn_tweeter()
    max_power = speaker.config.max_electrical_power_w
    if quick:
        fractions = (0.01, 0.1, 0.5, 1.0)
    else:
        fractions = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.5, 1.0)
    table = ResultTable(
        title=(
            "F2: single-speaker audible leakage vs drive power "
            f"(bystander at {bystander_distance_m} m)"
        ),
        columns=[
            "power W",
            "drive level",
            "leakage dBA",
            "margin dB",
            "audible",
        ],
    )
    for fraction in fractions:
        power = fraction * max_power
        level = speaker.drive_level_for_power(power)
        report = leakage_report(
            speaker, drive, level, bystander_distance_m
        )
        table.add_row(
            power,
            level,
            report.a_weighted_level_dba,
            report.margin_db,
            report.is_audible,
        )
    return table
