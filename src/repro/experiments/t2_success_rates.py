"""T2 — end-to-end success rates at fixed positions.

The paper family's repeated-trial measurement: fix the rig and device,
repeat the injection (50 times in the original), count successes.
Reference points: ~100 % against a phone at 3 m and ~80 % against an
Echo at 2 m for a strong rig.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import success_rate
from repro.speech.commands import synthesize_command


def run(quick: bool = True, seed: int = 0) -> ResultTable:
    """Repeated-trial success for phone@3m and echo@2m."""
    rng = np.random.default_rng(seed)
    n_trials = 5 if quick else 50
    n_speakers = 32
    center = Position(0.0, 2.0, 1.0)
    array = grid_array(n_speakers, center, ultrasonic_piezo_element)
    table = ResultTable(
        title=f"T2: end-to-end success rates over {n_trials} trials",
        columns=["device", "command", "distance m", "rig", "success"],
    )
    cells = (
        (VictimDevice.phone(seed=seed + 1), "ok_google", 3.0),
        (VictimDevice.echo(seed=seed + 1), "alexa", 2.0),
    )
    for device, command, distance in cells:
        voice = synthesize_command(command, rng)
        scenario = Scenario(
            command=command,
            attacker_position=center,
            victim_position=center.translated(distance, 0.0, 0.0),
        )
        runner = ScenarioRunner(scenario, device)
        array_attacker = LongRangeAttacker(
            array, allocation_strategy="waterfill"
        )
        array_emission = array_attacker.emit(voice)
        rate_array = success_rate(
            runner, list(array_emission.sources), n_trials, rng
        )
        table.add_row(
            device.name, command, distance, "split array", rate_array
        )
        single = SingleSpeakerAttacker(horn_tweeter(), center)
        single_emission = single.emit(voice, drive_level=1.0)
        rate_single = success_rate(
            runner, list(single_emission.sources), n_trials, rng
        )
        table.add_row(
            device.name,
            command,
            distance,
            "single full drive",
            rate_single,
        )
    return table
