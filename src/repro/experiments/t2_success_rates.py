"""T2 — end-to-end success rates at fixed positions.

The paper family's repeated-trial measurement: fix the rig and device,
repeat the injection (50 times in the original), count successes.
Reference points: ~100 % against a phone at 3 m and ~80 % against an
Echo at 2 m for a strong rig.

All four (device, rig) cells are submitted to the engine as one wave
of trial groups, so with ``jobs >= 4`` each cell occupies its own
worker — emission synthesis and the 50-trial repetition run
concurrently across cells.

``scenario`` selects the environment from the registry
(``repro.sim.spec``): the same four cells replay inside a reverberant
living room, against a walking attacker, under TV interference, and
so on — the batched kernel covers every registered environment with
no scalar fallback.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import array_split, single_full
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Repeated-trial success for phone@3m and echo@2m."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    n_trials = 5 if quick else 50
    n_speakers = 32
    table = ResultTable(
        title=(
            f"T2: end-to-end success rates over {n_trials} trials"
            + spec.title_suffix()
        ),
        columns=["device", "command", "distance m", "rig", "success"],
    )
    cells = (
        (VictimDevice.phone(seed=seed + 1), "ok_google", 3.0),
        (VictimDevice.echo(seed=seed + 1), "alexa", 2.0),
    )
    groups: list[TrialGroup] = []
    rows: list[tuple] = []
    for device, command, distance in cells:
        # max_distance_m already returns min(ceiling, room span).
        distance = spec.max_distance_m(distance)
        cell_scenario = spec.build(command, distance_m=distance)
        for rig, emission_spec in (
            (
                "split array",
                EmissionSpec(array_split, (command, seed, n_speakers)),
            ),
            ("single full drive", EmissionSpec(single_full, (command, seed))),
        ):
            groups.append(
                TrialGroup(cell_scenario, device, emission_spec, n_trials)
            )
            rows.append((device.name, command, distance, rig))
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rates = eng.success_rates(groups, rng)
    for row, rate in zip(rows, rates):
        table.add_row(*row, rate)
    return table
