"""Shared emission builders for the experiment suite.

Every builder here is a module-level function of cheaply picklable
arguments, which is exactly what :class:`repro.sim.engine.EmissionSpec`
needs: work units ship the *recipe* (a few hundred bytes) instead of
the waveforms (tens of MB for a full array), and each process —
parent or pool worker — materialises a given recipe at most once via
the per-process emission cache.

Centralising the builders also makes the cache key space shared across
experiments: F3's full-drive horn emission for ``("ok_google", 0)`` is
the *same* cache entry T2 uses, so an ``all`` run never synthesises the
same attacker twice in one process.

All builders place the rig at the suite-wide position
:data:`ATTACKER_POSITION` and synthesise the command voice from a
fresh ``default_rng(seed)`` via :func:`repro.sim.engine.cached_voice`.
"""

from __future__ import annotations

from repro.attack.array import grid_array
from repro.attack.attacker import (
    LongRangeAttacker,
    SingleSpeakerAttacker,
    SingleSpeakerEmission,
    LongRangeEmission,
)
from repro.attack.pipeline import AttackPipelineConfig
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.sim.engine import cached_voice
from repro.sim.spec import RIG_POSITION

#: Rig centroid shared by every experiment in the suite — the same
#: point every registered scenario (repro.sim.spec) is built around,
#: so emissions stay valid in every environment.
ATTACKER_POSITION = RIG_POSITION


def single_full(
    command: str, seed: int, drive_level: float = 1.0
) -> SingleSpeakerEmission:
    """Horn-tweeter baseline at a fixed drive level."""
    attacker = SingleSpeakerAttacker(horn_tweeter(), ATTACKER_POSITION)
    return attacker.emit(cached_voice(command, seed), drive_level)


def single_inaudible(command: str, seed: int) -> SingleSpeakerEmission:
    """Horn-tweeter baseline capped at the maximum inaudible drive."""
    attacker = SingleSpeakerAttacker(horn_tweeter(), ATTACKER_POSITION)
    return attacker.emit_inaudibly(cached_voice(command, seed))


def single_at_power(
    command: str, seed: int, power_w: float
) -> SingleSpeakerEmission:
    """Horn-tweeter baseline driven at ``power_w`` electrical watts."""
    speaker = horn_tweeter()
    attacker = SingleSpeakerAttacker(speaker, ATTACKER_POSITION)
    level = speaker.drive_level_for_power(power_w)
    return attacker.emit(cached_voice(command, seed), level)


def single_at_depth(
    command: str, seed: int, modulation_depth: float
) -> SingleSpeakerEmission:
    """Full-drive baseline with a reduced AM modulation depth (F9)."""
    attacker = SingleSpeakerAttacker(
        horn_tweeter(),
        ATTACKER_POSITION,
        AttackPipelineConfig(modulation_depth=modulation_depth),
    )
    return attacker.emit(cached_voice(command, seed), drive_level=1.0)


def array_split(
    command: str,
    seed: int,
    n_speakers: int,
    allocation_strategy: str = "waterfill",
) -> LongRangeEmission:
    """The paper's split-spectrum piezo array emission."""
    array = grid_array(
        n_speakers, ATTACKER_POSITION, ultrasonic_piezo_element
    )
    attacker = LongRangeAttacker(
        array, allocation_strategy=allocation_strategy
    )
    return attacker.emit(cached_voice(command, seed))
