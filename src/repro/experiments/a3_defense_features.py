"""A3 — ablation: which defense features carry the detection.

Compares detectors restricted to the trace-power features, to the
correlation features, and to the full vector. The paper family's
finding: power and correlation are individually strong and complement
each other against borderline cases. ``scenario`` rebuilds the
ablation inside a registered environment, so feature importance can be
read per scene (interference, for instance, loads the correlation
features harder). Each subset's dataset/fit chain is one engine work
unit.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.metrics import auc
from repro.sim.engine import ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario

SUBSETS: dict[str, tuple[str, ...]] = {
    "power only": ("trace_power_db", "trace_to_voice_db"),
    "correlation only": (
        "envelope_correlation",
        "envelope_power_correlation",
    ),
    "all features": (
        "trace_power_db",
        "trace_to_voice_db",
        "envelope_correlation",
        "envelope_power_correlation",
        "voice_power_db",
    ),
}


def _subset_row(
    task: tuple[str, tuple[str, ...], DatasetConfig, int, bool],
) -> tuple[str, float, float]:
    """Worker: dataset -> fit -> AUC/accuracy for one feature subset."""
    label, subset, config, split_seed, batch = task
    dataset = build_dataset(config, batch=batch)
    rng = np.random.default_rng(split_seed)
    train, test = dataset.split(0.6, rng)
    detector = InaudibleVoiceDetector(feature_subset=subset).fit(train)
    scores = detector.scores_for(test)
    confusion = detector.evaluate(test)
    return (label, auc(test.labels, scores), confusion.accuracy)


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Test AUC and accuracy per feature subset."""
    spec = get_scenario(scenario)
    n_trials = 3 if quick else 8
    table = ResultTable(
        title="A3: defense feature ablation" + spec.title_suffix(),
        columns=["features", "AUC", "accuracy"],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        tasks = [
            (
                label,
                subset,
                DatasetConfig(
                    commands=("ok_google", "alexa"),
                    distances_m=(1.0, 2.0),
                    n_trials=n_trials,
                    attacker_kind="single_full",
                    feature_subset=subset,
                    scenario=scenario,
                    seed=seed,
                ),
                seed + 3,
                eng.batch,
            )
            for label, subset in SUBSETS.items()
        ]
        for row in eng.map(_subset_row, tasks):
            table.add_row(*row)
    return table
