"""Command-line entry point for the experiment harness.

Run a single experiment::

    python -m repro.experiments F4

Run everything (quick mode) on every core::

    python -m repro.experiments all

Add ``--full`` for the full-resolution sweeps recorded in
EXPERIMENTS.md, ``--seed N`` to vary the master seed, and ``--jobs N``
to bound the worker pool (default: all CPU cores; ``--jobs 1`` runs
serially). ``--no-batch`` disables the vectorized batch trial kernel
and walks the scalar stage list instead. ``--scenario NAME`` runs any
experiment — every one of the 16 accepts it — in a registered
environment (``repro.sim.spec``): a reverberant room, a walking
attacker, TV interference, outdoor wind; ``--list-scenarios`` prints
the registry. Rendered tables go to stdout and are byte-identical for
every ``--jobs`` value and for both batch modes; per-experiment
timings go to stderr.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.errors import ExperimentError
from repro.experiments import ALL_EXPERIMENTS
from repro.sim.engine import ExperimentEngine
from repro.sim.spec import get_scenario, scenario_names


def render_scenarios() -> str:
    """The registry as ``name - description`` lines."""
    return "\n".join(
        f"{name:<18} {get_scenario(name).description}"
        for name in scenario_names()
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment ID (%s) or 'all'"
        % ", ".join(sorted(ALL_EXPERIMENTS)),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-resolution sweeps (slow) instead of quick mode",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the vectorized batch trial kernel (scalar "
        "per-trial walk of the same stage list; identical output, "
        "slower)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="process-shard count for the streaming fleet (S1); "
        "rendered tables are byte-identical for every value, "
        "throughput lines go to stderr",
    )
    parser.add_argument(
        "--scenario",
        default="free_field",
        choices=scenario_names(),
        help="environment to run in (default: free_field); every "
        "experiment accepts it — see --list-scenarios",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario registry with descriptions and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_scenarios:
        print(render_scenarios())
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print(
            "error: an experiment ID (or 'all') is required unless "
            "--list-scenarios is given",
            file=sys.stderr,
        )
        return 2
    requested = args.experiment.upper()
    if requested == "ALL":
        names = list(ALL_EXPERIMENTS)
    elif requested in ALL_EXPERIMENTS:
        names = [requested]
    else:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    # One engine (one worker pool) shared by every experiment, so
    # pool start-up and per-process emission caches amortise across
    # the whole run.
    try:
        engine = ExperimentEngine(jobs=args.jobs, batch=not args.no_batch)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with engine:
        if args.shards < 1:
            print(
                f"error: shards must be >= 1, got {args.shards}",
                file=sys.stderr,
            )
            return 2
        for name in names:
            module = ALL_EXPERIMENTS[name]
            started = time.time()
            kwargs = dict(
                quick=not args.full,
                seed=args.seed,
                engine=engine,
                scenario=args.scenario,
            )
            # Only the streaming experiments take a shard count; the
            # flag is a no-op for the offline tables.
            if "shards" in inspect.signature(module.run).parameters:
                kwargs["shards"] = args.shards
            table = module.run(**kwargs)
            elapsed = time.time() - started
            print(
                f"[{name}] finished in {elapsed:.1f} s "
                f"(jobs={engine.jobs})",
                file=sys.stderr,
            )
            print(f"=== {name}")
            print(table.render())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
