"""Command-line entry point for the experiment harness.

Run a single experiment::

    python -m repro.experiments F4

Run everything (quick mode) on every core::

    python -m repro.experiments all

Add ``--full`` for the full-resolution sweeps recorded in
EXPERIMENTS.md, ``--seed N`` to vary the master seed, and ``--jobs N``
to bound the worker pool (default: all CPU cores; ``--jobs 1`` runs
serially). ``--no-batch`` disables the vectorized batch trial kernel
and walks the scalar stage list instead. ``--scenario NAME`` runs any
experiment — every one of the 16 accepts it — in a registered
environment (``repro.sim.spec``): a reverberant room, a walking
attacker, TV interference, outdoor wind; ``--list-scenarios`` prints
the registry. ``--scenario random:<seed>`` instead *generates* a
deterministic environment from the integer seed (``repro.sim.fuzz``) —
random room, multi-leg trajectory, multiple interferers, weather —
and echoes the generated spec to stderr for reproduction. Rendered
tables go to stdout and are byte-identical for every ``--jobs`` value
and for both batch modes; per-experiment timings go to stderr.

``--trace PATH`` writes a JSONL span trace of the whole run (pipeline
stages, engine fan-out, stream-kernel cycles, shard lifecycles —
render it with ``python -m repro.obs report PATH``) and
``--metrics-out PATH`` writes the metrics registry (counters, gauges,
exact latency percentiles) as JSON. Both are bitwise-inert: stdout
stays byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from contextlib import ExitStack

from repro.errors import ExperimentError, ReproError
from repro.experiments import ALL_EXPERIMENTS
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.engine import ExperimentEngine
from repro.sim.spec import get_scenario, scenario_names


def render_scenarios() -> str:
    """The registry as ``name - description`` lines."""
    lines = [
        f"{name:<18} {get_scenario(name).description}"
        for name in scenario_names()
    ]
    lines.append(
        f"{'random:<seed>':<18} deterministic generated environment "
        "(repro.sim.fuzz); same seed, same scenario"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment ID (%s) or 'all'"
        % ", ".join(sorted(ALL_EXPERIMENTS)),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-resolution sweeps (slow) instead of quick mode",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quick mode — the default; the explicit flag exists for "
        "symmetry with --full and rejects the contradictory pair",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the vectorized batch trial kernel (scalar "
        "per-trial walk of the same stage list; identical output, "
        "slower)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="process-shard count for the streaming fleet (S1); "
        "rendered tables are byte-identical for every value, "
        "throughput lines go to stderr",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=None,
        help="fleet size override for the streaming fleet (S1); "
        "the fleet digest stays bitwise identical across shard "
        "counts and kernel paths at any size",
    )
    parser.add_argument(
        "--scenario",
        default="free_field",
        help="environment to run in (default: free_field): a "
        "registered name (see --list-scenarios) or random:<seed> to "
        "generate one deterministically from the integer seed",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario registry with descriptions and exit",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span trace of the whole run (render it "
        "with `python -m repro.obs report PATH`); stdout tables stay "
        "byte-identical to an untraced run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry (counters, gauges, "
        "exact latency percentiles) as JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.quick and args.full:
        print(
            "error: --quick and --full are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.list_scenarios:
        print(render_scenarios())
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print(
            "error: an experiment ID (or 'all') is required unless "
            "--list-scenarios is given",
            file=sys.stderr,
        )
        return 2
    requested = args.experiment.upper()
    if requested == "ALL":
        names = list(ALL_EXPERIMENTS)
    elif requested in ALL_EXPERIMENTS:
        names = [requested]
    else:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    # Resolve the scenario up front: a typo (or malformed
    # random:<seed>) fails before any experiment runs, and a
    # generated spec gets echoed to stderr before its tables render.
    try:
        get_scenario(args.scenario)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # One engine (one worker pool) shared by every experiment, so
    # pool start-up and per-process emission caches amortise across
    # the whole run.
    try:
        engine = ExperimentEngine(jobs=args.jobs, batch=not args.no_batch)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Observability is opt-in per artifact: a tracer and/or a metrics
    # registry install as the ambient collectors for the whole run,
    # and the instrumented layers (pipeline, engine, fleet, kernel,
    # shards) feed them. Neither changes a single stdout byte — the
    # CI observability job diffs traced vs untraced runs to prove it.
    tracer = obs_trace.Tracer() if args.trace is not None else None
    registry = (
        obs_metrics.MetricsRegistry()
        if args.metrics_out is not None
        else None
    )
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.activate(tracer))
        if registry is not None:
            stack.enter_context(obs_metrics.activate(registry))
        stack.enter_context(engine)
        if args.shards < 1:
            print(
                f"error: shards must be >= 1, got {args.shards}",
                file=sys.stderr,
            )
            return 2
        if args.streams is not None and args.streams < 1:
            print(
                f"error: streams must be >= 1, got {args.streams}",
                file=sys.stderr,
            )
            return 2
        for name in names:
            module = ALL_EXPERIMENTS[name]
            started = time.time()
            kwargs = dict(
                quick=not args.full,
                seed=args.seed,
                engine=engine,
                scenario=args.scenario,
            )
            # Only the streaming experiments take a shard count; the
            # flag is a no-op for the offline tables.
            if "shards" in inspect.signature(module.run).parameters:
                kwargs["shards"] = args.shards
            if (
                args.streams is not None
                and "streams"
                in inspect.signature(module.run).parameters
            ):
                kwargs["streams"] = args.streams
            try:
                with obs_trace.maybe_span(
                    "experiment",
                    experiment=name,
                    scenario=args.scenario,
                    seed=args.seed,
                ):
                    table = module.run(**kwargs)
            except ReproError as error:
                # A generated environment can be legitimately
                # unrunnable for a particular sweep (e.g. a room too
                # short for a pinned distance); fail that cleanly,
                # with the seed-bearing scenario name in the message.
                print(
                    f"error: [{name}] scenario {args.scenario!r}: "
                    f"{error}",
                    file=sys.stderr,
                )
                return 1
            elapsed = time.time() - started
            print(
                f"[{name}] finished in {elapsed:.1f} s "
                f"(jobs={engine.jobs})",
                file=sys.stderr,
            )
            print(f"=== {name}")
            print(table.render())
            print()
    if tracer is not None:
        n_spans = tracer.write_jsonl(args.trace)
        print(
            f"trace: {n_spans} spans -> {args.trace}",
            file=sys.stderr,
        )
    if registry is not None:
        registry.write_json(args.metrics_out)
        print(f"metrics -> {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
