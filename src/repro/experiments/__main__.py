"""Command-line entry point for the experiment harness.

Run a single experiment::

    python -m repro.experiments F4

Run everything (quick mode) on every core::

    python -m repro.experiments all

Add ``--full`` for the full-resolution sweeps recorded in
EXPERIMENTS.md, ``--seed N`` to vary the master seed, and ``--jobs N``
to bound the worker pool (default: all CPU cores; ``--jobs 1`` runs
serially). ``--no-batch`` disables the vectorized batch trial kernel
and walks the scalar per-trial loop instead. ``--scenario NAME`` runs
scenario-capable experiments in a registered environment
(``repro.sim.spec``): a reverberant room, a walking attacker, TV
interference, outdoor wind. Rendered tables go to stdout and are
byte-identical for every ``--jobs`` value and for both batch modes;
per-experiment timings go to stderr.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.errors import ExperimentError
from repro.experiments import ALL_EXPERIMENTS
from repro.sim.engine import ExperimentEngine
from repro.sim.spec import scenario_names


def _supports_scenario(module) -> bool:
    """Whether an experiment's ``run`` accepts a ``scenario`` kwarg."""
    return "scenario" in inspect.signature(module.run).parameters


def scenario_capable_experiments() -> list[str]:
    """IDs of experiments that accept ``--scenario``."""
    return sorted(
        name
        for name, module in ALL_EXPERIMENTS.items()
        if _supports_scenario(module)
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment ID (%s) or 'all'"
        % ", ".join(sorted(ALL_EXPERIMENTS)),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-resolution sweeps (slow) instead of quick mode",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the vectorized batch trial kernel (scalar "
        "per-trial loop; identical output, slower)",
    )
    parser.add_argument(
        "--scenario",
        default="free_field",
        choices=scenario_names(),
        help="environment to run in (default: free_field); applies to "
        "the scenario-capable experiments (%s)"
        % ", ".join(scenario_capable_experiments()),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    requested = args.experiment.upper()
    if requested == "ALL":
        names = list(ALL_EXPERIMENTS)
        if args.scenario != "free_field":
            capable = scenario_capable_experiments()
            skipped = [name for name in names if name not in capable]
            names = [name for name in names if name in capable]
            print(
                f"scenario {args.scenario!r}: running the "
                f"scenario-capable experiments {names}; skipping "
                f"{skipped}",
                file=sys.stderr,
            )
    elif requested in ALL_EXPERIMENTS:
        names = [requested]
        if args.scenario != "free_field" and not _supports_scenario(
            ALL_EXPERIMENTS[requested]
        ):
            print(
                f"experiment {requested} does not take --scenario; "
                f"scenario-capable: {scenario_capable_experiments()}",
                file=sys.stderr,
            )
            return 2
    else:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    # One engine (one worker pool) shared by every experiment, so
    # pool start-up and per-process emission caches amortise across
    # the whole run.
    try:
        engine = ExperimentEngine(jobs=args.jobs, batch=not args.no_batch)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with engine:
        for name in names:
            module = ALL_EXPERIMENTS[name]
            kwargs = {}
            if _supports_scenario(module):
                kwargs["scenario"] = args.scenario
            started = time.time()
            table = module.run(
                quick=not args.full,
                seed=args.seed,
                engine=engine,
                **kwargs,
            )
            elapsed = time.time() - started
            print(
                f"[{name}] finished in {elapsed:.1f} s "
                f"(jobs={engine.jobs})",
                file=sys.stderr,
            )
            print(f"=== {name}")
            print(table.render())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
