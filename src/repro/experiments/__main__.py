"""Command-line entry point for the experiment harness.

Run a single experiment::

    python -m repro.experiments F4

Run everything (quick mode)::

    python -m repro.experiments all

Add ``--full`` for the full-resolution sweeps recorded in
EXPERIMENTS.md, and ``--seed N`` to vary the master seed.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment ID (%s) or 'all'"
        % ", ".join(sorted(ALL_EXPERIMENTS)),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-resolution sweeps (slow) instead of quick mode",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    requested = args.experiment.upper()
    if requested == "ALL":
        names = list(ALL_EXPERIMENTS)
    elif requested in ALL_EXPERIMENTS:
        names = [requested]
    else:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(ALL_EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        started = time.time()
        table = ALL_EXPERIMENTS[name].run(
            quick=not args.full, seed=args.seed
        )
        elapsed = time.time() - started
        print(f"=== {name} ({elapsed:.0f} s)")
        print(table.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
