"""F6 — per-device accuracy vs distance.

The phone's exposed microphone demodulates more of the arriving
ultrasound than the Echo's plastic-covered far-field capsule, so the
same array attacks the phone from farther away — the device ordering
the attack literature reports consistently.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import accuracy_over_distances
from repro.speech.commands import synthesize_command


def run(quick: bool = True, seed: int = 0) -> ResultTable:
    """Success vs distance for the phone and the echo device."""
    rng = np.random.default_rng(seed)
    n_speakers = 16 if quick else 32
    distances = [1.0, 3.0, 5.0] if quick else [1.0, 2.0, 3.0, 4.0, 5.0, 6.5, 8.0]
    n_trials = 2 if quick else 8
    center = Position(0.0, 2.0, 1.0)
    array = grid_array(n_speakers, center, ultrasonic_piezo_element)
    table = ResultTable(
        title=(
            f"F6: success rate vs distance per device "
            f"({n_speakers}-speaker array)"
        ),
        columns=["device", "command", "distance m", "success rate"],
    )
    for device, command in (
        (VictimDevice.phone(seed=seed + 1), "ok_google"),
        (VictimDevice.echo(seed=seed + 1), "alexa"),
    ):
        voice = synthesize_command(command, rng)
        attacker = LongRangeAttacker(array, allocation_strategy="waterfill")
        emission = attacker.emit(voice)
        scenario = Scenario(
            command=command,
            attacker_position=center,
            victim_position=center.translated(1.0, 0.0, 0.0),
        )
        for distance, rate in accuracy_over_distances(
            scenario,
            device,
            list(emission.sources),
            distances,
            n_trials,
            rng,
        ):
            table.add_row(device.name, command, distance, rate)
    return table
