"""F6 — per-device accuracy vs distance.

The phone's exposed microphone demodulates more of the arriving
ultrasound than the Echo's plastic-covered far-field capsule, so the
same array attacks the phone from farther away — the device ordering
the attack literature reports consistently.

Both devices' distance sweeps are submitted as one wave of trial
groups; each device's emission is materialised once per process and
shared by all its distances.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import ATTACKER_POSITION, array_split
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
) -> ResultTable:
    """Success vs distance for the phone and the echo device."""
    rng = np.random.default_rng(seed)
    n_speakers = 16 if quick else 32
    distances = (
        [1.0, 3.0, 5.0]
        if quick
        else [1.0, 2.0, 3.0, 4.0, 5.0, 6.5, 8.0]
    )
    n_trials = 2 if quick else 8
    table = ResultTable(
        title=(
            f"F6: success rate vs distance per device "
            f"({n_speakers}-speaker array)"
        ),
        columns=["device", "command", "distance m", "success rate"],
    )
    groups: list[TrialGroup] = []
    rows: list[tuple] = []
    for device, command in (
        (VictimDevice.phone(seed=seed + 1), "ok_google"),
        (VictimDevice.echo(seed=seed + 1), "alexa"),
    ):
        spec = EmissionSpec(array_split, (command, seed, n_speakers))
        scenario = Scenario(
            command=command,
            attacker_position=ATTACKER_POSITION,
            victim_position=ATTACKER_POSITION.translated(1.0, 0.0, 0.0),
        )
        for distance in distances:
            groups.append(
                TrialGroup(
                    scenario.at_distance(distance),
                    device,
                    spec,
                    n_trials,
                )
            )
            rows.append((device.name, command, distance))
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rates = eng.success_rates(groups, rng)
    for row, rate in zip(rows, rates):
        table.add_row(*row, rate)
    return table
