"""F6 — per-device accuracy vs distance.

The phone's exposed microphone demodulates more of the arriving
ultrasound than the Echo's plastic-covered far-field capsule, so the
same array attacks the phone from farther away — the device ordering
the attack literature reports consistently.

Both devices' distance sweeps are submitted as one wave of trial
groups; each device's emission is materialised once per process and
shared by all its distances. ``scenario`` swaps the environment from
the ``repro.sim.spec`` registry; sweep distances that do not fit the
chosen room are dropped.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import array_split
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Success vs distance for the phone and the echo device."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    n_speakers = 16 if quick else 32
    distances = (
        [1.0, 3.0, 5.0]
        if quick
        else [1.0, 2.0, 3.0, 4.0, 5.0, 6.5, 8.0]
    )
    distances = list(spec.clamp_distances(distances))
    n_trials = 2 if quick else 8
    table = ResultTable(
        title=(
            f"F6: success rate vs distance per device "
            f"({n_speakers}-speaker array)"
            + spec.title_suffix()
        ),
        columns=["device", "command", "distance m", "success rate"],
    )
    groups: list[TrialGroup] = []
    rows: list[tuple] = []
    for device, command in (
        (VictimDevice.phone(seed=seed + 1), "ok_google"),
        (VictimDevice.echo(seed=seed + 1), "alexa"),
    ):
        emission_spec = EmissionSpec(
            array_split, (command, seed, n_speakers)
        )
        built = spec.build(command, distance_m=1.0)
        for distance in distances:
            groups.append(
                TrialGroup(
                    built.at_distance(distance),
                    device,
                    emission_spec,
                    n_trials,
                )
            )
            rows.append((device.name, command, distance))
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rates = eng.success_rates(groups, rng)
    for row, rate in zip(rows, rates):
        table.add_row(*row, rate)
    return table
