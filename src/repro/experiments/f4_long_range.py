"""F4 — the headline figure: attack range vs number of speakers.

Every attacker in this sweep obeys the same inaudibility rule (no
bystander at 0.5 m may hear the rig). The single wideband speaker is
therefore power-starved; the array sidesteps the constraint by giving
each element a spectral chunk whose self-leakage is physically
confined below the audible floor, so every element runs at (or near)
full drive and total delivered power grows with N.

The paper's 61-element prototype reached 25 ft (~7.6 m); the
reproduction's shape criterion is range growing monotonically with N
and the 61-speaker point landing in the same several-metres regime.

Range searches are adaptive (each probe depends on the last), so rigs
run in sequence — but every probe's trials fan out over the engine's
pool, and probed distances are memoised so none is measured twice.

``scenario`` selects the environment from the ``repro.sim.spec``
registry; room scenarios cap the search ceiling at the room's +x
interior span so the bisection never probes through a wall, and the
measured range then reads as "as far as the room allows".
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import array_split, single_inaudible
from repro.sim.engine import EmissionSpec, ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Measure attack range for a sweep of array sizes."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    speaker_counts = (4, 16) if quick else (2, 4, 8, 16, 32, 61)
    n_trials = 2 if quick else 4
    resolution = 0.5 if quick else 0.25
    max_distance = spec.max_distance_m(16.0)
    device = VictimDevice.phone(seed=seed + 1)
    built = spec.build(command, distance_m=1.0)
    table = ResultTable(
        title=(
            "F4: attack range vs number of speakers (all rigs "
            "inaudible to a bystander at 0.5 m)"
            + spec.title_suffix()
        ),
        columns=["speakers", "rig", "range m"],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        range_single = eng.attack_range_m(
            built,
            device,
            EmissionSpec(single_inaudible, (command, seed)),
            rng,
            n_trials=n_trials,
            max_distance_m=max_distance,
            resolution_m=resolution,
        )
        table.add_row(1, "single wideband (capped)", range_single)
        for n_speakers in speaker_counts:
            measured = eng.attack_range_m(
                built,
                device,
                EmissionSpec(array_split, (command, seed, n_speakers)),
                rng,
                n_trials=n_trials,
                max_distance_m=max_distance,
                resolution_m=resolution,
            )
            table.add_row(n_speakers, "split array", measured)
    return table
