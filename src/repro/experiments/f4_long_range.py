"""F4 — the headline figure: attack range vs number of speakers.

Every attacker in this sweep obeys the same inaudibility rule (no
bystander at 0.5 m may hear the rig). The single wideband speaker is
therefore power-starved; the array sidesteps the constraint by giving
each element a spectral chunk whose self-leakage is physically
confined below the audible floor, so every element runs at (or near)
full drive and total delivered power grows with N.

The paper's 61-element prototype reached 25 ft (~7.6 m); the
reproduction's shape criterion is range growing monotonically with N
and the 61-speaker point landing in the same several-metres regime.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import attack_range_m
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True, seed: int = 0, command: str = "ok_google"
) -> ResultTable:
    """Measure attack range for a sweep of array sizes."""
    rng = np.random.default_rng(seed)
    speaker_counts = (4, 16) if quick else (2, 4, 8, 16, 32, 61)
    n_trials = 2 if quick else 4
    resolution = 0.5 if quick else 0.25
    device = VictimDevice.phone(seed=seed + 1)
    center = Position(0.0, 2.0, 1.0)
    scenario = Scenario(
        command=command,
        attacker_position=center,
        victim_position=center.translated(1.0, 0.0, 0.0),
    )
    voice = synthesize_command(command, rng)
    table = ResultTable(
        title=(
            "F4: attack range vs number of speakers (all rigs "
            "inaudible to a bystander at 0.5 m)"
        ),
        columns=["speakers", "rig", "range m"],
    )
    single = SingleSpeakerAttacker(horn_tweeter(), center)
    capped = single.emit_inaudibly(voice)
    range_single = attack_range_m(
        scenario,
        device,
        list(capped.sources),
        rng,
        n_trials=n_trials,
        resolution_m=resolution,
    )
    table.add_row(1, "single wideband (capped)", range_single)
    for n_speakers in speaker_counts:
        array = grid_array(
            n_speakers, center, ultrasonic_piezo_element
        )
        attacker = LongRangeAttacker(
            array, allocation_strategy="waterfill"
        )
        emission = attacker.emit(voice)
        measured = attack_range_m(
            scenario,
            device,
            list(emission.sources),
            rng,
            n_trials=n_trials,
            resolution_m=resolution,
        )
        table.add_row(n_speakers, "split array", measured)
    return table
