"""F5 — per-speaker audibility across array sizes.

Why splitting works, measured directly: as the chunk count grows, each
chunk narrows, its self-intermodulation residue slides below ~100 Hz
where both the hearing threshold and the element's radiation
efficiency collapse — so the worst per-speaker audibility margin drops
with N while the allocator's granted drive levels rise toward 1.
"""

from __future__ import annotations

import numpy as np

from repro.attack.leakage import leakage_report
from repro.attack.splitter import SpectralSplitter
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True, seed: int = 0, command: str = "ok_google"
) -> ResultTable:
    """Worst-chunk leakage margin at full drive, per array size."""
    rng = np.random.default_rng(seed)
    voice = synthesize_command(command, rng)
    speaker = ultrasonic_piezo_element()
    counts = (2, 8, 32) if quick else (1, 2, 4, 8, 16, 32, 61)
    table = ResultTable(
        title=(
            "F5: worst per-chunk audible leakage at FULL drive vs "
            "array size (bystander at 0.5 m)"
        ),
        columns=[
            "chunks",
            "chunk bw Hz",
            "worst margin dB",
            "audible chunks",
        ],
    )
    for n_chunks in counts:
        splitter = SpectralSplitter(n_chunks=n_chunks)
        plan = splitter.split(voice)
        margins = []
        for chunk in plan.chunks:
            report = leakage_report(speaker, chunk.drive, 1.0, 0.5)
            margins.append(report.margin_db)
        table.add_row(
            n_chunks,
            plan.chunk_bandwidth_hz(),
            max(margins),
            sum(m > 0 for m in margins),
        )
    return table
