"""F5 — per-speaker audibility across array sizes.

Why splitting works, measured directly: as the chunk count grows, each
chunk narrows, its self-intermodulation residue slides below ~100 Hz
where both the hearing threshold and the element's radiation
efficiency collapse — so the worst per-speaker audibility margin drops
with N while the allocator's granted drive levels rise toward 1.

Each array size is an independent work unit fanned out by the engine;
workers ship back four numbers, not waveforms.

Like F2, this is a near-field bystander measurement (0.5 m direct
path, unmasked hearing threshold), so ``scenario`` tags the table
with the registry environment without altering the chunk physics.
"""

from __future__ import annotations

from repro.attack.leakage import leakage_report
from repro.attack.splitter import SpectralSplitter
from repro.dsp.signals import Signal
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.engine import ExperimentEngine, cached_voice
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _split_row(
    task: tuple[int, Signal],
) -> tuple[int, float, float, int]:
    """Worker: split the voice N ways and report chunk audibility."""
    n_chunks, voice = task
    speaker = ultrasonic_piezo_element()
    plan = SpectralSplitter(n_chunks=n_chunks).split(voice)
    margins = [
        leakage_report(speaker, chunk.drive, 1.0, 0.5).margin_db
        for chunk in plan.chunks
    ]
    return (
        n_chunks,
        plan.chunk_bandwidth_hz(),
        max(margins),
        sum(margin > 0 for margin in margins),
    )


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Worst-chunk leakage margin at full drive, per array size."""
    spec = get_scenario(scenario)
    voice = cached_voice(command, seed)
    counts = (2, 8, 32) if quick else (1, 2, 4, 8, 16, 32, 61)
    table = ResultTable(
        title=(
            "F5: worst per-chunk audible leakage at FULL drive vs "
            "array size (bystander at 0.5 m)" + spec.title_suffix()
        ),
        columns=[
            "chunks",
            "chunk bw Hz",
            "worst margin dB",
            "audible chunks",
        ],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rows = eng.map(
            _split_row, [(count, voice) for count in counts]
        )
    for row in rows:
        table.add_row(*row)
    return table
