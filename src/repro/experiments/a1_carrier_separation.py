"""A1 — ablation: carrier on its own speaker vs mixed into chunks.

When each chunk speaker also carries a share of the carrier, its
quadratic term regenerates ``2 a2 m_i(t) c`` — an audible, partially
intelligible copy of its slice of the command. Separating the carrier
removes this first-order product from every element; what remains is
the second-order chunk self-product. The ablation measures worst-chunk
leakage both ways.
"""

from __future__ import annotations

import numpy as np

from repro.attack.leakage import leakage_report, max_inaudible_drive
from repro.attack.splitter import SpectralSplitter
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.results import ResultTable
from repro.speech.commands import synthesize_command


def run(
    quick: bool = True, seed: int = 0, command: str = "ok_google"
) -> ResultTable:
    """Leakage with and without carrier separation, per array size."""
    rng = np.random.default_rng(seed)
    voice = synthesize_command(command, rng)
    speaker = ultrasonic_piezo_element()
    counts = (4, 16) if quick else (4, 8, 16, 32, 61)
    table = ResultTable(
        title=(
            "A1: worst per-chunk leakage margin at full drive — "
            "separate vs mixed carrier"
        ),
        columns=[
            "chunks",
            "separate margin dB",
            "mixed margin dB",
            "mixed max inaudible drive",
        ],
    )
    for n_chunks in counts:
        margins = {}
        for separate in (True, False):
            splitter = SpectralSplitter(
                n_chunks=n_chunks, separate_carrier=separate
            )
            plan = splitter.split(voice)
            margins[separate] = max(
                leakage_report(speaker, chunk.drive, 1.0, 0.5).margin_db
                for chunk in plan.chunks
            )
        # How hard the mixed design must throttle its loudest chunk:
        mixed_plan = SpectralSplitter(
            n_chunks=n_chunks, separate_carrier=False
        ).split(voice)
        worst_chunk = max(
            mixed_plan.chunks,
            key=lambda chunk: leakage_report(
                speaker, chunk.drive, 1.0, 0.5
            ).margin_db,
        )
        cap = max_inaudible_drive(speaker, worst_chunk.drive, 0.5)
        table.add_row(n_chunks, margins[True], margins[False], cap)
    return table
