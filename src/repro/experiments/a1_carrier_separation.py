"""A1 — ablation: carrier on its own speaker vs mixed into chunks.

When each chunk speaker also carries a share of the carrier, its
quadratic term regenerates ``2 a2 m_i(t) c`` — an audible, partially
intelligible copy of its slice of the command. Separating the carrier
removes this first-order product from every element; what remains is
the second-order chunk self-product. The ablation measures worst-chunk
leakage both ways, one array size per engine work unit. Like the
other bystander-at-0.5 m measurements, ``scenario`` tags the table
with the registry environment without altering the near-field
physics.
"""

from __future__ import annotations

from repro.attack.leakage import leakage_report, max_inaudible_drive
from repro.attack.splitter import SpectralSplitter
from repro.dsp.signals import Signal
from repro.hardware.devices import ultrasonic_piezo_element
from repro.sim.engine import ExperimentEngine, cached_voice
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _carrier_row(
    task: tuple[int, Signal],
) -> tuple[int, float, float, float]:
    """Worker: leakage margins with and without carrier separation."""
    n_chunks, voice = task
    speaker = ultrasonic_piezo_element()
    margins = {}
    plans = {}
    for separate in (True, False):
        splitter = SpectralSplitter(
            n_chunks=n_chunks, separate_carrier=separate
        )
        plans[separate] = splitter.split(voice)
        margins[separate] = max(
            leakage_report(speaker, chunk.drive, 1.0, 0.5).margin_db
            for chunk in plans[separate].chunks
        )
    # How hard the mixed design must throttle its loudest chunk:
    worst_chunk = max(
        plans[False].chunks,
        key=lambda chunk: leakage_report(
            speaker, chunk.drive, 1.0, 0.5
        ).margin_db,
    )
    cap = max_inaudible_drive(speaker, worst_chunk.drive, 0.5)
    return (n_chunks, margins[True], margins[False], cap)


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Leakage with and without carrier separation, per array size."""
    spec = get_scenario(scenario)
    voice = cached_voice(command, seed)
    counts = (4, 16) if quick else (4, 8, 16, 32, 61)
    table = ResultTable(
        title=(
            "A1: worst per-chunk leakage margin at full drive — "
            "separate vs mixed carrier" + spec.title_suffix()
        ),
        columns=[
            "chunks",
            "separate margin dB",
            "mixed margin dB",
            "mixed max inaudible drive",
        ],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        rows = eng.map(
            _carrier_row, [(count, voice) for count in counts]
        )
    for row in rows:
        table.add_row(*row)
    return table
