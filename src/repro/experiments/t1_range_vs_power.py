"""T1 — attack range vs speaker input power (single-speaker rig).

The classic power table of the single-speaker attack literature (the
arXiv precursor's Table 1 used 9.2-23.7 W into a horn tweeter and
found ranges of 2.2-3.5 m for a phone and 1.5-2.4 m for an Echo).
Range grows with power; the Echo trails the phone because of its
covered microphone. This table deliberately *ignores* the bystander
audibility constraint — it measures the conspicuous attack, as the
precursor paper did.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.geometry import Position
from repro.attack.attacker import SingleSpeakerAttacker
from repro.hardware.devices import horn_tweeter
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import attack_range_m
from repro.speech.commands import synthesize_command

#: The drive powers of the precursor paper's Table 1, watts.
PAPER_POWERS_W = (9.2, 11.8, 14.8, 18.7, 23.7)


def run(quick: bool = True, seed: int = 0) -> ResultTable:
    """Measure attack range per input power for both devices."""
    rng = np.random.default_rng(seed)
    powers = PAPER_POWERS_W[::2] if quick else PAPER_POWERS_W
    n_trials = 2 if quick else 5
    resolution = 0.5 if quick else 0.25
    position = Position(0.0, 2.0, 1.0)
    speaker = horn_tweeter()
    table = ResultTable(
        title="T1: attack range vs speaker input power (single speaker)",
        columns=["power W", "phone range m", "echo range m"],
    )
    configs = (
        (VictimDevice.phone(seed=seed + 1), "ok_google"),
        (VictimDevice.echo(seed=seed + 1), "alexa"),
    )
    ranges: dict[str, list[float]] = {"phone": [], "echo": []}
    for device, command in configs:
        voice = synthesize_command(command, rng)
        attacker = SingleSpeakerAttacker(speaker, position)
        scenario = Scenario(
            command=command,
            attacker_position=position,
            victim_position=position.translated(1.0, 0.0, 0.0),
        )
        for power in powers:
            level = speaker.drive_level_for_power(power)
            emission = attacker.emit(voice, drive_level=level)
            measured = attack_range_m(
                scenario,
                device,
                list(emission.sources),
                rng,
                n_trials=n_trials,
                resolution_m=resolution,
            )
            ranges[device.name].append(measured)
    for index, power in enumerate(powers):
        table.add_row(
            power, ranges["phone"][index], ranges["echo"][index]
        )
    return table
