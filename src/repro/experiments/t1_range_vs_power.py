"""T1 — attack range vs speaker input power (single-speaker rig).

The classic power table of the single-speaker attack literature (the
arXiv precursor's Table 1 used 9.2-23.7 W into a horn tweeter and
found ranges of 2.2-3.5 m for a phone and 1.5-2.4 m for an Echo).
Range grows with power; the Echo trails the phone because of its
covered microphone. This table deliberately *ignores* the bystander
audibility constraint — it measures the conspicuous attack, as the
precursor paper did.

Each (device, power) range search is adaptive and therefore
sequential, but every probe's trials run through the engine's pool
and probed distances are memoised. ``scenario`` swaps the environment
from the ``repro.sim.spec`` registry; rooms cap the search ceiling at
their +x interior span.
"""

from __future__ import annotations

import numpy as np

from repro.experiments._emissions import single_at_power
from repro.sim.engine import EmissionSpec, ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario

#: The drive powers of the precursor paper's Table 1, watts.
PAPER_POWERS_W = (9.2, 11.8, 14.8, 18.7, 23.7)


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Measure attack range per input power for both devices."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    powers = PAPER_POWERS_W[::2] if quick else PAPER_POWERS_W
    n_trials = 2 if quick else 5
    resolution = 0.5 if quick else 0.25
    max_distance = spec.max_distance_m(16.0)
    table = ResultTable(
        title=(
            "T1: attack range vs speaker input power (single speaker)"
            + spec.title_suffix()
        ),
        columns=["power W", "phone range m", "echo range m"],
    )
    configs = (
        (VictimDevice.phone(seed=seed + 1), "ok_google"),
        (VictimDevice.echo(seed=seed + 1), "alexa"),
    )
    ranges: dict[str, list[float]] = {"phone": [], "echo": []}
    with ExperimentEngine.scoped(engine, jobs) as eng:
        for device, command in configs:
            built = spec.build(command, distance_m=1.0)
            for power in powers:
                measured = eng.attack_range_m(
                    built,
                    device,
                    EmissionSpec(single_at_power, (command, seed, power)),
                    rng,
                    n_trials=n_trials,
                    max_distance_m=max_distance,
                    resolution_m=resolution,
                )
                ranges[device.name].append(measured)
    for index, power in enumerate(powers):
        table.add_row(
            power, ranges["phone"][index], ranges["echo"][index]
        )
    return table
