"""T3 — defense accuracy across generalisation splits.

Beyond a random split, the defense must generalise to commands and
distances it never saw in training (the deployed detector cannot know
what the attacker will say or from where). Rows:

* ``random split`` — i.i.d. baseline;
* ``held-out command`` — train on some commands, test on another;
* ``held-out distance`` — train near, test far;
* ``svm`` — the linear-SVM variant on the random split.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.sim.results import ResultTable


def run(quick: bool = True, seed: int = 0) -> ResultTable:
    """Accuracy/TPR/FPR for each generalisation split."""
    n_trials = 3 if quick else 8
    config = DatasetConfig(
        commands=("ok_google", "alexa", "add_milk"),
        distances_m=(1.0, 2.0, 3.0),
        n_trials=n_trials,
        attacker_kind="single_full",
        seed=seed,
    )
    dataset = build_dataset(config)
    rng = np.random.default_rng(seed + 11)
    table = ResultTable(
        title="T3: defense accuracy across generalisation splits",
        columns=["split", "model", "accuracy", "TPR", "FPR", "n test"],
    )

    def add(split_name: str, model: str, train, test) -> None:
        detector = InaudibleVoiceDetector(model=model).fit(train)
        confusion = detector.evaluate(test)
        table.add_row(
            split_name,
            model,
            confusion.accuracy,
            confusion.true_positive_rate,
            confusion.false_positive_rate,
            confusion.total,
        )

    train, test = dataset.split(0.6, rng)
    add("random", "logistic", train, test)
    add("random", "svm", train, test)

    held_command = "add_milk"
    train_cmd = dataset.filter(
        lambda meta: meta["command"] != held_command
    )
    test_cmd = dataset.filter(
        lambda meta: meta["command"] == held_command
    )
    add(f"held-out command ({held_command})", "logistic", train_cmd, test_cmd)

    train_near = dataset.filter(lambda meta: meta["distance_m"] < 3.0)
    test_far = dataset.filter(lambda meta: meta["distance_m"] >= 3.0)
    add("held-out distance (3 m)", "logistic", train_near, test_far)
    return table
