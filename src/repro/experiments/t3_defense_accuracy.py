"""T3 — defense accuracy across generalisation splits.

Beyond a random split, the defense must generalise to commands and
distances it never saw in training (the deployed detector cannot know
what the attacker will say or from where). Rows:

* ``random split`` — i.i.d. baseline;
* ``held-out command`` — train on some commands, test on another;
* ``held-out distance`` — train near, test far;
* ``svm`` — the linear-SVM variant on the random split.

The dataset is synthesised once in the parent — through the batched
trial pipeline, in the environment ``scenario`` names (a reverberant
living room, TV interference, ...) — and the four train/evaluate
cells (small feature matrices, cheap to pickle) fan out via the
engine.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, LabeledDataset, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.sim.engine import ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _split_row(
    task: tuple[str, str, LabeledDataset, LabeledDataset],
) -> tuple[str, str, float, float, float, int]:
    """Worker: fit and evaluate one (split, model) cell."""
    split_name, model, train, test = task
    detector = InaudibleVoiceDetector(model=model).fit(train)
    confusion = detector.evaluate(test)
    return (
        split_name,
        model,
        confusion.accuracy,
        confusion.true_positive_rate,
        confusion.false_positive_rate,
        confusion.total,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Accuracy/TPR/FPR for each generalisation split."""
    spec = get_scenario(scenario)
    n_trials = 3 if quick else 8
    config = DatasetConfig(
        commands=("ok_google", "alexa", "add_milk"),
        distances_m=(1.0, 2.0, 3.0),
        n_trials=n_trials,
        attacker_kind="single_full",
        scenario=scenario,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 11)
    table = ResultTable(
        title=(
            "T3: defense accuracy across generalisation splits"
            + spec.title_suffix()
        ),
        columns=["split", "model", "accuracy", "TPR", "FPR", "n test"],
    )
    with ExperimentEngine.scoped(engine, jobs) as eng:
        dataset = build_dataset(config, batch=eng.batch)
        train, test = dataset.split(0.6, rng)
        held_command = "add_milk"
        train_cmd = dataset.filter(
            lambda meta: meta["command"] != held_command
        )
        test_cmd = dataset.filter(
            lambda meta: meta["command"] == held_command
        )
        train_near = dataset.filter(lambda meta: meta["distance_m"] < 3.0)
        test_far = dataset.filter(lambda meta: meta["distance_m"] >= 3.0)
        tasks = [
            ("random", "logistic", train, test),
            ("random", "svm", train, test),
            (
                f"held-out command ({held_command})",
                "logistic",
                train_cmd,
                test_cmd,
            ),
            ("held-out distance (3 m)", "logistic", train_near, test_far),
        ]
        for row in eng.map(_split_row, tasks):
            table.add_row(*row)
    return table
