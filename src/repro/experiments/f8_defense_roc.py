"""F8 — the defense's ROC.

Train on one split of physically simulated recordings, report the ROC,
AUC and the operating point the paper family quotes (~99 % accuracy at
low false-alarm rates). ``scenario`` moves the whole chain — dataset
synthesis, training and evaluation — into a registered environment
(living room, TV interference, outdoor wind, ...), so the quoted
operating points can be read per deployment scene.

Each attacker kind's build/train/evaluate chain is one engine work
unit; only the five summary numbers come back from the workers.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.metrics import roc_curve
from repro.sim.engine import ExperimentEngine
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario


def _roc_row(
    task: tuple[DatasetConfig, int, bool],
) -> tuple[str, float, float, float, float]:
    """Worker: dataset -> split -> fit -> ROC summary for one kind."""
    config, split_seed, batch = task
    dataset = build_dataset(config, batch=batch)
    rng = np.random.default_rng(split_seed)
    train, test = dataset.split(0.6, rng)
    detector = InaudibleVoiceDetector().fit(train)
    scores = detector.scores_for(test)
    roc = roc_curve(test.labels, scores)
    confusion = detector.evaluate(test)
    return (
        config.attacker_kind,
        roc.auc(),
        roc.tpr_at_fpr(0.05),
        roc.tpr_at_fpr(0.01),
        confusion.accuracy,
    )


def run(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """ROC summary per attacker kind."""
    spec = get_scenario(scenario)
    n_trials = 3 if quick else 10
    table = ResultTable(
        title="F8: defense ROC summary" + spec.title_suffix(),
        columns=[
            "attacker",
            "AUC",
            "TPR@FPR<=5%",
            "TPR@FPR<=1%",
            "test accuracy",
        ],
    )
    configs = [
        DatasetConfig(
            commands=("ok_google", "alexa", "add_milk"),
            distances_m=(1.0, 2.0) if quick else (1.0, 2.0, 3.0),
            n_trials=n_trials,
            attacker_kind=kind,
            n_array_speakers=8,
            scenario=scenario,
            seed=seed,
        )
        for kind in ("single_full", "long_range")
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        tasks = [(config, seed + 7, eng.batch) for config in configs]
        for row in eng.map(_roc_row, tasks):
            table.add_row(*row)
    return table
