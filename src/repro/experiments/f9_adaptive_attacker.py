"""F9 — an adaptive attacker tries to hide the traces.

The trace the defense keys on is the quadratic term ``a2 m^2``; its
level relative to the wanted voice copy ``2 a2 m c`` scales with the
modulation depth. An adaptive attacker therefore lowers the depth to
shrink the trace — but the *same* scaling shrinks the delivered voice
command, costing SNR and range. This experiment sweeps depth and
reports both sides of the trade-off: detector score on attacked
recordings, and attack success rate.

The shape criterion: detection degrades gracefully as depth falls while
attack success collapses first — the defense wins the trade.

All depth sweeps run as one wave of trial groups; the detector is
trained once in the parent process and classifies the recordings the
workers return.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.experiments._emissions import (
    ATTACKER_POSITION,
    single_at_depth,
)
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    distance_m: float = 2.0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
) -> ResultTable:
    """Sweep modulation depth; report detection and attack success."""
    rng = np.random.default_rng(seed)
    depths = (
        (1.0, 0.5, 0.25)
        if quick
        else (1.0, 0.7, 0.5, 0.35, 0.25, 0.15)
    )
    n_trials = 3 if quick else 10
    # Train the detector once, on full-depth attacks only — the
    # adaptive attacker deviates from the training distribution.
    train_config = DatasetConfig(
        commands=("ok_google", "alexa"),
        distances_m=(1.0, 2.0),
        n_trials=3 if quick else 8,
        attacker_kind="single_full",
        seed=seed,
    )
    detector = InaudibleVoiceDetector().fit(build_dataset(train_config))

    device = VictimDevice.phone(seed=seed + 1)
    scenario = Scenario(
        command=command,
        attacker_position=ATTACKER_POSITION,
        victim_position=ATTACKER_POSITION.translated(
            distance_m, 0.0, 0.0
        ),
    )
    groups = [
        TrialGroup(
            scenario,
            device,
            EmissionSpec(single_at_depth, (command, seed, depth)),
            n_trials,
        )
        for depth in depths
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        per_depth = eng.run_trial_groups(groups, rng)
    table = ResultTable(
        title=(
            "F9: adaptive attacker (modulation depth sweep) at "
            f"{distance_m} m"
        ),
        columns=[
            "mod depth",
            "attack success",
            "detection rate",
            "mean det score",
        ],
    )
    for depth, outcomes in zip(depths, per_depth):
        success = sum(o.success for o in outcomes) / len(outcomes)
        verdicts = [detector.classify(o.recording) for o in outcomes]
        detection = sum(v.is_attack for v in verdicts) / len(verdicts)
        mean_score = float(np.mean([v.score for v in verdicts]))
        table.add_row(depth, success, detection, mean_score)
    return table
