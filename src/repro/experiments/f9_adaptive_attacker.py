"""F9 — an adaptive attacker tries to hide the traces.

The trace the defense keys on is the quadratic term ``a2 m^2``; its
level relative to the wanted voice copy ``2 a2 m c`` scales with the
modulation depth. An adaptive attacker therefore lowers the depth to
shrink the trace — but the *same* scaling shrinks the delivered voice
command, costing SNR and range. This experiment sweeps depth and
reports both sides of the trade-off: detector score on attacked
recordings, and attack success rate.

The shape criterion: detection degrades gracefully as depth falls while
attack success collapses first — the defense wins the trade.

``scenario`` places the whole trade-off in a registered environment:
the detector trains on recordings made there, and the depth-swept
trials replay there too (rooms cap the attack distance at their
interior span).

All depth sweeps run as one wave of trial groups; the detector is
trained once in the parent process and classifies the recordings the
workers return.
"""

from __future__ import annotations

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.experiments._emissions import single_at_depth
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


def run(
    quick: bool = True,
    seed: int = 0,
    command: str = "ok_google",
    distance_m: float = 2.0,
    jobs: int = 1,
    engine: ExperimentEngine | None = None,
    scenario: str = "free_field",
) -> ResultTable:
    """Sweep modulation depth; report detection and attack success."""
    spec = get_scenario(scenario)
    rng = np.random.default_rng(seed)
    depths = (
        (1.0, 0.5, 0.25)
        if quick
        else (1.0, 0.7, 0.5, 0.35, 0.25, 0.15)
    )
    n_trials = 3 if quick else 10
    # Train the detector once, on full-depth attacks only — the
    # adaptive attacker deviates from the training distribution.
    train_config = DatasetConfig(
        commands=("ok_google", "alexa"),
        distances_m=(1.0, 2.0),
        n_trials=3 if quick else 8,
        attacker_kind="single_full",
        scenario=scenario,
        seed=seed,
    )
    device = VictimDevice.phone(seed=seed + 1)
    # max_distance_m already returns min(ceiling, room span).
    distance_m = spec.max_distance_m(distance_m)
    trial_scenario = spec.build(command, distance_m=distance_m)
    groups = [
        TrialGroup(
            trial_scenario,
            device,
            EmissionSpec(single_at_depth, (command, seed, depth)),
            n_trials,
        )
        for depth in depths
    ]
    with ExperimentEngine.scoped(engine, jobs) as eng:
        detector = InaudibleVoiceDetector().fit(
            build_dataset(train_config, batch=eng.batch)
        )
        per_depth = eng.run_trial_groups(groups, rng)
    table = ResultTable(
        title=(
            "F9: adaptive attacker (modulation depth sweep) at "
            f"{distance_m} m" + spec.title_suffix()
        ),
        columns=[
            "mod depth",
            "attack success",
            "detection rate",
            "mean det score",
        ],
    )
    for depth, outcomes in zip(depths, per_depth):
        success = sum(o.success for o in outcomes) / len(outcomes)
        verdicts = [detector.classify(o.recording) for o in outcomes]
        detection = sum(v.is_attack for v in verdicts) / len(verdicts)
        mean_score = float(np.mean([v.score for v in verdicts]))
        table.add_row(depth, success, detection, mean_score)
    return table
