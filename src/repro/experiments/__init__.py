"""Reproduction experiments, one module per paper artefact.

Every module exposes ``run(quick=..., seed=..., jobs=..., engine=...)
-> ResultTable``. ``quick=True`` shrinks trial counts and sweep grids
so the full suite finishes in minutes; ``jobs``/``engine`` fan trials
out over a :class:`repro.sim.engine.ExperimentEngine` worker pool
(results are identical for every ``jobs`` value; a supplied ``engine``
takes precedence and ``jobs`` is then ignored). The benchmark
harness in ``benchmarks/`` wraps these functions, and EXPERIMENTS.md
records their output against the paper's reported numbers.

Experiment IDs (see DESIGN.md section 3):

====  =====================================================
F1    Microphone nonlinearity demodulation demo
F2    Speaker leakage vs drive power (single speaker)
F3    Single-speaker attack success vs distance
F4    Long-range: attack range vs number of speakers
F5    Per-speaker audibility across array sizes
F6    Per-device accuracy vs distance (phone vs echo)
F7    Defense trace feature separation
F8    Defense ROC / accuracy
F9    Adaptive attacker vs defense
S1    Streaming guard: online parity, latency, device fleet
T1    Attack range vs speaker input power
T2    End-to-end success rates (50 trials)
T3    Defense accuracy across generalisation splits
A1    Ablation: carrier separation
A2    Ablation: drive allocation strategy
A3    Ablation: defense feature subsets
====  =====================================================
"""

from repro.experiments import (  # noqa: F401
    a1_carrier_separation,
    a2_power_allocation,
    a3_defense_features,
    f1_nonlinearity_demo,
    f2_speaker_leakage,
    f3_single_speaker_range,
    f4_long_range,
    f5_split_audibility,
    f6_device_accuracy,
    f7_defense_traces,
    f8_defense_roc,
    f9_adaptive_attacker,
    s1_streaming,
    t1_range_vs_power,
    t2_success_rates,
    t3_defense_accuracy,
)

ALL_EXPERIMENTS = {
    "F1": f1_nonlinearity_demo,
    "F2": f2_speaker_leakage,
    "F3": f3_single_speaker_range,
    "F4": f4_long_range,
    "F5": f5_split_audibility,
    "F6": f6_device_accuracy,
    "F7": f7_defense_traces,
    "F8": f8_defense_roc,
    "F9": f9_adaptive_attacker,
    "S1": s1_streaming,
    "T1": t1_range_vs_power,
    "T2": t2_success_rates,
    "T3": t3_defense_accuracy,
    "A1": a1_carrier_separation,
    "A2": a2_power_allocation,
    "A3": a3_defense_features,
}
