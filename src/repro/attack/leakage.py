"""Attacker-side audible leakage analysis.

When an ultrasonic speaker plays an attack waveform, its driver's own
quadratic term demodulates the signal *inside the transmitter*: the
diaphragm radiates a faint audible copy of the hidden command plus
low-frequency envelope noise. A bystander near the attacker's rig can
hear it once drive power crosses a threshold — the effect that caps
single-speaker attack range.

This module quantifies that leakage: given a speaker model, a drive
waveform and a bystander distance, it computes the audible-band
pressure at the bystander and its audibility margin, and solves for the
maximum drive level that keeps the rig inaudible.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.propagation import PropagationModel
from repro.dsp.signals import Signal
from repro.hardware.speaker import UltrasonicSpeaker
from repro.psychoacoustics.audibility import (
    AudibilityReport,
    evaluate_audibility,
)
from repro.psychoacoustics.threshold import AUDIBLE_HIGH_HZ
from repro.errors import AttackConfigError


def audible_leakage(
    speaker: UltrasonicSpeaker,
    drive: Signal,
    drive_level: float,
    bystander_distance_m: float = 0.5,
    propagation: PropagationModel | None = None,
) -> Signal:
    """Audible-band pressure waveform reaching a bystander.

    The speaker output (pressure at 1 m) is low-passed to the audible
    band — removing the deliberately ultrasonic content — and then
    propagated to the bystander distance. What remains is exactly the
    leakage a human could hear.
    """
    if bystander_distance_m <= 0:
        raise AttackConfigError(
            f"bystander distance must be positive, got "
            f"{bystander_distance_m}"
        )
    model = propagation or PropagationModel(include_delay=False)
    radiated = speaker.play(drive, drive_level)
    # Brick-wall FFT cut rather than an IIR low-pass: the deliberately
    # ultrasonic content is tens of dB stronger than the leakage, so
    # even an order-8 filter's skirts would dwarf the quantity being
    # measured. Zero phase and perfect rejection are exactly right for
    # an analysis (non-causal) path.
    spectrum = np.fft.rfft(radiated.samples)
    freqs = np.fft.rfftfreq(radiated.n_samples, d=1.0 / radiated.sample_rate)
    spectrum[freqs > AUDIBLE_HIGH_HZ] = 0.0
    audible_band = radiated.replace(
        samples=np.fft.irfft(spectrum, n=radiated.n_samples)
    )
    return model.propagate(audible_band, bystander_distance_m)


def leakage_report(
    speaker: UltrasonicSpeaker,
    drive: Signal,
    drive_level: float,
    bystander_distance_m: float = 0.5,
    propagation: PropagationModel | None = None,
) -> AudibilityReport:
    """Audibility analysis of the leakage at the bystander position."""
    leak = audible_leakage(
        speaker, drive, drive_level, bystander_distance_m, propagation
    )
    return evaluate_audibility(leak)


def max_inaudible_drive(
    speaker: UltrasonicSpeaker,
    drive: Signal,
    bystander_distance_m: float = 0.5,
    margin_db: float = 0.0,
    tolerance_db: float = 0.5,
    propagation: PropagationModel | None = None,
) -> float:
    """Largest drive level whose leakage stays inaudible.

    Finds ``g`` in (0, 1] such that the leakage audibility margin at
    the bystander is at most ``-margin_db`` (i.e. ``margin_db`` dB of
    safety below threshold).

    The search exploits the physics: the dominant leakage is the
    quadratic term, whose pressure scales as ``g**2``, so its SPL moves
    at 40 dB per decade of drive. An analytic first guess from the
    full-drive margin is then refined by bisection, which also covers
    regimes where a linear (skirt) component scales at 20 dB/decade.

    Returns
    -------
    float
        Drive level in (0, 1]. If even full drive is inaudible,
        returns 1.0; if no positive drive is inaudible (pathological
        configurations), raises.
    """
    if margin_db < 0:
        raise AttackConfigError(
            f"margin_db must be non-negative, got {margin_db}"
        )
    target = -margin_db

    def margin_at(level: float) -> float:
        return leakage_report(
            speaker, drive, level, bystander_distance_m, propagation
        ).margin_db

    full = margin_at(1.0)
    if full <= target:
        return 1.0
    # Analytic quadratic-scaling guess: margin(g) ~ full + 40*log10(g).
    guess = 10.0 ** ((target - full) / 40.0)
    low, high = guess / 8.0, 1.0
    if margin_at(low) > target:
        # Even the pessimistic end is audible: fall back to a linear
        # scaling bound before declaring failure.
        low = 10.0 ** ((target - full) / 20.0) / 8.0
        if low <= 1e-6 or margin_at(low) > target:
            raise AttackConfigError(
                "no inaudible drive level exists for this speaker and "
                "waveform; its audible-band content does not vanish at "
                "low drive"
            )
    for _ in range(20):
        mid = (low * high) ** 0.5  # geometric bisection on a dB scale
        if margin_at(mid) > target:
            high = mid
        else:
            low = mid
        if abs(20.0 * (high / low - 1.0)) < tolerance_db:
            break
    return float(low)
