"""Per-speaker drive allocation under the audibility constraint.

Given a split plan and an array, decide each speaker's drive level.
Two strategies are provided (benchmark A2 compares them):

``"uniform"``
    One common reconstruction gain for every sideband chunk — the
    delivered spectrum is an exact scaled copy of the original
    modulated waveform, and the gain is set by the most constrained
    speaker. Maximal fidelity, conservative power.

``"waterfill"``
    Every speaker pushes toward its own audibility-constrained maximum,
    but no chunk may exceed ``boost_limit`` (default 4x, +12 dB) times
    the uniform gain. Delivers more total ultrasonic power (longer
    range) at the cost of bounded spectral tilt in the reconstructed
    command — a fidelity/power trade-off the recogniser's mel/CMN
    front-end tolerates well, which is exactly why the paper's array
    wins. The bound matters: *unlimited* per-chunk normalisation would
    raise even noise-floor slices to full scale and mangle the command
    (measurably worse recognition for narrow chunks).

Both respect two constraints per speaker: drive <= 1 (hardware) and
leakage margin <= -margin_db (inaudibility at the bystander distance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.array import SpeakerArray
from repro.attack.leakage import max_inaudible_drive
from repro.attack.splitter import SplitPlan
from repro.errors import AttackConfigError


@dataclass(frozen=True)
class AllocationResult:
    """Drive levels chosen by the allocator.

    Attributes
    ----------
    chunk_levels:
        Drive level per sideband chunk, aligned with
        ``plan.chunks``.
    carrier_level:
        Drive level for the carrier speaker (``None`` when the plan
        has no separate carrier).
    strategy:
        The strategy that produced this allocation.
    """

    chunk_levels: tuple[float, ...]
    carrier_level: float | None
    strategy: str

    def min_level(self) -> float:
        """Smallest allocated sideband level (diagnostic)."""
        if not self.chunk_levels:
            raise AttackConfigError("no chunk levels allocated")
        return min(self.chunk_levels)


def allocate_drive_levels(
    plan: SplitPlan,
    array: SpeakerArray,
    strategy: str = "uniform",
    bystander_distance_m: float = 0.5,
    margin_db: float = 3.0,
    boost_limit: float = 4.0,
) -> AllocationResult:
    """Choose drive levels for every speaker in the array.

    Parameters
    ----------
    plan:
        Split plan whose chunks map one-to-one onto the array's
        sideband speakers (element 0 is the carrier speaker when the
        plan separates the carrier).
    array:
        The physical array; must have enough elements.
    strategy:
        ``"uniform"`` or ``"waterfill"`` (see module docstring).
    bystander_distance_m:
        Assumed closest human to the rig.
    margin_db:
        Required inaudibility safety margin per speaker, dB below the
        hearing threshold.
    boost_limit:
        Waterfill only: maximum per-chunk gain relative to the uniform
        (faithful) gain; must be >= 1.
    """
    if strategy not in ("uniform", "waterfill"):
        raise AttackConfigError(
            f"unknown allocation strategy {strategy!r}; "
            "choose 'uniform' or 'waterfill'"
        )
    if boost_limit < 1.0:
        raise AttackConfigError(
            f"boost_limit must be >= 1, got {boost_limit}"
        )
    n_needed = plan.n_speakers
    if array.n_elements < n_needed:
        raise AttackConfigError(
            f"plan needs {n_needed} speakers but the array has "
            f"{array.n_elements}"
        )
    offset = 1 if plan.carrier is not None else 0
    carrier_level = None
    if plan.carrier is not None:
        carrier_level = max_inaudible_drive(
            array.elements[0].speaker,
            plan.carrier,
            bystander_distance_m,
            margin_db,
        )
    per_chunk_max = []
    for index, chunk in enumerate(plan.chunks):
        speaker = array.elements[offset + index].speaker
        per_chunk_max.append(
            max_inaudible_drive(
                speaker, chunk.drive, bystander_distance_m, margin_db
            )
        )
    # The effective gain a chunk applies to its share of the original
    # waveform is level * headroom (the drive was peak-normalised).
    effective_max = [
        level * chunk.gain_headroom
        for level, chunk in zip(per_chunk_max, plan.chunks)
    ]
    common_gain = min(effective_max)
    if strategy == "waterfill":
        ceiling = boost_limit * common_gain
        levels = tuple(
            min(effective, ceiling) / chunk.gain_headroom
            for effective, chunk in zip(effective_max, plan.chunks)
        )
    else:
        levels = tuple(
            min(common_gain / chunk.gain_headroom, 1.0)
            for chunk in plan.chunks
        )
    return AllocationResult(
        chunk_levels=levels,
        carrier_level=carrier_level,
        strategy=strategy,
    )
