"""The inaudible voice command attack (core contribution, attack side).

``pipeline``
    Single-speaker attack synthesis: low-pass -> upsample -> amplitude
    modulation onto an ultrasonic carrier. This is the short-range
    baseline (DolphinAttack family) the long-range design improves on.
``leakage``
    Attacker-side audibility analysis: how loud is the speaker's own
    nonlinear leakage, and what is the maximum *inaudible* drive level.
``splitter``
    The long-range idea: slice the modulated spectrum into narrow
    chunks, one per speaker, with the carrier on its own speaker. Each
    chunk's self-intermodulation collapses into [0, chunk bandwidth] —
    below the audible floor for narrow chunks — while the full command
    reassembles only at the victim's microphone.
``array``
    Physical speaker-array layouts.
``optimizer``
    Per-speaker drive allocation under the audibility constraint.
``attacker``
    High-level orchestration: command name in, placed ultrasonic
    sources out.
``baselines``
    Audible playback and single-speaker attackers used as comparisons.
"""

from repro.attack.pipeline import AttackPipeline, AttackPipelineConfig
from repro.attack.leakage import (
    audible_leakage,
    leakage_report,
    max_inaudible_drive,
)
from repro.attack.splitter import SpectralSplitter, SplitPlan, SpectralChunk
from repro.attack.array import SpeakerArray, grid_array, linear_array
from repro.attack.optimizer import AllocationResult, allocate_drive_levels
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker

__all__ = [
    "AttackPipeline",
    "AttackPipelineConfig",
    "leakage_report",
    "audible_leakage",
    "max_inaudible_drive",
    "SpectralSplitter",
    "SplitPlan",
    "SpectralChunk",
    "SpeakerArray",
    "linear_array",
    "grid_array",
    "allocate_drive_levels",
    "AllocationResult",
    "LongRangeAttacker",
    "SingleSpeakerAttacker",
    "AudiblePlaybackAttacker",
]
