"""Single-speaker attack signal synthesis.

The four classic steps of the inaudible command pipeline:

1. **Low-pass filtering** — keep the voice command's 0-``voice_cutoff``
   band (speech intelligibility survives an 8 kHz, even 3 kHz, cut and
   a smaller bandwidth permits a lower, better-radiated carrier).
2. **Upsampling** — move to the acoustic simulation rate so ultrasonic
   frequencies are representable.
3. **Ultrasound modulation** — amplitude-modulate onto the carrier.
4. **Carrier addition** — transmit the carrier along with the
   sidebands so the victim microphone's quadratic term has the strong
   reference tone it needs to demodulate against (full-carrier AM).

The output is a normalised digital drive waveform for one ultrasonic
speaker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsp.filters import low_pass
from repro.dsp.modulation import am_modulate
from repro.dsp.resample import upsample_to
from repro.dsp.signals import Signal, Unit
from repro.errors import AttackConfigError

#: Frequencies above this are inaudible to (adult) humans.
MIN_INAUDIBLE_HZ = 20000.0


@dataclass(frozen=True)
class AttackPipelineConfig:
    """Parameters of the single-speaker attack pipeline.

    Parameters
    ----------
    carrier_hz:
        Ultrasonic carrier. Must exceed 20 kHz + the voice cutoff so
        the *lower* sideband also stays inaudible.
    voice_cutoff_hz:
        Voice-band low-pass cut-off before modulation.
    acoustic_rate:
        Simulation rate for the generated drive waveform; must fit the
        upper sideband with margin.
    modulation_depth:
        AM depth in (0, 1].
    sideband_to_carrier_ratio:
        Peak amplitude of the message relative to the carrier tone;
        values below 1 put more of the power budget into the carrier,
        which the quadratic demodulator multiplies every sideband by.
    fade_s:
        Raised-cosine fade applied to the final waveform so switching
        transients do not produce audible clicks.
    """

    carrier_hz: float = 30000.0
    voice_cutoff_hz: float = 8000.0
    acoustic_rate: float = 192000.0
    modulation_depth: float = 1.0
    sideband_to_carrier_ratio: float = 1.0
    fade_s: float = 0.01

    def __post_init__(self) -> None:
        if self.voice_cutoff_hz <= 0:
            raise AttackConfigError(
                f"voice_cutoff_hz must be positive, got {self.voice_cutoff_hz}"
            )
        lower_sideband = self.carrier_hz - self.voice_cutoff_hz
        if lower_sideband < MIN_INAUDIBLE_HZ:
            raise AttackConfigError(
                f"carrier {self.carrier_hz} Hz with voice cutoff "
                f"{self.voice_cutoff_hz} Hz puts the lower sideband at "
                f"{lower_sideband} Hz — audible. The carrier must be at "
                f"least {MIN_INAUDIBLE_HZ + self.voice_cutoff_hz} Hz."
            )
        upper_sideband = self.carrier_hz + self.voice_cutoff_hz
        if upper_sideband >= self.acoustic_rate / 2:
            raise AttackConfigError(
                f"upper sideband {upper_sideband} Hz does not fit under "
                f"Nyquist at {self.acoustic_rate} Hz; raise acoustic_rate"
            )
        if not 0 < self.modulation_depth <= 1:
            raise AttackConfigError(
                f"modulation_depth must be in (0, 1], got "
                f"{self.modulation_depth}"
            )
        if self.sideband_to_carrier_ratio <= 0:
            raise AttackConfigError(
                "sideband_to_carrier_ratio must be positive, got "
                f"{self.sideband_to_carrier_ratio}"
            )
        if self.fade_s < 0:
            raise AttackConfigError(
                f"fade_s must be non-negative, got {self.fade_s}"
            )


class AttackPipeline:
    """Turns a recorded voice command into an ultrasonic drive waveform.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.speech import synthesize_command
    >>> rng = np.random.default_rng(0)
    >>> voice = synthesize_command("ok_google", rng)
    >>> drive = AttackPipeline().generate(voice)
    >>> drive.sample_rate
    192000.0
    """

    def __init__(self, config: AttackPipelineConfig | None = None) -> None:
        self.config = config or AttackPipelineConfig()

    def prepare_baseband(self, voice: Signal) -> Signal:
        """Steps 1-2: band-limit the command and move it to the
        acoustic rate."""
        if voice.unit != Unit.DIGITAL:
            raise AttackConfigError(
                "the pipeline expects a digital voice recording, got "
                f"unit {voice.unit!r}"
            )
        cutoff = min(self.config.voice_cutoff_hz, voice.nyquist * 0.99)
        filtered = low_pass(voice, cutoff, order=8)
        return upsample_to(filtered, self.config.acoustic_rate)

    def generate(self, voice: Signal) -> Signal:
        """Full pipeline: voice command in, normalised drive out.

        The result peaks at 1.0 (full drive); scale with the speaker's
        drive level, not by editing the waveform.
        """
        baseband = self.prepare_baseband(voice)
        modulated = am_modulate(
            baseband,
            self.config.carrier_hz,
            modulation_depth=self.config.modulation_depth
            * min(self.config.sideband_to_carrier_ratio, 1.0),
            carrier_amplitude=1.0,
            bandwidth_hz=self.config.voice_cutoff_hz,
        )
        normalized = modulated.scaled_to_peak(1.0)
        if self.config.fade_s > 0 and (
            2 * self.config.fade_s < normalized.duration
        ):
            normalized = normalized.faded(self.config.fade_s)
        return normalized
