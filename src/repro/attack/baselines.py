"""Baseline (non-attack) sound sources.

The defense's datasets need *legitimate* recordings to contrast with
attacked ones: a human (or an ordinary loudspeaker) saying the same
commands audibly. :class:`AudiblePlaybackAttacker` models that — it is
"attacker" only in the API sense of producing placed sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acoustics.channel import PlacedSource
from repro.acoustics.geometry import Position
from repro.acoustics.spl import spl_to_pressure
from repro.dsp.resample import upsample_to
from repro.dsp.signals import Signal, Unit
from repro.errors import AttackConfigError


@dataclass(frozen=True)
class AudiblePlaybackEmission:
    """A legitimate, audible playback of a command."""

    sources: tuple[PlacedSource, ...]
    speech_spl_at_1m: float


class AudiblePlaybackAttacker:
    """Plays the voice command audibly, like a person speaking.

    Parameters
    ----------
    position:
        Talker position.
    speech_spl_at_1m:
        Speech level referenced to 1 m; conversational speech is
        ~60 dB SPL, raised voice ~66 dB.
    acoustic_rate:
        Rate to upsample the voice waveform to so it can share a
        channel with ultrasonic sources.
    """

    def __init__(
        self,
        position: Position,
        speech_spl_at_1m: float = 60.0,
        acoustic_rate: float = 192000.0,
    ) -> None:
        if not 30.0 <= speech_spl_at_1m <= 100.0:
            raise AttackConfigError(
                f"speech level {speech_spl_at_1m} dB SPL is outside the "
                "plausible talker range [30, 100]"
            )
        self.position = position
        self.speech_spl_at_1m = speech_spl_at_1m
        self.acoustic_rate = acoustic_rate

    def emit(self, voice: Signal) -> AudiblePlaybackEmission:
        """Radiate the command as ordinary audible speech."""
        if voice.unit != Unit.DIGITAL:
            raise AttackConfigError(
                f"expected a digital voice waveform, got {voice.unit!r}"
            )
        upsampled = upsample_to(voice, self.acoustic_rate)
        target_rms = spl_to_pressure(self.speech_spl_at_1m)
        pressure = upsampled.scaled_to_rms(target_rms).with_unit(
            Unit.PASCAL
        )
        return AudiblePlaybackEmission(
            sources=(PlacedSource(pressure, self.position),),
            speech_spl_at_1m=self.speech_spl_at_1m,
        )
