"""Spectral splitting — the long-range attack's core mechanism.

A single speaker playing the complete AM waveform leaks audibly because
its quadratic term contains ``2 a2 m(t) c(t)``: the full command,
demodulated in the transmitter. The splitter removes that term from
every individual device:

* The **carrier** goes to a dedicated speaker. Squaring a pure tone
  yields only DC and ``2 f_c`` — both inaudible — so the carrier
  speaker can run at full drive.
* The **modulated sidebands** are sliced into ``n_chunks`` contiguous
  spectral chunks of the *ultrasonic* spectrum, one per speaker. All
  components within one chunk lie within its bandwidth ``B`` of each
  other, so a chunk's self-intermodulation lands only in ``[0, B]``
  (plus inaudible ``~2 f_c`` terms). For narrow chunks — the paper's
  array pushes ``B`` to tens of hertz — that residue sits at
  frequencies where the threshold of hearing is 40-80 dB SPL, i.e.
  below audibility at any drive the hardware can produce.

The full command spectrum only re-forms where all chunks and the
carrier superpose *acoustically*: at the victim's microphone diaphragm,
whose nonlinearity multiplies chunks against the carrier and writes the
voice band back to baseband.

Chunking is performed by exact FFT-domain partition, so the chunks sum
to the original waveform bit-for-bit (a property the tests pin down):
splitting changes *where* the energy is radiated from, never what total
waveform arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.modulation import dsb_sc_modulate
from repro.dsp.signals import Signal, Unit, tone
from repro.attack.pipeline import AttackPipeline, AttackPipelineConfig
from repro.errors import AttackConfigError


@dataclass(frozen=True)
class SpectralChunk:
    """One speaker's share of the attack spectrum.

    Attributes
    ----------
    drive:
        Normalised digital drive waveform (peak <= 1).
    band_hz:
        ``(low, high)`` spectral support of the chunk.
    gain_headroom:
        How much the chunk was scaled down during normalisation; the
        reconstruction gain the allocator may re-apply.
    """

    drive: Signal
    band_hz: tuple[float, float]
    gain_headroom: float

    @property
    def bandwidth_hz(self) -> float:
        """Width of the chunk's spectral support."""
        return self.band_hz[1] - self.band_hz[0]


@dataclass(frozen=True)
class SplitPlan:
    """The complete output of the splitter.

    Attributes
    ----------
    chunks:
        Sideband chunks, one per sideband speaker, ascending in
        frequency.
    carrier:
        Carrier drive waveform for the dedicated carrier speaker
        (``None`` when ``separate_carrier=False``, in which case every
        chunk already includes a share of the carrier — the ablation
        configuration).
    carrier_hz:
        The carrier frequency.
    """

    chunks: tuple[SpectralChunk, ...]
    carrier: Signal | None
    carrier_hz: float

    @property
    def n_speakers(self) -> int:
        """Total speakers required, including the carrier speaker."""
        return len(self.chunks) + (1 if self.carrier is not None else 0)

    def chunk_bandwidth_hz(self) -> float:
        """Bandwidth of each sideband chunk (uniform by construction)."""
        if not self.chunks:
            raise AttackConfigError("empty split plan has no chunks")
        return self.chunks[0].bandwidth_hz


class SpectralSplitter:
    """Builds :class:`SplitPlan` objects from voice commands.

    Parameters
    ----------
    n_chunks:
        Number of sideband chunks (= sideband speakers).
    pipeline_config:
        Single-speaker pipeline configuration reused for band-limiting,
        upsampling and carrier placement. The long-range configuration
        typically narrows ``voice_cutoff_hz`` to ~3 kHz: command
        intelligibility survives, and the chunks get proportionally
        narrower for the same speaker count.
    separate_carrier:
        ``True`` (the paper's design) radiates the carrier from its own
        speaker. ``False`` mixes a carrier share into every chunk —
        the configuration ablation A1 uses to show why carrier
        separation matters.
    """

    def __init__(
        self,
        n_chunks: int,
        pipeline_config: AttackPipelineConfig | None = None,
        separate_carrier: bool = True,
    ) -> None:
        if n_chunks < 1:
            raise AttackConfigError(
                f"n_chunks must be >= 1, got {n_chunks}"
            )
        self.n_chunks = n_chunks
        self.config = pipeline_config or AttackPipelineConfig(
            voice_cutoff_hz=3000.0, carrier_hz=40000.0
        )
        self.separate_carrier = separate_carrier
        self._pipeline = AttackPipeline(self.config)

    def split(self, voice: Signal) -> SplitPlan:
        """Produce the per-speaker drive waveforms for a command."""
        baseband = self._pipeline.prepare_baseband(voice)
        modulated = dsb_sc_modulate(
            baseband,
            self.config.carrier_hz,
            amplitude=1.0,
            bandwidth_hz=self.config.voice_cutoff_hz,
        )
        if self.config.fade_s > 0 and (
            2 * self.config.fade_s < modulated.duration
        ):
            modulated = modulated.faded(self.config.fade_s)
        low = self.config.carrier_hz - self.config.voice_cutoff_hz
        high = self.config.carrier_hz + self.config.voice_cutoff_hz
        edges = np.linspace(low, high, self.n_chunks + 1)
        spectrum = np.fft.rfft(modulated.samples)
        freqs = np.fft.rfftfreq(
            modulated.n_samples, d=1.0 / modulated.sample_rate
        )
        carrier_share = (
            0.0 if self.separate_carrier else 1.0 / self.n_chunks
        )
        chunks = []
        for i in range(self.n_chunks):
            band = (float(edges[i]), float(edges[i + 1]))
            chunk_spectrum = np.zeros_like(spectrum)
            if i == self.n_chunks - 1:
                mask = (freqs >= band[0]) & (freqs <= band[1])
            else:
                mask = (freqs >= band[0]) & (freqs < band[1])
            chunk_spectrum[mask] = spectrum[mask]
            samples = np.fft.irfft(chunk_spectrum, n=modulated.n_samples)
            chunk_signal = Signal(
                samples, modulated.sample_rate, Unit.DIGITAL
            )
            if carrier_share > 0:
                chunk_signal = chunk_signal + tone(
                    self.config.carrier_hz,
                    chunk_signal.duration,
                    chunk_signal.sample_rate,
                    amplitude=carrier_share,
                ).padded_to(chunk_signal.n_samples)
            peak = chunk_signal.peak()
            headroom = 1.0 / peak if peak > 0 else 1.0
            chunks.append(
                SpectralChunk(
                    drive=chunk_signal.scaled_to_peak(1.0)
                    if peak > 0
                    else chunk_signal,
                    band_hz=band,
                    gain_headroom=headroom,
                )
            )
        carrier_signal = None
        if self.separate_carrier:
            carrier_signal = tone(
                self.config.carrier_hz,
                modulated.duration,
                modulated.sample_rate,
                amplitude=1.0,
            ).padded_to(modulated.n_samples)
        return SplitPlan(
            chunks=tuple(chunks),
            carrier=carrier_signal,
            carrier_hz=self.config.carrier_hz,
        )

    def reconstruct(self, plan: SplitPlan) -> Signal:
        """Sum the (de-normalised) chunks back into one waveform.

        Test/analysis helper: with unit allocation the sum equals the
        original modulated waveform (plus carrier when separated),
        demonstrating that splitting is a pure spatial re-arrangement.
        """
        total = None
        for chunk in plan.chunks:
            restored = chunk.drive * (1.0 / chunk.gain_headroom)
            total = restored if total is None else total + restored
        if plan.carrier is not None:
            total = total + plan.carrier
        return total
