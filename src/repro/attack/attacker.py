"""High-level attack orchestration.

Attackers turn a voice command waveform into a set of placed acoustic
sources (pressure waveforms referenced to 1 m), ready for the acoustic
channel. Two concrete attackers:

:class:`SingleSpeakerAttacker`
    The short-range baseline: one wideband speaker plays the complete
    AM waveform. Drive is either fixed or capped at the maximum
    inaudible level.
:class:`LongRangeAttacker`
    The paper's design: a split plan across an array — carrier on its
    own element, narrow spectral chunks on the rest, drive levels from
    the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acoustics.channel import PlacedSource
from repro.acoustics.geometry import Position
from repro.attack.array import SpeakerArray
from repro.attack.leakage import max_inaudible_drive
from repro.attack.optimizer import AllocationResult, allocate_drive_levels
from repro.attack.pipeline import AttackPipeline, AttackPipelineConfig
from repro.attack.splitter import SpectralSplitter, SplitPlan
from repro.dsp.signals import Signal
from repro.hardware.speaker import UltrasonicSpeaker
from repro.errors import AttackConfigError


@dataclass(frozen=True)
class SingleSpeakerEmission:
    """What the single-speaker attacker radiated.

    Attributes
    ----------
    sources:
        Exactly one placed source.
    drive_level:
        The drive level actually used.
    drive:
        The normalised drive waveform.
    """

    sources: tuple[PlacedSource, ...]
    drive_level: float
    drive: Signal


class SingleSpeakerAttacker:
    """Baseline attacker: one speaker, full AM waveform.

    Parameters
    ----------
    speaker:
        The transmitting speaker (typically the horn tweeter preset).
    position:
        Speaker location in the scenario's frame.
    config:
        Attack pipeline parameters.
    """

    def __init__(
        self,
        speaker: UltrasonicSpeaker,
        position: Position,
        config: AttackPipelineConfig | None = None,
    ) -> None:
        self.speaker = speaker
        self.position = position
        self.pipeline = AttackPipeline(config)

    def emit(
        self, voice: Signal, drive_level: float = 1.0
    ) -> SingleSpeakerEmission:
        """Radiate the attack at a fixed drive level."""
        drive = self.pipeline.generate(voice)
        pressure = self.speaker.play(drive, drive_level)
        return SingleSpeakerEmission(
            sources=(PlacedSource(pressure, self.position),),
            drive_level=drive_level,
            drive=drive,
        )

    def emit_inaudibly(
        self,
        voice: Signal,
        bystander_distance_m: float = 0.5,
        margin_db: float = 3.0,
    ) -> SingleSpeakerEmission:
        """Radiate at the maximum drive that keeps the rig inaudible.

        This is the honest configuration for range comparisons against
        the long-range array: both attackers then operate under the
        same "no bystander can hear the rig" rule.
        """
        drive = self.pipeline.generate(voice)
        level = max_inaudible_drive(
            self.speaker, drive, bystander_distance_m, margin_db
        )
        pressure = self.speaker.play(drive, level)
        return SingleSpeakerEmission(
            sources=(PlacedSource(pressure, self.position),),
            drive_level=level,
            drive=drive,
        )


@dataclass(frozen=True)
class LongRangeEmission:
    """What the long-range attacker radiated.

    Attributes
    ----------
    sources:
        One placed source per active speaker (carrier first when
        separated).
    plan:
        The split plan used.
    allocation:
        The drive allocation used.
    """

    sources: tuple[PlacedSource, ...]
    plan: SplitPlan
    allocation: AllocationResult


class LongRangeAttacker:
    """The paper's multi-speaker attacker.

    Parameters
    ----------
    array:
        Speaker array. With a separated carrier, the first
        ``round(carrier_fraction * n)`` elements radiate the carrier
        tone and the rest carry one spectral chunk each.
    config:
        Pipeline configuration shared by the splitter (carrier
        frequency, voice cutoff, acoustic rate).
    separate_carrier:
        The paper's design radiates the carrier separately; disable
        only for the A1 ablation.
    carrier_fraction:
        Fraction of elements dedicated to the carrier. This is a
        first-order design constraint of square-law delivery, not a
        tuning nicety: the victim microphone demodulates
        ``2 a2 m(t) c`` (wanted) alongside ``a2 m(t)^2`` (distortion),
        so the delivered carrier must dominate the summed sidebands —
        with one carrier element against dozens of full-drive chunk
        elements, the squared-envelope distortion drowns the command
        at *any* range. Carrier tones from co-located elements add
        nearly coherently on axis, so dedicating ~40 % of the panel
        buys a carrier that scales with N while chunk power (disjoint
        bands, power-additive) scales with the remainder.
    allocation_strategy:
        ``"uniform"`` or ``"waterfill"`` (see the optimizer module).
    """

    def __init__(
        self,
        array: SpeakerArray,
        config: AttackPipelineConfig | None = None,
        separate_carrier: bool = True,
        carrier_fraction: float = 0.4,
        allocation_strategy: str = "waterfill",
        bystander_distance_m: float = 0.5,
        margin_db: float = 3.0,
    ) -> None:
        if not 0.0 < carrier_fraction < 1.0:
            raise AttackConfigError(
                f"carrier_fraction must be in (0, 1), got "
                f"{carrier_fraction}"
            )
        if separate_carrier:
            n_carrier = max(1, round(carrier_fraction * array.n_elements))
            n_sideband = array.n_elements - n_carrier
        else:
            n_carrier = 0
            n_sideband = array.n_elements
        if n_sideband < 1:
            raise AttackConfigError(
                "the array is too small: no sideband speakers remain "
                "after reserving the carrier elements"
            )
        self.array = array
        self.n_carrier = n_carrier
        self.splitter = SpectralSplitter(
            n_chunks=n_sideband,
            pipeline_config=config,
            separate_carrier=separate_carrier,
        )
        self.allocation_strategy = allocation_strategy
        self.bystander_distance_m = bystander_distance_m
        self.margin_db = margin_db

    def emit(self, voice: Signal) -> LongRangeEmission:
        """Split, allocate and radiate a voice command."""
        plan = self.splitter.split(voice)
        allocation = allocate_drive_levels(
            plan,
            self._sideband_array(),
            strategy=self.allocation_strategy,
            bystander_distance_m=self.bystander_distance_m,
            margin_db=self.margin_db,
        )
        sources = []
        if plan.carrier is not None:
            # A pure tone's quadratic self-product is DC + 2 f_c, both
            # inaudible, so one audibility check covers every carrier
            # element (they are identical by construction).
            level = allocation.carrier_level
            for element in self.array.elements[: self.n_carrier]:
                pressure = element.speaker.play(plan.carrier, level)
                sources.append(PlacedSource(pressure, element.position))
        for index, (chunk, level) in enumerate(
            zip(plan.chunks, allocation.chunk_levels)
        ):
            element = self.array.elements[self.n_carrier + index]
            if level <= 0:
                continue
            pressure = element.speaker.play(chunk.drive, level)
            sources.append(PlacedSource(pressure, element.position))
        if not sources:
            raise AttackConfigError(
                "allocation produced no positive drive level; the "
                "audibility constraint cannot be met by this array"
            )
        return LongRangeEmission(
            sources=tuple(sources),
            plan=plan,
            allocation=allocation,
        )

    def _sideband_array(self) -> SpeakerArray:
        """The sub-array the chunk allocator sees (carrier first, to
        keep the allocator's element-0 convention)."""
        if self.n_carrier == 0:
            return self.array
        elements = (
            self.array.elements[0],
            *self.array.elements[self.n_carrier :],
        )
        return SpeakerArray(elements=elements)
