"""Physical speaker-array layouts.

The long-range rig is a panel of small ultrasonic elements. For the
wavelengths involved (~8.6 mm at 40 kHz) true phased-array beamforming
would demand sub-millimetre placement accuracy; the reproduced attack
does not rely on it, only on the *sum* of the per-element pressures at
the microphone. Layouts here therefore just place elements on a small
grid around the array centre — close enough together that path-length
differences across the array are small compared to the chunk
bandwidths' coherence time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.geometry import Position
from repro.hardware.speaker import UltrasonicSpeaker
from repro.errors import AttackConfigError


@dataclass(frozen=True)
class ArrayElement:
    """One speaker and its mounting position."""

    speaker: UltrasonicSpeaker
    position: Position


@dataclass(frozen=True)
class SpeakerArray:
    """A rigid collection of ultrasonic speakers.

    Attributes
    ----------
    elements:
        The mounted speakers. Element 0 is, by convention, the carrier
        speaker when a split plan separates the carrier.
    """

    elements: tuple[ArrayElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise AttackConfigError("a speaker array needs >= 1 element")

    @property
    def n_elements(self) -> int:
        """Number of mounted speakers."""
        return len(self.elements)

    def total_rated_power_w(self) -> float:
        """Sum of the elements' rated electrical powers."""
        return sum(
            e.speaker.config.max_electrical_power_w for e in self.elements
        )

    def centroid(self) -> Position:
        """Geometric centre of the mounted elements."""
        n = self.n_elements
        return Position(
            sum(e.position.x for e in self.elements) / n,
            sum(e.position.y for e in self.elements) / n,
            sum(e.position.z for e in self.elements) / n,
        )


def grid_array(
    n_elements: int,
    center: Position,
    speaker_factory,
    spacing_m: float = 0.02,
) -> SpeakerArray:
    """Build a near-square panel array in the y-z plane.

    This is the physically sensible layout for large element counts: a
    61-element panel of small piezo discs at 2 cm pitch is ~16 cm
    across, so path-length differences to a victim metres away stay a
    fraction of the carrier wavelength and the carrier elements add
    nearly coherently. (A *linear* array of the same count would span
    metres and comb-filter the reconstruction at close range.)
    """
    if n_elements < 1:
        raise AttackConfigError(
            f"n_elements must be >= 1, got {n_elements}"
        )
    if spacing_m <= 0:
        raise AttackConfigError(
            f"spacing_m must be positive, got {spacing_m}"
        )
    n_columns = int(np.ceil(np.sqrt(n_elements)))
    n_rows = int(np.ceil(n_elements / n_columns))
    elements = []
    for index in range(n_elements):
        row, column = divmod(index, n_columns)
        dy = (column - (n_columns - 1) / 2.0) * spacing_m
        dz = (row - (n_rows - 1) / 2.0) * spacing_m
        elements.append(
            ArrayElement(
                speaker=speaker_factory(),
                position=center.translated(0.0, dy, dz),
            )
        )
    return SpeakerArray(elements=tuple(elements))


def linear_array(
    n_elements: int,
    center: Position,
    speaker_factory,
    spacing_m: float = 0.04,
    axis: str = "y",
) -> SpeakerArray:
    """Build a uniformly spaced linear array.

    Parameters
    ----------
    n_elements:
        Number of speakers to mount.
    center:
        Array centre position.
    speaker_factory:
        Zero-argument callable returning a fresh
        :class:`UltrasonicSpeaker` per element (e.g.
        ``repro.hardware.ultrasonic_piezo_element``).
    spacing_m:
        Inter-element spacing; 4 cm matches small piezo modules mounted
        edge to edge.
    axis:
        Layout axis, ``"x"``, ``"y"`` or ``"z"``.
    """
    if n_elements < 1:
        raise AttackConfigError(
            f"n_elements must be >= 1, got {n_elements}"
        )
    if spacing_m <= 0:
        raise AttackConfigError(
            f"spacing_m must be positive, got {spacing_m}"
        )
    if axis not in ("x", "y", "z"):
        raise AttackConfigError(f"axis must be x, y or z, got {axis!r}")
    elements = []
    for i in range(n_elements):
        offset = (i - (n_elements - 1) / 2.0) * spacing_m
        deltas = {"x": 0.0, "y": 0.0, "z": 0.0}
        deltas[axis] = offset
        elements.append(
            ArrayElement(
                speaker=speaker_factory(),
                position=center.translated(
                    deltas["x"], deltas["y"], deltas["z"]
                ),
            )
        )
    return SpeakerArray(elements=tuple(elements))
