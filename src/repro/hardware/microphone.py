"""The microphone receive chain.

Models the full path of Figure "typical diagram of a microphone" in the
attack literature: acoustic front-end -> nonlinear transducer +
pre-amplifier -> anti-alias low-pass -> ADC, plus self-noise.

The decisive stage is the nonlinearity. Incoming pressure is normalised
by the microphone's acoustic full scale (the SPL at which the chain
clips) to a dimensionless drive ``u``; the transducer + pre-amp apply
``a1*u + a2*u^2 + a3*u^3``. For an AM ultrasound input the ``a2 u^2``
term lands a scaled copy of the message at baseband, which then — and
this is the whole attack — *survives* the anti-alias filter that
removes the carrier and sidebands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import fft as sp_fft

from repro.acoustics.spl import spl_to_pressure
from repro.dsp.filters import (
    high_pass,
    high_pass_array,
    low_pass,
    low_pass_array,
)
from repro.dsp.signals import Signal, SignalBatch, Unit
from repro.hardware.adc import AnalogToDigitalConverter
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError, SignalDomainError


@dataclass(frozen=True)
class MicrophoneConfig:
    """Parameters of a voice-capture microphone chain.

    Parameters
    ----------
    device_rate:
        Output sample rate delivered to the voice assistant, Hz.
    full_scale_spl:
        SPL (dB) at which the chain reaches digital full scale;
        ~120 dB SPL is typical of MEMS capsules.
    nonlinearity:
        Polynomial transfer applied to the normalised drive.
    noise_floor_spl:
        Equivalent input self-noise, dB SPL (A typical MEMS microphone
        has an equivalent input noise of ~29-35 dB SPL).
    antialias_cutoff_hz:
        Analog anti-alias low-pass cut-off; ~0.45x the device rate.
    dc_block_hz:
        AC-coupling high-pass corner. Real capture chains block DC;
        the corner sits well below the 20-50 Hz band where nonlinear
        demodulation leaves the traces the defense later exploits, so
        those traces are physical signal, not a coupling artefact.
    front_end_attenuation_db:
        Extra attenuation applied to ultrasonic content (>20 kHz)
        before the transducer — models plastic covers and acoustic
        ports. The Echo's covered microphones attenuate ultrasound
        noticeably; exposed phone microphones barely do.
    name:
        Human-readable preset label for reports.
    """

    device_rate: float = 48000.0
    full_scale_spl: float = 120.0
    nonlinearity: PolynomialNonlinearity = field(
        default_factory=lambda: PolynomialNonlinearity((1.0, 0.05, 0.005))
    )
    noise_floor_spl: float = 30.0
    antialias_cutoff_hz: float | None = None
    dc_block_hz: float = 10.0
    front_end_attenuation_db: float = 0.0
    name: str = "generic-mems"

    def __post_init__(self) -> None:
        if self.device_rate <= 0:
            raise HardwareModelError(
                f"device_rate must be positive, got {self.device_rate}"
            )
        if not 60.0 <= self.full_scale_spl <= 180.0:
            raise HardwareModelError(
                f"full_scale_spl {self.full_scale_spl} dB outside the "
                "plausible range [60, 180]"
            )
        if self.noise_floor_spl >= self.full_scale_spl:
            raise HardwareModelError(
                "noise floor at or above full scale leaves no dynamic "
                "range"
            )
        if self.front_end_attenuation_db < 0:
            raise HardwareModelError(
                "front_end_attenuation_db must be non-negative, got "
                f"{self.front_end_attenuation_db}"
            )
        if not 0 < self.dc_block_hz < 20.0:
            raise HardwareModelError(
                "dc_block_hz must lie in (0, 20) Hz so the sub-50 Hz "
                f"demodulation traces survive, got {self.dc_block_hz}"
            )

    @property
    def effective_antialias_cutoff(self) -> float:
        """Anti-alias cut-off, defaulting to 45 % of the device rate."""
        if self.antialias_cutoff_hz is not None:
            return self.antialias_cutoff_hz
        return 0.45 * self.device_rate


@dataclass
class Microphone:
    """A complete microphone model; call :meth:`record`.

    The chain (all at the incoming acoustic rate until the ADC):

    1. front-end ultrasonic attenuation (cover/port),
    2. normalisation by the acoustic full scale,
    3. polynomial nonlinearity,
    4. analog anti-alias low-pass,
    5. self-noise injection,
    6. ADC (resample to device rate, clip, quantise).
    """

    config: MicrophoneConfig

    @property
    def full_scale_pressure(self) -> float:
        """Peak pressure (Pa) mapped to digital full scale."""
        # Full scale is specified as an RMS sine SPL; its peak is
        # sqrt(2) higher.
        return spl_to_pressure(self.config.full_scale_spl) * np.sqrt(2.0)

    def record(
        self, pressure: Signal, rng: np.random.Generator | None = None
    ) -> Signal:
        """Record an acoustic pressure waveform.

        Composed of the chain's two halves — :meth:`record_analog`
        (front-end through self-noise) and :meth:`digitize` (ADC) —
        which the trial pipeline also runs as separate stages; the
        split is pure code motion, so both entry points are bitwise
        identical.

        Parameters
        ----------
        pressure:
            Sound pressure at the diaphragm, pascals, at a rate >= the
            device rate (use the acoustic simulation rate).
        rng:
            Random generator for self-noise; required unless the
            configured noise floor is ``None``-like (not supported —
            pass a generator; determinism comes from seeding).

        Returns
        -------
        Signal
            Digital recording at ``config.device_rate`` in [-1, 1].
        """
        return self.digitize(self.record_analog(pressure, rng))

    def record_analog(
        self, pressure: Signal, rng: np.random.Generator | None = None
    ) -> Signal:
        """The analog half of :meth:`record`: everything before the ADC.

        Front-end attenuation, full-scale normalisation, the
        polynomial nonlinearity, the anti-alias and DC-block filters
        and the self-noise draw — returning the noisy analog waveform
        still at the acoustic rate.
        """
        if pressure.unit != Unit.PASCAL:
            raise SignalDomainError(
                "record expects a pressure waveform in pascals, got "
                f"unit {pressure.unit!r}"
            )
        if rng is None:
            raise HardwareModelError(
                "record requires a numpy Generator for self-noise; "
                "seed one explicitly for reproducibility"
            )
        conditioned = self._front_end(pressure)
        drive = conditioned.samples / self.full_scale_pressure
        shaped = self.config.nonlinearity.apply_array(drive)
        analog = Signal(shaped, pressure.sample_rate, Unit.VOLT)
        cutoff = min(
            self.config.effective_antialias_cutoff, analog.nyquist * 0.99
        )
        filtered = low_pass(analog, cutoff, order=8)
        filtered = high_pass(filtered, self.config.dc_block_hz, order=1)
        return self._add_self_noise(filtered, rng)

    def digitize(self, analog: Signal) -> Signal:
        """The digital half of :meth:`record`: resample, clip, quantise."""
        adc = AnalogToDigitalConverter(
            sample_rate=self.config.device_rate, full_scale=1.0
        )
        return adc.convert(analog)

    def record_batch(
        self, pressure: SignalBatch, rngs: list[np.random.Generator]
    ) -> SignalBatch:
        """Record a stack of pressure waveforms, one per trial.

        The batched counterpart of :meth:`record` for the vectorized
        trial kernel: every chain stage (front-end shaping, polynomial
        nonlinearity, anti-alias and DC-block filtering, ADC) runs as
        one ``axis=-1`` operation over the whole
        ``(n_trials, n_samples)`` stack, while self-noise is drawn from
        ``rngs[i]`` for row ``i`` — the *same* draw the scalar path
        makes — so row ``i`` of the result is bitwise identical to
        ``record(pressure.row(i), rngs[i])``. Split into
        :meth:`record_analog_batch` and :meth:`digitize_batch`,
        mirroring the scalar chain's halves, so the trial pipeline can
        run them as separate stages.
        """
        return self.digitize_batch(
            self.record_analog_batch(pressure, rngs)
        )

    def record_analog_batch(
        self, pressure: SignalBatch, rngs: list[np.random.Generator]
    ) -> SignalBatch:
        """The analog half of :meth:`record_batch`, over a whole stack."""
        if pressure.unit != Unit.PASCAL:
            raise SignalDomainError(
                "record_batch expects pressure waveforms in pascals, "
                f"got unit {pressure.unit!r}"
            )
        if len(rngs) != pressure.n_signals:
            raise HardwareModelError(
                f"{pressure.n_signals} stacked waveforms but "
                f"{len(rngs)} generators; record_batch needs exactly "
                "one per trial"
            )
        if any(rng is None for rng in rngs):
            raise HardwareModelError(
                "record_batch requires a numpy Generator per trial; "
                "seed them explicitly for reproducibility"
            )
        conditioned = self._front_end_array(
            pressure.samples, pressure.sample_rate
        )
        drive = conditioned / self.full_scale_pressure
        shaped = self.config.nonlinearity.apply_array(drive)
        # Non-finite samples (drive outside the nonlinearity's validity
        # range) propagate through the filters and are rejected by the
        # SignalBatch constructor below — same guarantee as the scalar
        # path, without an extra full-stack isfinite scan here.
        rate = pressure.sample_rate
        cutoff = min(
            self.config.effective_antialias_cutoff, (rate / 2.0) * 0.99
        )
        filtered = low_pass_array(shaped, rate, cutoff, order=8)
        filtered = high_pass_array(
            filtered, rate, self.config.dc_block_hz, order=1
        )
        noise_rms_pa = spl_to_pressure(self.config.noise_floor_spl)
        noise_rms_digital = (
            noise_rms_pa
            * abs(self.config.nonlinearity.a1)
            / self.full_scale_pressure
        )
        noisy = np.empty_like(filtered)
        for index, rng in enumerate(rngs):
            noise = rng.normal(
                0.0, noise_rms_digital, filtered.shape[-1]
            )
            np.add(filtered[index], noise, out=noisy[index])
        return SignalBatch.adopt(noisy, rate, Unit.VOLT)

    def digitize_batch(self, analog: SignalBatch) -> SignalBatch:
        """The digital half of :meth:`record_batch`: ADC per row."""
        adc = AnalogToDigitalConverter(
            sample_rate=self.config.device_rate, full_scale=1.0
        )
        digital = adc.convert_batch(analog.samples, analog.sample_rate)
        return SignalBatch.adopt(
            digital, self.config.device_rate, Unit.DIGITAL
        )

    def _front_end(self, pressure: Signal) -> Signal:
        """Apply the cover/port ultrasonic attenuation, if any."""
        shaped = self._front_end_array(
            pressure.samples, pressure.sample_rate
        )
        if shaped is pressure.samples:
            return pressure
        return pressure.replace(samples=shaped)

    def _front_end_array(
        self, samples: np.ndarray, sample_rate: float
    ) -> np.ndarray:
        """Cover/port attenuation on a 1-D waveform or a 2-D stack."""
        attenuation_db = self.config.front_end_attenuation_db
        if attenuation_db == 0.0:
            return samples
        gain = 10.0 ** (-attenuation_db / 20.0)
        n = samples.shape[-1]
        spectrum = sp_fft.rfft(samples, axis=-1)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        # Smooth transition from unity below 18 kHz to the attenuated
        # level above 22 kHz, approximating a cover's mass-law slope.
        response = np.ones_like(freqs)
        lo, hi = 18000.0, 22000.0
        ramp = (freqs >= lo) & (freqs <= hi)
        response[ramp] = 1.0 + (gain - 1.0) * (freqs[ramp] - lo) / (hi - lo)
        response[freqs > hi] = gain
        return sp_fft.irfft(spectrum * response, n=n, axis=-1)

    def _add_self_noise(
        self, analog: Signal, rng: np.random.Generator
    ) -> Signal:
        noise_rms_pa = spl_to_pressure(self.config.noise_floor_spl)
        noise_rms_digital = (
            noise_rms_pa
            * abs(self.config.nonlinearity.a1)
            / self.full_scale_pressure
        )
        noise = rng.normal(0.0, noise_rms_digital, analog.n_samples)
        return analog.replace(samples=analog.samples + noise)

    def demodulation_gain(self, carrier_spl: float) -> float:
        """Analytic small-signal demodulation gain at a carrier level.

        For a carrier of SPL ``L`` and a sideband pair of equal level,
        the recovered baseband amplitude relative to the sideband
        amplitude is ``2 * a2 * u_c / a1`` with ``u_c`` the normalised
        carrier amplitude. Used by analytic range predictions.
        """
        u_c = (
            spl_to_pressure(carrier_spl)
            * np.sqrt(2.0)
            / self.full_scale_pressure
        )
        a = self.config.nonlinearity
        if a.a1 == 0:
            raise HardwareModelError("a1 must be non-zero")
        return float(2.0 * abs(a.a2) * u_c / abs(a.a1))
