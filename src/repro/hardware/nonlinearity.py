"""Memoryless polynomial nonlinearity.

Transducers and amplifiers are modelled as

    y = a1*x + a2*x^2 + a3*x^3 + ...

acting on a *normalised* input (|x| of order one at full scale). This
is the model the paper family uses analytically: with a two-tone input
``cos(2*pi*f1*t) + cos(2*pi*f2*t)`` the quadratic term contributes
harmonics ``2*f1``, ``2*f2`` and intermodulation products ``f1 +- f2``
— the difference term is the demodulation channel the attack rides on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.signals import Signal
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class PolynomialNonlinearity:
    """A polynomial transfer function ``y = sum_i a_i x^i`` (i >= 1).

    Parameters
    ----------
    coefficients:
        ``(a1, a2, a3, ...)``. ``a1`` is the linear gain and must be
        non-zero; higher orders default to absent. A purely linear
        device is ``PolynomialNonlinearity((1.0,))``.
    """

    coefficients: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise HardwareModelError(
                "at least the linear coefficient a1 is required"
            )
        if self.coefficients[0] == 0.0:
            raise HardwareModelError(
                "the linear coefficient a1 must be non-zero; a device "
                "with no linear response records nothing"
            )
        if any(not np.isfinite(c) for c in self.coefficients):
            raise HardwareModelError("coefficients must be finite")

    @property
    def order(self) -> int:
        """Highest polynomial order present."""
        return len(self.coefficients)

    @property
    def a1(self) -> float:
        """Linear gain."""
        return self.coefficients[0]

    @property
    def a2(self) -> float:
        """Quadratic coefficient (0 if not specified)."""
        return self.coefficients[1] if len(self.coefficients) > 1 else 0.0

    @property
    def a3(self) -> float:
        """Cubic coefficient (0 if not specified)."""
        return self.coefficients[2] if len(self.coefficients) > 2 else 0.0

    def is_linear(self) -> bool:
        """True if every coefficient above a1 vanishes."""
        return all(c == 0.0 for c in self.coefficients[1:])

    def apply_array(self, x: np.ndarray) -> np.ndarray:
        """Apply the polynomial to a raw array (Horner evaluation).

        Shape-agnostic and elementwise: a stacked
        ``(n_trials, n_samples)`` batch produces bitwise the same
        values as applying the polynomial row by row, which is what
        lets :mod:`repro.sim.batch` push whole trial batches through
        the transducer model in one call.
        """
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        for coefficient in reversed(self.coefficients):
            result = (result + coefficient) * x
        return result

    def apply(self, signal: Signal) -> Signal:
        """Apply the polynomial sample-wise to a signal."""
        return signal.replace(samples=self.apply_array(signal.samples))

    def second_order_product_amplitude(
        self, amplitude_a: float, amplitude_b: float
    ) -> float:
        """Predicted amplitude of the ``f1 - f2`` intermodulation tone.

        For inputs ``A cos(2*pi*f1 t)`` and ``B cos(2*pi*f2 t)`` the
        quadratic term ``a2 (A cos + B cos)^2`` contains
        ``a2 * A * B * cos(2*pi*(f1 - f2) t)`` — this helper returns
        ``|a2| * A * B``, used by analytic range estimates and tests.
        """
        if amplitude_a < 0 or amplitude_b < 0:
            raise HardwareModelError("amplitudes must be non-negative")
        return abs(self.a2) * amplitude_a * amplitude_b

    def scaled(self, factor: float) -> "PolynomialNonlinearity":
        """Return a copy with every coefficient multiplied by ``factor``."""
        if factor == 0.0:
            raise HardwareModelError("scaling by zero erases the device")
        return PolynomialNonlinearity(
            tuple(c * factor for c in self.coefficients)
        )

    @staticmethod
    def linear(gain: float = 1.0) -> "PolynomialNonlinearity":
        """A perfectly linear transfer with the given gain."""
        return PolynomialNonlinearity((gain,))
