"""Hardware models: microphones, speakers, amplifiers, ADCs.

The reproduced attack exists because real transducers are not linear.
This package models the relevant imperfections explicitly:

``nonlinearity``
    Memoryless polynomial transfer functions — the second-order term is
    what demodulates AM ultrasound into audible baseband.
``adc``
    Sampling, quantisation and clipping.
``amplifier``
    Gain with saturation.
``microphone``
    The full receive chain of a voice-assistant microphone: acoustic
    front-end (cover/port response), nonlinear transducer + amplifier,
    anti-alias filter, ADC, self-noise.
``speaker``
    Ultrasonic transmitters, including *their* nonlinearity — the
    source of the audible leakage that limits single-speaker attacks.
``devices``
    Calibrated presets (phone microphone, plastic-covered smart-speaker
    microphone, piezo ultrasonic element, wideband horn tweeter).
"""

from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.hardware.adc import AnalogToDigitalConverter
from repro.hardware.amplifier import Amplifier
from repro.hardware.microphone import Microphone, MicrophoneConfig
from repro.hardware.speaker import UltrasonicSpeaker, SpeakerConfig
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
    horn_tweeter,
    ideal_linear_microphone,
    ultrasonic_piezo_element,
)

__all__ = [
    "PolynomialNonlinearity",
    "AnalogToDigitalConverter",
    "Amplifier",
    "Microphone",
    "MicrophoneConfig",
    "UltrasonicSpeaker",
    "SpeakerConfig",
    "android_phone_microphone",
    "amazon_echo_microphone",
    "ideal_linear_microphone",
    "ultrasonic_piezo_element",
    "horn_tweeter",
]
