"""Ultrasonic transmitter model.

The speaker is the attacker's weapon *and* the attack's Achilles heel:
like the victim microphone, its driver is weakly nonlinear, so the AM
ultrasound it radiates self-demodulates *inside the speaker* and the
diaphragm emits a faint audible copy of the hidden command ("leakage").
Raising drive power to extend range raises the leakage quadratically —
eventually bystanders at the attacker's end hear the command. Breaking
this deadlock is the reproduced paper's core idea.

The model:

1. the drive waveform (digital, [-1, 1]) is scaled by the drive level,
2. the driver nonlinearity (polynomial on normalised drive) applies,
3. the mechanical frequency response shapes the result: unity in the
   passband, a finite stop-band floor elsewhere (a real diaphragm still
   radiates demodulated baseband, just attenuated),
4. the result is scaled to pascals referenced to 1 m on axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.spl import spl_to_pressure
from repro.dsp.signals import Signal, Unit
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError, SignalDomainError


@dataclass(frozen=True)
class SpeakerConfig:
    """Parameters of an ultrasonic transmitter.

    Parameters
    ----------
    passband_hz:
        ``(low, high)`` of the mechanical passband. Piezo elements
        resonate around 25-40 kHz with usable output to ~60 kHz; a
        wideband horn tweeter reaches down into the audible band.
    max_spl_at_1m:
        On-axis SPL (dB, sine RMS) at 1 m at full drive.
    max_electrical_power_w:
        Electrical input power corresponding to full drive; used to
        express drive levels in watts for the power-sweep experiments.
    nonlinearity:
        Driver polynomial on the normalised drive signal.
    out_of_band_rejection_db:
        Attenuation step right at the band edges. Finite: the audible
        leakage escapes through this floor.
    rolloff_db_per_octave:
        Additional attenuation per octave of distance below the lower
        (or above the upper) band edge. Physically this captures the
        collapse of radiation efficiency of a small resonant element
        away from resonance — the reason a piezo disc cannot
        meaningfully radiate 50 Hz no matter what its driver does, and
        hence the reason *narrow* spectral chunks (whose nonlinear
        residue lands at tens of hertz) leak so much less than wide
        ones.
    name:
        Preset label for reports.
    """

    passband_hz: tuple[float, float] = (23000.0, 60000.0)
    max_spl_at_1m: float = 105.0
    max_electrical_power_w: float = 2.0
    nonlinearity: PolynomialNonlinearity = field(
        default_factory=lambda: PolynomialNonlinearity((1.0, 0.03))
    )
    out_of_band_rejection_db: float = 15.0
    rolloff_db_per_octave: float = 9.0
    name: str = "piezo-element"

    def __post_init__(self) -> None:
        low, high = self.passband_hz
        if low <= 0 or high <= low:
            raise HardwareModelError(
                f"invalid passband {self.passband_hz}; need 0 < low < high"
            )
        if self.max_spl_at_1m <= 0 or self.max_spl_at_1m > 160:
            raise HardwareModelError(
                f"max_spl_at_1m {self.max_spl_at_1m} dB outside (0, 160]"
            )
        if self.max_electrical_power_w <= 0:
            raise HardwareModelError(
                "max_electrical_power_w must be positive, got "
                f"{self.max_electrical_power_w}"
            )
        if self.out_of_band_rejection_db < 0:
            raise HardwareModelError(
                "out_of_band_rejection_db must be non-negative, got "
                f"{self.out_of_band_rejection_db}"
            )
        if self.rolloff_db_per_octave < 0:
            raise HardwareModelError(
                "rolloff_db_per_octave must be non-negative, got "
                f"{self.rolloff_db_per_octave}"
            )


@dataclass
class UltrasonicSpeaker:
    """A single ultrasonic transmitter; call :meth:`play`."""

    config: SpeakerConfig

    @property
    def full_scale_pressure(self) -> float:
        """Peak on-axis pressure at 1 m at full drive, pascals."""
        return spl_to_pressure(self.config.max_spl_at_1m) * np.sqrt(2.0)

    def drive_level_for_power(self, electrical_power_w: float) -> float:
        """Drive level (0-1] producing the given electrical power.

        Power scales with the square of drive amplitude, so
        ``level = sqrt(P / P_max)``. Requesting more than the rated
        power raises rather than silently clipping.
        """
        if electrical_power_w <= 0:
            raise HardwareModelError(
                f"power must be positive, got {electrical_power_w}"
            )
        if electrical_power_w > self.config.max_electrical_power_w * (1 + 1e-9):
            raise HardwareModelError(
                f"requested {electrical_power_w} W exceeds the rated "
                f"{self.config.max_electrical_power_w} W"
            )
        return float(
            np.sqrt(electrical_power_w / self.config.max_electrical_power_w)
        )

    def play(self, drive: Signal, drive_level: float = 1.0) -> Signal:
        """Radiate a drive waveform; returns pressure at 1 m (pascals).

        Parameters
        ----------
        drive:
            Digital drive waveform; peak magnitude must not exceed 1
            (normalise upstream — clipping inside the speaker model
            would add uncontrolled distortion on top of the modelled
            nonlinearity).
        drive_level:
            Fraction of full drive in (0, 1].
        """
        if drive.unit != Unit.DIGITAL:
            raise SignalDomainError(
                f"play expects a digital drive waveform, got unit "
                f"{drive.unit!r}"
            )
        if not 0 < drive_level <= 1:
            raise HardwareModelError(
                f"drive_level must be in (0, 1], got {drive_level}"
            )
        if drive.peak() > 1.0 + 1e-9:
            raise HardwareModelError(
                f"drive waveform peaks at {drive.peak():.3f} > 1.0; "
                "normalise before playing"
            )
        x = drive.samples * drive_level
        shaped = self.config.nonlinearity.apply_array(x)
        shaped_signal = Signal(shaped, drive.sample_rate, Unit.DIGITAL)
        radiated = self._apply_response(shaped_signal)
        pressure = radiated.samples * self.full_scale_pressure
        return Signal(pressure, drive.sample_rate, Unit.PASCAL)

    def play_with_power(
        self, drive: Signal, electrical_power_w: float
    ) -> Signal:
        """Radiate at a drive level expressed as electrical watts."""
        return self.play(
            drive, self.drive_level_for_power(electrical_power_w)
        )

    def _apply_response(self, signal: Signal) -> Signal:
        """Passband-unity response with rolloff skirts.

        Applied as a zero-phase FFT-domain gain: unity inside the
        passband; outside, the band-edge rejection step plus
        ``rolloff_db_per_octave`` per octave of separation from the
        edge. The DC bin is silenced (a loudspeaker radiates no static
        pressure).
        """
        low, high = self.config.passband_hz
        high = min(high, signal.nyquist * 0.99)
        if high <= low:
            raise HardwareModelError(
                f"speaker passband {self.config.passband_hz} does not "
                f"fit under Nyquist {signal.nyquist} Hz; raise the "
                "simulation rate"
            )
        freqs = np.fft.rfftfreq(signal.n_samples, d=1.0 / signal.sample_rate)
        attenuation_db = np.zeros_like(freqs)
        base = self.config.out_of_band_rejection_db
        slope = self.config.rolloff_db_per_octave
        below = (freqs > 0) & (freqs < low)
        attenuation_db[below] = base + slope * np.log2(low / freqs[below])
        above = freqs > high
        attenuation_db[above] = base + slope * np.log2(freqs[above] / high)
        gains = 10.0 ** (-attenuation_db / 20.0)
        gains[freqs == 0] = 0.0
        spectrum = np.fft.rfft(signal.samples)
        shaped = np.fft.irfft(spectrum * gains, n=signal.n_samples)
        return signal.replace(samples=shaped)

    def linear_only(self) -> "UltrasonicSpeaker":
        """A copy of this speaker with the nonlinearity removed.

        Used by ablations to isolate how much of the audible leakage is
        the driver's fault versus the signal's own audible content.
        """
        config = SpeakerConfig(
            passband_hz=self.config.passband_hz,
            max_spl_at_1m=self.config.max_spl_at_1m,
            max_electrical_power_w=self.config.max_electrical_power_w,
            nonlinearity=PolynomialNonlinearity.linear(
                self.config.nonlinearity.a1
            ),
            out_of_band_rejection_db=self.config.out_of_band_rejection_db,
            rolloff_db_per_octave=self.config.rolloff_db_per_octave,
            name=self.config.name + "-linearised",
        )
        return UltrasonicSpeaker(config)
