"""Calibrated device presets.

The numeric values are engineering reconstructions: chosen so each
device reproduces the *behaviour* reported in the attack literature
(demodulation strength, noise floor, range ordering phone > covered
smart speaker) rather than copied from any datasheet. Every value is a
plain parameter, so experiments can sweep them.
"""

from __future__ import annotations

from repro.hardware.microphone import Microphone, MicrophoneConfig
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.hardware.speaker import SpeakerConfig, UltrasonicSpeaker


def android_phone_microphone() -> Microphone:
    """A smartphone's exposed bottom-port MEMS microphone.

    48 kHz capture, no cover over the port (so ultrasound reaches the
    diaphragm almost unattenuated), and the comparatively strong
    quadratic coefficient MEMS capsules exhibit when driven by
    high-level ultrasound.
    """
    return Microphone(
        MicrophoneConfig(
            device_rate=48000.0,
            full_scale_spl=120.0,
            nonlinearity=PolynomialNonlinearity((1.0, 0.08, 0.008)),
            noise_floor_spl=30.0,
            front_end_attenuation_db=0.0,
            name="android-phone",
        )
    )


def amazon_echo_microphone() -> Microphone:
    """A smart speaker's far-field microphone behind a plastic grille.

    16 kHz far-field capture and ~8 dB of ultrasonic attenuation from
    the enclosure — the physical reason the attack literature reports
    consistently shorter ranges against the Echo than against phones.
    """
    return Microphone(
        MicrophoneConfig(
            device_rate=16000.0,
            full_scale_spl=120.0,
            nonlinearity=PolynomialNonlinearity((1.0, 0.08, 0.008)),
            noise_floor_spl=30.0,
            front_end_attenuation_db=5.0,
            name="amazon-echo",
        )
    )


def ideal_linear_microphone(device_rate: float = 48000.0) -> Microphone:
    """A hypothetical perfectly linear microphone.

    Control condition: against this device the inaudible attack
    *cannot* work, because no term demodulates the ultrasound. Used by
    tests and the defense's sanity experiments.
    """
    return Microphone(
        MicrophoneConfig(
            device_rate=device_rate,
            full_scale_spl=120.0,
            nonlinearity=PolynomialNonlinearity.linear(1.0),
            noise_floor_spl=30.0,
            front_end_attenuation_db=0.0,
            name="ideal-linear",
        )
    )


def ultrasonic_piezo_element() -> UltrasonicSpeaker:
    """One element of the long-range attack's transducer array.

    Small piezo transmitters: narrow mechanical passband around their
    resonance, modest power (2 W), modest maximum SPL, and a weak but
    non-zero driver nonlinearity. Dozens of these make up the array.
    """
    return UltrasonicSpeaker(
        SpeakerConfig(
            passband_hz=(23000.0, 60000.0),
            max_spl_at_1m=110.0,
            max_electrical_power_w=2.0,
            nonlinearity=PolynomialNonlinearity((1.0, 0.03)),
            out_of_band_rejection_db=15.0,
            rolloff_db_per_octave=9.0,
            name="piezo-element",
        )
    )


def horn_tweeter() -> UltrasonicSpeaker:
    """A wideband horn tweeter driven by a hi-fi amplifier.

    The single-speaker baseline rig: much more power than a piezo
    element and a response that extends *into* the audible band, which
    is precisely why its nonlinear leakage is so audible — its
    out-of-band rejection for demodulated baseband is poor.
    """
    return UltrasonicSpeaker(
        SpeakerConfig(
            passband_hz=(4000.0, 50000.0),
            max_spl_at_1m=116.0,
            max_electrical_power_w=25.0,
            nonlinearity=PolynomialNonlinearity((1.0, 0.04)),
            out_of_band_rejection_db=10.0,
            rolloff_db_per_octave=9.0,
            name="horn-tweeter",
        )
    )
