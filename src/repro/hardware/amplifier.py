"""Amplifier model: gain, optional nonlinearity, hard supply clipping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.signals import Signal
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class Amplifier:
    """Voltage amplifier with saturation.

    Parameters
    ----------
    gain:
        Linear voltage gain; must be positive.
    saturation:
        Output level at which the supply rails clip the waveform.
    nonlinearity:
        Optional weak polynomial distortion applied (after gain,
        normalised to the saturation level) before clipping. Defaults
        to perfectly linear: microphone-chain distortion is usually
        attributed to the transducer + pre-amp jointly, and the
        :class:`~repro.hardware.microphone.Microphone` model carries it
        there.
    """

    gain: float = 1.0
    saturation: float = np.inf
    nonlinearity: PolynomialNonlinearity = field(
        default_factory=PolynomialNonlinearity.linear
    )

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise HardwareModelError(
                f"gain must be positive, got {self.gain}"
            )
        if self.saturation <= 0:
            raise HardwareModelError(
                f"saturation must be positive, got {self.saturation}"
            )

    def amplify(self, signal: Signal) -> Signal:
        """Apply gain, distortion and clipping to a waveform."""
        amplified = signal.samples * self.gain
        if not self.nonlinearity.is_linear():
            if np.isinf(self.saturation):
                raise HardwareModelError(
                    "a nonlinear amplifier needs a finite saturation "
                    "level to normalise against"
                )
            normalized = amplified / self.saturation
            amplified = (
                self.nonlinearity.apply_array(normalized) * self.saturation
            )
        if np.isfinite(self.saturation):
            amplified = np.clip(amplified, -self.saturation, self.saturation)
        return signal.replace(samples=amplified)

    def headroom_db(self, signal: Signal) -> float:
        """dB between the post-gain peak and the saturation level.

        Positive numbers mean the amplifier is operating cleanly.
        """
        peak = signal.peak() * self.gain
        if peak == 0.0:
            return np.inf
        if np.isinf(self.saturation):
            return np.inf
        return float(20.0 * np.log10(self.saturation / peak))
