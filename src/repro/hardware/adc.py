"""Analog-to-digital conversion: resampling, clipping, quantisation.

The ADC is the last stage of the microphone chain. Its anti-alias
filter and sample rate define what the voice assistant can "see": a
48 kHz phone ADC keeps 0-24 kHz, a 16 kHz far-field smart-speaker ADC
keeps 0-8 kHz. Everything ultrasonic is gone after this stage — which
is exactly why the attack must arrange for its payload to already be
at baseband (via the microphone nonlinearity) before it reaches here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import low_pass, low_pass_array
from repro.dsp.resample import resample, resample_array
from repro.dsp.signals import Signal, Unit
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class AnalogToDigitalConverter:
    """Sampling + quantisation model.

    Parameters
    ----------
    sample_rate:
        Output (device) sample rate, Hz.
    bit_depth:
        Quantiser resolution; 16 bits is universal for voice capture.
    full_scale:
        Input amplitude mapped to digital full scale (1.0). Inputs
        beyond it clip — the model is a hard limiter, as real ADCs are.
    antialias_cutoff_fraction:
        Anti-alias cut-off as a fraction of the output Nyquist.
    """

    sample_rate: float
    bit_depth: int = 16
    full_scale: float = 1.0
    antialias_cutoff_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise HardwareModelError(
                f"sample_rate must be positive, got {self.sample_rate}"
            )
        if self.bit_depth < 2 or self.bit_depth > 32:
            raise HardwareModelError(
                f"bit_depth must be in [2, 32], got {self.bit_depth}"
            )
        if self.full_scale <= 0:
            raise HardwareModelError(
                f"full_scale must be positive, got {self.full_scale}"
            )
        if not 0.1 <= self.antialias_cutoff_fraction <= 1.0:
            raise HardwareModelError(
                "antialias_cutoff_fraction must be in [0.1, 1.0], got "
                f"{self.antialias_cutoff_fraction}"
            )

    @property
    def quantization_step(self) -> float:
        """Step size of the (mid-tread) quantiser in digital units."""
        return 2.0 / (2**self.bit_depth - 1)

    def convert(self, analog: Signal) -> Signal:
        """Digitise an analog waveform.

        Steps: anti-alias low-pass at the *input* rate, polyphase
        resample to the device rate, normalise by full scale, clip to
        [-1, 1], quantise. Output unit is ``Unit.DIGITAL``.
        """
        if analog.sample_rate < self.sample_rate:
            raise HardwareModelError(
                f"ADC input rate {analog.sample_rate} Hz below the "
                f"device rate {self.sample_rate} Hz; the microphone "
                "chain must run at or above the device rate"
            )
        cutoff = self.antialias_cutoff_fraction * self.sample_rate / 2.0
        if cutoff < analog.nyquist * 0.999:
            filtered = low_pass(analog, cutoff, order=8)
        else:
            filtered = analog
        sampled = resample(filtered, self.sample_rate)
        return Signal(
            self._digitize(sampled.samples), self.sample_rate, Unit.DIGITAL
        )

    def convert_batch(
        self, analog: np.ndarray, input_rate: float
    ) -> np.ndarray:
        """Digitise a stacked ``(n_signals, n_samples)`` batch.

        Row-for-row bitwise identical to :meth:`convert`: the
        anti-alias filter and polyphase resampler run along the last
        axis and the normalise/clip/quantise stages are elementwise.
        Returns the digital sample matrix at :attr:`sample_rate`.
        """
        analog = np.asarray(analog, dtype=np.float64)
        if analog.ndim != 2:
            raise HardwareModelError(
                "convert_batch expects a 2-D (n_signals, n_samples) "
                f"batch, got shape {analog.shape}"
            )
        if input_rate < self.sample_rate:
            raise HardwareModelError(
                f"ADC input rate {input_rate} Hz below the "
                f"device rate {self.sample_rate} Hz; the microphone "
                "chain must run at or above the device rate"
            )
        cutoff = self.antialias_cutoff_fraction * self.sample_rate / 2.0
        if cutoff < (input_rate / 2.0) * 0.999:
            filtered = low_pass_array(analog, input_rate, cutoff, order=8)
        else:
            filtered = analog
        sampled = resample_array(filtered, input_rate, self.sample_rate)
        return self._digitize(sampled)

    def _digitize(self, samples: np.ndarray) -> np.ndarray:
        """Normalise, clip and quantise raw samples (any shape)."""
        normalized = samples / self.full_scale
        clipped = np.clip(normalized, -1.0, 1.0)
        step = self.quantization_step
        quantized = np.round(clipped / step) * step
        # The mid-tread rounding can overshoot full scale by half a
        # step; a real converter saturates at its top code.
        return np.clip(quantized, -1.0, 1.0)
