"""Vectorized batch trial kernel.

The scalar pipeline (:class:`repro.sim.runner.ScenarioRunner`) walks
every trial through propagate -> nonlinearity -> filter -> ADC ->
recognise one waveform at a time, recomputing the *deterministic*
acoustic transmission — by far the most expensive stage for a
multi-speaker rig — once per trial. This module restructures the hot
path around two observations:

1. **Transmission is trial-invariant.** For a fixed emission and
   geometry every trial hears the same arrived waveform — in a free
   field *and* in a room (the direct wave plus all six first-order
   reflections are deterministic), and a deterministic interference
   bed (a TV across the room) is just a second emission. The kernel
   computes each transmission once per trial group and broadcasts it.
2. **The per-trial stages are axis-parallel.** A walking attacker's
   geometry perturbation is a per-trial scalar gain on the shared
   transmission; noise addition, the polynomial nonlinearity,
   zero-phase filtering, resampling and quantisation all operate
   along time — so a whole trial batch runs as stacked
   ``(n_trials, n_samples)`` operations
   (:class:`~repro.dsp.signals.SignalBatch`).

Equivalence discipline: per-trial random draws come from the *same*
SeedSequence-spawned generators, in the same order (motion gain, then
ambient noise, then microphone self-noise), as the scalar path, and
every batched stage is bitwise identical per row to its scalar
counterpart — so :func:`run_group_batch` reproduces
:meth:`ScenarioRunner.run_trial` outcomes exactly, not merely to
tolerance. The golden-trace suite (``tests/golden/``) and the
scenario-differential tests pin this down for every registered
environment.

Groups the kernel cannot prove equivalent — subclassed microphone,
nonlinearity or scenario models whose overridden behaviour the batch
chain would silently bypass — are reported by :func:`supports_batch`
with a structured refusal reason, and the engine falls back to the
scalar path automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.dsp.signals import Signal, SignalBatch, Unit
from repro.errors import ExperimentError
from repro.hardware.microphone import Microphone
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.sim.runner import ScenarioRunner, TrialOutcome
from repro.sim.scenario import Scenario

#: Trials stacked per kernel pass. Eight acoustic-rate rows keep every
#: intermediate in the low tens of MB — large enough to amortise the
#: per-call overhead of the axis-aware DSP, small enough that the
#: filter chain's temporaries don't evict each other from cache.
_CHUNK_TRIALS = 8


@dataclass(frozen=True)
class BatchSupport:
    """Whether a group may take the batched path, and if not, why.

    Truthiness matches ``supported`` so existing
    ``if supports_batch(group):`` call sites keep working; the
    ``reason`` carries the structured explanation a silent ``False``
    used to swallow.
    """

    supported: bool
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.supported

    @classmethod
    def ok(cls) -> "BatchSupport":
        return cls(supported=True)

    @classmethod
    def refused(cls, reason: str) -> "BatchSupport":
        return cls(supported=False, reason=reason)


def supports_batch(group) -> BatchSupport:
    """Whether the batched kernel is provably equivalent for a group.

    The kernel re-implements the microphone chain with axis-aware
    operations, so it must refuse any group whose hardware models have
    been subclassed: an overridden ``record`` or transfer polynomial
    would be silently bypassed. Exact-type checks keep the decision
    cheap and conservative — anything unusual takes the scalar path.

    Room-model groups *are* accepted: both pipelines share the same
    :meth:`~repro.acoustics.channel.AcousticChannel.transmit` (which
    stacks each source's reflection fan through the per-path FFT
    kernel), and the reverberant transmission is exactly as
    trial-invariant as a free-field one. Likewise scenarios with
    deterministic interference or a walking attacker: both render as
    batched axis operations with the same per-trial draws as the
    scalar loop.

    Returns a :class:`BatchSupport`; a falsy result carries the
    refusal reason instead of silently returning ``False``.
    """
    microphone = group.device.microphone
    if type(microphone) is not Microphone:
        return BatchSupport.refused(
            f"microphone is a {type(microphone).__qualname__}, not the "
            "stock Microphone; its overridden record() would be "
            "bypassed by the batched chain"
        )
    if type(microphone.config.nonlinearity) is not PolynomialNonlinearity:
        return BatchSupport.refused(
            "nonlinearity is a "
            f"{type(microphone.config.nonlinearity).__qualname__}, not "
            "the stock PolynomialNonlinearity; its overridden transfer "
            "would be bypassed by the batched chain"
        )
    if type(group.scenario) is not Scenario:
        return BatchSupport.refused(
            f"scenario is a {type(group.scenario).__qualname__}, not "
            "the stock Scenario; its overridden semantics would be "
            "bypassed by the batched chain"
        )
    return BatchSupport.ok()


def _clean_rows(
    clean_attack: Signal,
    clean_interference: Signal | None,
    gains: Sequence[float | None],
) -> SignalBatch:
    """Stack per-trial clean waveforms from the shared transmissions.

    Replicates the scalar path's :class:`~repro.dsp.signals.Signal`
    arithmetic exactly: a ``None`` gain leaves the attack waveform
    untouched (static scenarios never multiply), a float gain scales
    it, and interference is added via the same zero-pad-to-max fold
    ``Signal.__add__`` performs — so row ``i`` is bitwise identical to
    the scalar trial's clean waveform.
    """
    n_attack = clean_attack.n_samples
    n_total = n_attack
    interference_padded = None
    if clean_interference is not None:
        n_total = max(n_attack, clean_interference.n_samples)
        interference_padded = np.zeros(n_total)
        interference_padded[
            : clean_interference.n_samples
        ] = clean_interference.samples
    rows = np.empty((len(gains), n_total))
    for index, gain in enumerate(gains):
        attack = (
            clean_attack.samples
            if gain is None
            else clean_attack.samples * gain
        )
        if interference_padded is None:
            rows[index] = attack
        else:
            padded = np.zeros(n_total)
            padded[:n_attack] = attack
            rows[index] = np.add(padded, interference_padded)
    return SignalBatch(rows, clean_attack.sample_rate, Unit.PASCAL)


def run_group_batch(
    group,
    rngs: Sequence[np.random.Generator],
    keep_recordings: bool = True,
) -> list[TrialOutcome]:
    """Execute one trial group's trials as a stacked batch.

    Parameters
    ----------
    group:
        A :class:`repro.sim.engine.TrialGroup` (scenario, device,
        emission, n_trials).
    rngs:
        One spawned generator per trial, in trial order — the same
        generators the scalar path would consume. Each is drawn from
        in the scalar order (motion gain if the scenario moves, then
        ambient noise, then microphone self-noise), so outcomes are
        bitwise identical to the scalar pipeline.
    keep_recordings:
        When ``False`` each outcome's ``recording`` is ``None``
        (matching the engine's IPC-saving convention).

    Returns
    -------
    list[TrialOutcome]
        One outcome per generator, in order.
    """
    if not rngs:
        raise ExperimentError("run_group_batch needs >= 1 trial generator")
    support = supports_batch(group)
    if not support:
        raise ExperimentError(
            "run_group_batch cannot prove equivalence for this group: "
            f"{support.reason}; run it through ExperimentEngine, which "
            "falls back to the scalar path automatically"
        )
    sources = group.resolve_sources()
    if not sources:
        raise ExperimentError("run_trial needs at least one source")
    scenario, device = group.scenario, group.device
    # The runner's constructor enforces the command-enrolled invariant;
    # reuse it so batch and scalar reject identically.
    ScenarioRunner(scenario, device)
    channel = scenario.channel()
    rngs = list(rngs)
    # Stage 1: the deterministic transmissions, once for the whole
    # group — the attack emission and, if the scene has competing
    # audio, the interference bed.
    clean_attack = channel.transmit(sources, scenario.victim_position)
    interference = scenario.interference_sources(
        clean_attack.sample_rate
    )
    clean_interference = (
        channel.transmit(interference, scenario.victim_position)
        if interference
        else None
    )
    outcomes: list[TrialOutcome] = []
    # Stages 2+3 stream in bounded chunks: a 50-trial stack of
    # acoustic-rate waveforms is hundreds of MB and several such
    # temporaries live at once inside the filter chain, so capping the
    # stack height keeps the working set cache-friendly. Chunking is
    # invisible to the results — rows are independent and generators
    # are consumed in trial order either way.
    for start in range(0, len(rngs), _CHUNK_TRIALS):
        chunk = rngs[start : start + _CHUNK_TRIALS]
        # Per-trial motion gains consume each generator's first draw,
        # exactly where the scalar trial draws them.
        gains = [scenario.trial_gain(rng) for rng in chunk]
        if clean_interference is None and all(
            gain is None for gain in gains
        ):
            # Static, interference-free groups (the common case):
            # every trial hears the same waveform, so hand
            # ambient_batch the shared Signal instead of stacking
            # identical copies of it.
            clean: Signal | SignalBatch = clean_attack
        else:
            clean = _clean_rows(clean_attack, clean_interference, gains)
        arrived = channel.ambient_batch(clean, chunk)
        recordings = device.microphone.record_batch(arrived, chunk)
        # Stage 4: recognition stays per-trial (DTW is sequential),
        # but on compact device-rate rows rather than acoustic-rate
        # waveforms.
        for index in range(recordings.n_signals):
            recording = recordings.row(index)
            result = device.recognizer.recognize(recording)
            outcomes.append(
                TrialOutcome(
                    success=result.accepted
                    and result.command == scenario.command,
                    recognized_command=result.command,
                    accepted=result.accepted,
                    distance=result.distance,
                    recording=recording,
                )
            )
    if not keep_recordings:
        outcomes = [
            replace(outcome, recording=None) for outcome in outcomes
        ]
    return outcomes
