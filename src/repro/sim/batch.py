"""Vectorized batch trial execution: the batched driver.

The heavy lifting lives in :mod:`repro.sim.pipeline`: the declarative
:class:`~repro.sim.pipeline.TrialPipeline` carries both a scalar and a
batch kernel per stage, and one executor walks the same stage list in
either mode — so batch-vs-scalar bitwise identity holds by
construction rather than by a comment-enforced draw-order contract.
This module keeps the kernel-facing entry points:

* :func:`supports_batch` — whether a trial group may take the batched
  path, as the fold of its pipeline's per-stage
  :class:`~repro.sim.pipeline.BatchSupport` verdicts (a falsy result
  carries the structured refusal reason);
* :func:`run_group_batch` — execute one group's trials through the
  pipeline's batched executor (one trial-invariant transmission per
  group, stacked ``(n_trials, n_samples)`` stages, bounded chunks),
  refusing loudly when equivalence cannot be proven.

Per-trial random draws come from the *same* SeedSequence-spawned
generators, in the same order (motion gain, then ambient noise, then
microphone self-noise), as the scalar path — per-stage, per-generator,
because both modes run the same stages. The golden-trace suite
(``tests/golden/``) and the scenario-differential tests pin this down
for every registered environment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.sim.pipeline import (
    CHUNK_TRIALS,
    BatchSupport,
    TrialOutcome,
    build_pipeline,
)

__all__ = [
    "BatchSupport",
    "run_group_batch",
    "supports_batch",
]

#: Back-compat alias; the chunk bound now lives with the executor.
_CHUNK_TRIALS = CHUNK_TRIALS


def supports_batch(group) -> BatchSupport:
    """Whether the batched executor is provably equivalent for a group.

    The fold of the group's pipeline stages: every stage must declare
    a batch kernel and pass its construction-time check. Subclassed
    microphones, nonlinearities and scenarios refuse — their
    overridden behaviour is exactly what the stacked kernels would
    silently bypass — while room, interference, walking-attacker and
    weather scenarios are all accepted (their stages batch natively).

    Returns a :class:`BatchSupport`; a falsy result carries the
    refusal reason instead of silently returning ``False``.

    The verdict is about *batchability only*, not runnability: it
    folds over the recording stages (the recognize stage always
    batches), so a device that has not enrolled the scenario's command
    still gets a verdict here and is rejected later, by pipeline
    construction, exactly as the scalar path rejects it.
    """
    pipeline = build_pipeline(
        group.scenario, group.device.microphone, recognize=False
    )
    return pipeline.batch_support()


def run_group_batch(
    group,
    rngs: Sequence[np.random.Generator],
    keep_recordings: bool = True,
    precision: str | None = None,
) -> list[TrialOutcome]:
    """Execute one trial group's trials as stacked batches.

    Parameters
    ----------
    group:
        A :class:`repro.sim.engine.TrialGroup` (scenario, device,
        emission, n_trials).
    rngs:
        One spawned generator per trial, in trial order — the same
        generators the scalar path would consume. Outcomes are
        bitwise identical to the scalar pipeline because both modes
        execute the same stage list.
    keep_recordings:
        When ``False`` each outcome's ``recording`` is ``None``
        (matching the engine's IPC-saving convention).
    precision:
        ``"float64"`` (the golden default), ``"float32"`` (the opt-in
        fast path) or ``None`` to honour ``REPRO_FAST_MATH`` — passed
        through to :func:`~repro.sim.pipeline.build_pipeline`.

    Returns
    -------
    list[TrialOutcome]
        One outcome per generator, in order.
    """
    rngs = list(rngs)
    if not rngs:
        raise ExperimentError("run_group_batch needs >= 1 trial generator")
    pipeline = build_pipeline(
        group.scenario, group.device, precision=precision
    )
    support = pipeline.batch_support()
    if not support:
        raise ExperimentError(
            "run_group_batch cannot prove equivalence for this group: "
            f"{support.reason}; run it through ExperimentEngine, which "
            "falls back to the scalar path automatically"
        )
    ctx = pipeline.context(group.resolve_sources())
    outcomes = pipeline.run_trials(ctx, rngs, batch=True)
    if not keep_recordings:
        outcomes = [
            replace(outcome, recording=None) for outcome in outcomes
        ]
    return outcomes
