"""Vectorized batch trial kernel.

The scalar pipeline (:class:`repro.sim.runner.ScenarioRunner`) walks
every trial through propagate -> nonlinearity -> filter -> ADC ->
recognise one waveform at a time, recomputing the *deterministic*
acoustic transmission — by far the most expensive stage for a
multi-speaker rig — once per trial. This module restructures the hot
path around two observations:

1. **Transmission is trial-invariant.** For a fixed emission and
   geometry every trial hears the same arrived waveform; only the
   ambient-noise and self-noise draws differ. The kernel computes the
   transmission once per trial group and broadcasts it.
2. **The per-trial stages are axis-parallel.** Noise addition, the
   polynomial nonlinearity, zero-phase filtering, resampling and
   quantisation all operate along time, so a whole trial batch runs as
   stacked ``(n_trials, n_samples)`` operations
   (:class:`~repro.dsp.signals.SignalBatch`).

Equivalence discipline: per-trial random draws come from the *same*
SeedSequence-spawned generators, in the same order, as the scalar
path, and every batched stage is bitwise identical per row to its
scalar counterpart — so :func:`run_group_batch` reproduces
:meth:`ScenarioRunner.run_trial` outcomes exactly, not merely to
tolerance. The golden-trace suite (``tests/golden/``) and the
batch-equivalence tests pin this down.

Scenarios the kernel cannot prove equivalent — subclassed microphone
or nonlinearity models whose overridden behaviour the batch chain
would silently bypass — are reported by :func:`supports_batch`, and
the engine falls back to the scalar path automatically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.acoustics.channel import AcousticChannel
from repro.errors import ExperimentError
from repro.hardware.microphone import Microphone
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.sim.runner import ScenarioRunner, TrialOutcome
from repro.sim.scenario import Scenario

#: Trials stacked per kernel pass. Eight acoustic-rate rows keep every
#: intermediate in the low tens of MB — large enough to amortise the
#: per-call overhead of the axis-aware DSP, small enough that the
#: filter chain's temporaries don't evict each other from cache.
_CHUNK_TRIALS = 8


def supports_batch(group) -> bool:
    """Whether the batched kernel is provably equivalent for a group.

    The kernel re-implements the microphone chain with axis-aware
    operations, so it must refuse any group whose hardware models have
    been subclassed: an overridden ``record`` or transfer polynomial
    would be silently bypassed. Exact-type checks keep the decision
    cheap and conservative — anything unusual takes the scalar path.
    """
    microphone = group.device.microphone
    return (
        type(microphone) is Microphone
        and type(microphone.config.nonlinearity) is PolynomialNonlinearity
        and type(group.scenario) is Scenario
    )


def run_group_batch(
    group,
    rngs: Sequence[np.random.Generator],
    keep_recordings: bool = True,
) -> list[TrialOutcome]:
    """Execute one trial group's trials as a stacked batch.

    Parameters
    ----------
    group:
        A :class:`repro.sim.engine.TrialGroup` (scenario, device,
        emission, n_trials).
    rngs:
        One spawned generator per trial, in trial order — the same
        generators the scalar path would consume. Each is drawn from
        exactly twice (ambient noise, then microphone self-noise), so
        outcomes are bitwise identical to the scalar pipeline.
    keep_recordings:
        When ``False`` each outcome's ``recording`` is ``None``
        (matching the engine's IPC-saving convention).

    Returns
    -------
    list[TrialOutcome]
        One outcome per generator, in order.
    """
    if not rngs:
        raise ExperimentError("run_group_batch needs >= 1 trial generator")
    if not supports_batch(group):
        raise ExperimentError(
            "run_group_batch cannot prove equivalence for this group "
            f"(device {group.device.name!r} uses a subclassed hardware "
            "model); run it through ExperimentEngine, which falls back "
            "to the scalar path automatically"
        )
    sources = group.resolve_sources()
    if not sources:
        raise ExperimentError("run_trial needs at least one source")
    scenario, device = group.scenario, group.device
    # The runner's constructor enforces the command-enrolled invariant;
    # reuse it so batch and scalar reject identically.
    ScenarioRunner(scenario, device)
    channel = AcousticChannel(
        room=scenario.room,
        ambient_noise_spl=scenario.ambient_noise_spl,
    )
    rngs = list(rngs)
    # Stage 1: one deterministic transmission for the whole group.
    clean = channel.transmit(sources, scenario.victim_position)
    outcomes: list[TrialOutcome] = []
    # Stages 2+3 stream in bounded chunks: a 50-trial stack of
    # acoustic-rate waveforms is hundreds of MB and several such
    # temporaries live at once inside the filter chain, so capping the
    # stack height keeps the working set cache-friendly. Chunking is
    # invisible to the results — rows are independent and generators
    # are consumed in trial order either way.
    for start in range(0, len(rngs), _CHUNK_TRIALS):
        chunk = rngs[start : start + _CHUNK_TRIALS]
        arrived = channel.ambient_batch(clean, chunk)
        recordings = device.microphone.record_batch(arrived, chunk)
        # Stage 4: recognition stays per-trial (DTW is sequential),
        # but on compact device-rate rows rather than acoustic-rate
        # waveforms.
        for index in range(recordings.n_signals):
            recording = recordings.row(index)
            result = device.recognizer.recognize(recording)
            outcomes.append(
                TrialOutcome(
                    success=result.accepted
                    and result.command == scenario.command,
                    recognized_command=result.command,
                    accepted=result.accepted,
                    distance=result.distance,
                    recording=recording,
                )
            )
    if not keep_recordings:
        outcomes = [
            replace(outcome, recording=None) for outcome in outcomes
        ]
    return outcomes
