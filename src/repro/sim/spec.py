"""Declarative scenario specifications and the named registry.

A :class:`ScenarioSpec` is pure, picklable data describing an
*environment*: the room (or lack of one), the attacker's resting
position and trajectory, competing audio sources, the default victim
device and the weather. Experiments stay parameterised by *what* they
measure (command, device, emission, distances); the spec supplies
*where* it happens — so one experiment definition runs unchanged in a
free field, a reverberant living room or outdoors in wind, and the
suite becomes an experiments × environments grid.

The registry maps short names (``free_field``, ``living_room``, ...)
to specs; ``python -m repro.experiments <EXP> --scenario NAME`` and
the scenario-differential test suite both resolve through it. Specs
build concrete :class:`~repro.sim.scenario.Scenario` objects, which
both execution pipelines (scalar runner and vectorized batch kernel)
consume bitwise-identically.

All registered specs keep the attack rig at the suite-wide
:data:`RIG_POSITION` — emission builders place array elements around
that point, so rooms are dimensioned to contain it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acoustics.atmosphere import AtmosphericConditions
from repro.acoustics.geometry import Position, Room
from repro.errors import ExperimentError
from repro.sim.scenario import (
    AttackerMotion,
    InterferenceSource,
    Scenario,
    TrajectoryLeg,
    VictimDevice,
)

#: Attack-rig centroid shared by every experiment and every scenario.
#: Emission builders (``repro.experiments._emissions``) mount their
#: speaker arrays around this point, so scenario rooms must contain it.
RIG_POSITION = Position(0.0, 2.0, 1.0)

#: Victims are kept this far from the far wall so adaptive range
#: searches never push a position onto (or through) the room boundary.
WALL_MARGIN_M = 0.25


@dataclass(frozen=True)
class RoomSpec:
    """Pure-data description of a rectangular room."""

    length_m: float
    width_m: float
    height_m: float
    wall_absorption: float = 0.5

    def build(self) -> Room:
        return Room(
            length_m=self.length_m,
            width_m=self.width_m,
            height_m=self.height_m,
            wall_absorption=self.wall_absorption,
        )


@dataclass(frozen=True)
class WeatherSpec:
    """Pure-data atmospheric conditions (ISO 9613-1 inputs)."""

    temperature_c: float = 20.0
    relative_humidity: float = 50.0
    pressure_kpa: float = 101.325

    def build(self) -> AtmosphericConditions:
        return AtmosphericConditions(
            temperature_c=self.temperature_c,
            relative_humidity=self.relative_humidity,
            pressure_kpa=self.pressure_kpa,
        )


@dataclass(frozen=True)
class TrajectorySpec:
    """Pure-data attacker trajectory (see
    :class:`~repro.sim.scenario.AttackerMotion`).

    ``legs`` describes a multi-leg walk as ``(offset_m, span_m)``
    pairs — pure data, so specs stay hashable and picklable; empty
    keeps the original single-interval walk.
    """

    span_m: float
    min_distance_m: float = 0.25
    legs: tuple[tuple[float, float], ...] = ()

    def build(self) -> AttackerMotion:
        return AttackerMotion(
            span_m=self.span_m,
            min_distance_m=self.min_distance_m,
            legs=tuple(
                TrajectoryLeg(offset_m=offset, span_m=span)
                for offset, span in self.legs
            ),
        )


@dataclass(frozen=True)
class InterferenceSpec:
    """Pure-data interfering audio source."""

    kind: str
    x: float
    y: float
    z: float
    level_spl: float = 60.0
    seed: int = 0
    duration_s: float = 2.0

    def build(self) -> InterferenceSource:
        return InterferenceSource(
            kind=self.kind,
            position=Position(self.x, self.y, self.z),
            level_spl=self.level_spl,
            seed=self.seed,
            duration_s=self.duration_s,
        )


#: Builders for the victim-device presets a spec may name.
_DEVICE_BUILDERS = {
    "phone": VictimDevice.phone,
    "echo": VictimDevice.echo,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative environment for experiments to run in.

    Attributes
    ----------
    name:
        Registry key (``--scenario NAME``).
    description:
        One line for tables and docs.
    room:
        Optional room; ``None`` means free field.
    distance_m:
        Default attacker-to-victim distance when the caller does not
        sweep distance itself.
    ambient_noise_spl:
        Noise floor at the victim (wind and HVAC live here).
    trajectory:
        Optional walking-attacker trajectory.
    interference:
        Competing audio sources present in the scene.
    weather:
        Optional atmospheric conditions; ``None`` is the indoor
        default (20 °C, 50 % RH, 1 atm).
    device:
        Default victim-device preset name (``"phone"`` or ``"echo"``).
    """

    name: str
    description: str
    room: RoomSpec | None = None
    distance_m: float = 2.0
    ambient_noise_spl: float = 40.0
    trajectory: TrajectorySpec | None = None
    interference: tuple[InterferenceSpec, ...] = ()
    weather: WeatherSpec | None = None
    device: str = "phone"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ExperimentError(
                f"scenario name must be a non-empty identifier, got "
                f"{self.name!r}"
            )
        if self.distance_m <= 0:
            raise ExperimentError(
                f"default distance must be positive, got {self.distance_m}"
            )
        if self.device not in _DEVICE_BUILDERS:
            raise ExperimentError(
                f"unknown device preset {self.device!r}; available: "
                f"{sorted(_DEVICE_BUILDERS)}"
            )
        # Building the default scenario exercises every geometric
        # validation (rig inside room, interference inside room, ...)
        # so a bad spec fails at registration, not mid-experiment.
        self.build("ok_google")

    # -- concrete builders --------------------------------------------

    def attacker_position(self) -> Position:
        """The rig centroid (suite-wide, see :data:`RIG_POSITION`)."""
        return RIG_POSITION

    def build(
        self, command: str, distance_m: float | None = None
    ) -> Scenario:
        """A concrete :class:`Scenario` at ``distance_m`` along +x."""
        distance = self.distance_m if distance_m is None else distance_m
        attacker = self.attacker_position()
        return Scenario(
            command=command,
            attacker_position=attacker,
            victim_position=attacker.translated(distance, 0.0, 0.0),
            room=self.room.build() if self.room else None,
            ambient_noise_spl=self.ambient_noise_spl,
            interference=tuple(
                spec.build() for spec in self.interference
            ),
            motion=self.trajectory.build() if self.trajectory else None,
            conditions=self.weather.build() if self.weather else None,
        )

    def build_device(self, seed: int = 1234) -> VictimDevice:
        """The spec's default victim device."""
        return _DEVICE_BUILDERS[self.device](seed=seed)

    # -- geometry helpers ---------------------------------------------

    def max_distance_m(self, ceiling: float = 16.0) -> float:
        """Largest victim distance this environment can host.

        Free-field scenarios return ``ceiling`` unchanged; rooms cap
        it at the +x interior span from the rig, minus
        :data:`WALL_MARGIN_M`. Range searches pass their
        ``max_distance_m`` through here so bisection never probes a
        position outside the room.
        """
        if ceiling <= 0:
            raise ExperimentError(
                f"ceiling must be positive, got {ceiling}"
            )
        if self.room is None:
            return ceiling
        span = (
            self.room.length_m
            - self.attacker_position().x
            - WALL_MARGIN_M
        )
        if span <= 0:
            raise ExperimentError(
                f"scenario {self.name!r} leaves no room for a victim "
                "along +x"
            )
        return min(ceiling, span)

    def clamp_distances(
        self, distances_m: tuple[float, ...] | list[float]
    ) -> tuple[float, ...]:
        """Drop sweep distances the environment cannot host.

        Distance sweeps written for the free field (up to 8 m) would
        place the victim outside a 5 m room; rather than silently
        moving points, points that do not fit are dropped so the sweep
        stays physically meaningful.
        """
        limit = self.max_distance_m()
        kept = tuple(d for d in distances_m if d <= limit)
        if not kept:
            raise ExperimentError(
                f"no sweep distance fits scenario {self.name!r} "
                f"(limit {limit:.2f} m, requested {list(distances_m)})"
            )
        return kept

    def title_suffix(self) -> str:
        """Table-title tag; empty for the default environment."""
        if self.name == "free_field":
            return ""
        return f" [scenario: {self.name}]"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, replace: bool = False
) -> ScenarioSpec:
    """Add a spec to the named registry (rejects silent overwrites)."""
    if spec.name in _REGISTRY and not replace:
        raise ExperimentError(
            f"scenario {spec.name!r} is already registered; pass "
            "replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Resolve a scenario: a registered name, or ``random:<seed>``.

    ``random:<seed>`` bypasses the registry entirely — the spec is
    *generated* deterministically from the integer seed by
    :mod:`repro.sim.fuzz` (and echoed to stderr once per process so a
    failing fuzz case is always reproducible from the printed seed).
    Anything else is a registry lookup with a helpful error.
    """
    # Local import: fuzz builds ScenarioSpec objects, so it imports
    # this module; resolving lazily keeps the dependency one-way at
    # import time.
    from repro.sim import fuzz

    if fuzz.is_fuzz_name(name):
        return fuzz.generated_scenario(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; registered: "
            f"{sorted(_REGISTRY)} (or generate one with "
            "'random:<seed>')"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Every registered scenario name, sorted."""
    return tuple(sorted(_REGISTRY))


register_scenario(
    ScenarioSpec(
        name="free_field",
        description="anechoic baseline: direct path only, quiet room",
    )
)

#: One domestic room shared by every "living room" flavour below, so
#: tv_interference really is "the living room plus a TV" and tuning
#: the room keeps the scenarios comparable.
_LIVING_ROOM = RoomSpec(5.0, 4.0, 2.5, wall_absorption=0.35)
_LIVING_ROOM_FLOOR_SPL = 42.0

register_scenario(
    ScenarioSpec(
        name="living_room",
        description=(
            "5 x 4 x 2.5 m domestic room, soft furnishings "
            "(absorption 0.35), 42 dB SPL floor"
        ),
        room=_LIVING_ROOM,
        ambient_noise_spl=_LIVING_ROOM_FLOOR_SPL,
    )
)

register_scenario(
    ScenarioSpec(
        name="conference_room",
        description=(
            "6.5 x 4 x 2.5 m meeting room (the evaluation room of the "
            "attack literature), HVAC floor at 45 dB SPL"
        ),
        room=RoomSpec(6.5, 4.0, 2.5, wall_absorption=0.5),
        ambient_noise_spl=45.0,
    )
)

register_scenario(
    ScenarioSpec(
        name="walking_attacker",
        description=(
            "free field with the rig carried by a walking attacker "
            "(±0.5 m per-trial excursion along the approach axis)"
        ),
        trajectory=TrajectorySpec(span_m=1.0),
    )
)

register_scenario(
    ScenarioSpec(
        name="tv_interference",
        description=(
            "living room with a TV playing speech-band audio at "
            "64 dB SPL across the room"
        ),
        room=_LIVING_ROOM,
        ambient_noise_spl=_LIVING_ROOM_FLOOR_SPL,
        interference=(
            InterferenceSpec(
                kind="speech_babble",
                x=4.5,
                y=3.5,
                z=1.0,
                level_spl=64.0,
                seed=7,
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="outdoor_wind",
        description=(
            "outdoors: no reflections, 10 °C at 80 % RH, wind noise "
            "raising the floor to 55 dB SPL"
        ),
        ambient_noise_spl=55.0,
        weather=WeatherSpec(temperature_c=10.0, relative_humidity=80.0),
    )
)
