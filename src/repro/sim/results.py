"""Result tables: tiny containers with aligned-text rendering.

Benchmarks print these so the console output mirrors the paper's
tables; EXPERIMENTS.md embeds the rendered text directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError


@dataclass
class ResultTable:
    """A small column-oriented table.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"T1: attack range vs input power"``).
    columns:
        Column headers.
    rows:
        Row value lists; each must match the header length.
    """

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row, validating its width."""
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row has {len(values)} values but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """Extract a column by header name."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExperimentError(
                f"no column {name!r}; available: {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text rendering."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3g}"
            return str(value)

        cells = [self.columns] + [
            [fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells)
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(
            cell.ljust(width) for cell, width in zip(cells[0], widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append(
                "  ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
