"""Bounded caching for expensive deterministic artefacts.

Shared by the execution layers: the engine's per-process emission
cache, and the trial pipeline's trial-invariant precompute step (one
transmitted interference bed per sample rate, bounded, instead of the
unbounded per-runner dict it replaces). Lives below both so neither
:mod:`repro.sim.pipeline` nor :mod:`repro.sim.engine` needs the other
for its cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError


def stable_key(*parts: Any) -> str:
    """A stable hex digest of heterogeneous, ``repr``-able key parts.

    Used to key the emission cache by command + attacker
    configuration; stable across processes (unlike ``hash``, which is
    salted per interpreter for strings).
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for an :class:`EmissionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class EmissionCache:
    """Process-local LRU cache for expensive deterministic artefacts.

    Stores synthesised voices and attacker emissions keyed by
    :func:`stable_key` digests. Entries can be tens of MB (full array
    emissions), so the cache is bounded by *entry count*: within one
    experiment every lookup hits, while a long ``all`` run cannot
    accumulate every emission it ever built.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ExperimentError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get_or_compute(self, key: str, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on miss."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        value = factory()
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.stats = CacheStats()
