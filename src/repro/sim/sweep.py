"""Parameter sweeps built on the runner.

All sweeps reuse one emission across trial repetitions and distances —
the attack waveform does not depend on where the victim stands — which
keeps multi-point sweeps tractable.

These functions are thin wrappers over
:class:`repro.sim.engine.ExperimentEngine`: pass ``engine=`` to fan
trials out over a worker pool, or leave it unset for the serial
degenerate case. Either way, per-trial random streams are spawned from
``rng`` (``SeedSequence.spawn``) in a fixed order, so results are
identical for every ``jobs`` value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.acoustics.channel import PlacedSource
from repro.errors import ExperimentError
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.spec import get_scenario


def _engine(engine: ExperimentEngine | None) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine(jobs=1)


def success_rate(
    runner: ScenarioRunner,
    sources: list[PlacedSource] | EmissionSpec,
    n_trials: int,
    rng: np.random.Generator,
    engine: ExperimentEngine | None = None,
) -> float:
    """Fraction of successful trials for fixed emissions."""
    return _engine(engine).success_rate(
        runner.scenario, runner.device, sources, n_trials, rng
    )


def accuracy_over_distances(
    scenario: Scenario,
    device: VictimDevice,
    sources: list[PlacedSource] | EmissionSpec,
    distances_m: list[float],
    n_trials: int,
    rng: np.random.Generator,
    engine: ExperimentEngine | None = None,
) -> list[tuple[float, float]]:
    """Success rate at each distance, reusing one emission.

    Returns ``[(distance, success_rate), ...]`` in the given order.
    """
    return _engine(engine).accuracy_over_distances(
        scenario, device, sources, distances_m, n_trials, rng
    )


def attack_range_m(
    scenario: Scenario,
    device: VictimDevice,
    sources: list[PlacedSource] | EmissionSpec,
    rng: np.random.Generator,
    n_trials: int = 3,
    success_threshold: float = 0.5,
    max_distance_m: float = 16.0,
    resolution_m: float = 0.25,
    engine: ExperimentEngine | None = None,
) -> float:
    """Furthest distance at which the attack still succeeds.

    Powerful arrays have a *minimum* working distance as well as a
    maximum: point blank, the summed ultrasonic pressure overloads the
    microphone's ADC and the clipped recording is unrecognisable. The
    search (see :func:`repro.sim.engine.attack_range_search`) probes a
    ladder of starting distances, doubles outward to bracket the far
    edge, then bisects down to ``resolution_m`` — and never measures
    the same distance twice. Returns 0.0 when no starting probe works
    and ``max_distance_m`` when the attack never fails within range.
    """
    return _engine(engine).attack_range_m(
        scenario,
        device,
        sources,
        rng,
        n_trials=n_trials,
        success_threshold=success_threshold,
        max_distance_m=max_distance_m,
        resolution_m=resolution_m,
    )


def success_rate_by_scenario(
    scenario_names: Sequence[str],
    command: str,
    device: VictimDevice,
    sources: list[PlacedSource] | EmissionSpec,
    n_trials: int,
    rng: np.random.Generator,
    distance_m: float | None = None,
    engine: ExperimentEngine | None = None,
) -> list[tuple[str, float]]:
    """One attack, swept across registered environments.

    The environment axis of the experiments × environments grid:
    every named scenario (resolved through the
    :mod:`repro.sim.spec` registry) becomes one trial group, all
    submitted to the engine as a single wave so environments fan out
    over the pool exactly like distances do. ``distance_m=None``
    keeps each scenario's own default distance; a float pins the
    geometry so only the environment varies — and is therefore
    *refused* (not silently clamped) by any scenario whose room
    cannot host it, so every returned rate really was measured at the
    same distance.

    Returns ``[(scenario_name, success_rate), ...]`` in input order.
    """
    if not scenario_names:
        raise ExperimentError("scenario_names must not be empty")
    groups = []
    for name in scenario_names:
        spec = get_scenario(name)
        if distance_m is not None:
            limit = spec.max_distance_m(distance_m)
            if distance_m > limit:
                raise ExperimentError(
                    f"distance {distance_m} m does not fit scenario "
                    f"{name!r} (limit {limit:.2f} m); drop the "
                    "scenario or pin a smaller distance"
                )
        groups.append(
            TrialGroup(
                spec.build(command, distance_m=distance_m),
                device,
                sources,
                n_trials,
            )
        )
    rates = _engine(engine).success_rates(groups, rng)
    return list(zip(scenario_names, rates))
