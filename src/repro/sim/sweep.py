"""Parameter sweeps built on the runner.

All sweeps reuse one emission across trial repetitions and distances —
the attack waveform does not depend on where the victim stands — which
keeps multi-point sweeps tractable.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.channel import PlacedSource
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice
from repro.errors import ExperimentError


def success_rate(
    runner: ScenarioRunner,
    sources: list[PlacedSource],
    n_trials: int,
    rng: np.random.Generator,
) -> float:
    """Fraction of successful trials for fixed emissions."""
    outcomes = runner.run_trials(sources, n_trials, rng)
    return sum(o.success for o in outcomes) / len(outcomes)


def accuracy_over_distances(
    scenario: Scenario,
    device: VictimDevice,
    sources: list[PlacedSource],
    distances_m: list[float],
    n_trials: int,
    rng: np.random.Generator,
) -> list[tuple[float, float]]:
    """Success rate at each distance, reusing one emission.

    Returns ``[(distance, success_rate), ...]`` in the given order.
    """
    if not distances_m:
        raise ExperimentError("distances_m must not be empty")
    results = []
    for distance in distances_m:
        moved = scenario.at_distance(distance)
        runner = ScenarioRunner(moved, device)
        results.append(
            (distance, success_rate(runner, sources, n_trials, rng))
        )
    return results


def attack_range_m(
    scenario: Scenario,
    device: VictimDevice,
    sources: list[PlacedSource],
    rng: np.random.Generator,
    n_trials: int = 3,
    success_threshold: float = 0.5,
    max_distance_m: float = 16.0,
    resolution_m: float = 0.25,
) -> float:
    """Furthest distance at which the attack still succeeds.

    Powerful arrays have a *minimum* working distance as well as a
    maximum: point blank, the summed ultrasonic pressure overloads the
    microphone's ADC and the clipped recording is unrecognisable. The
    search therefore first probes a ladder of starting distances for
    one that works, then doubles outward to find a failing distance,
    then bisects the far edge down to ``resolution_m``. Returns 0.0
    when no starting probe works and ``max_distance_m`` when the
    attack never fails within the probed range.
    """
    if not 0 < success_threshold <= 1:
        raise ExperimentError(
            f"success_threshold must be in (0, 1], got {success_threshold}"
        )

    def works(distance: float) -> bool:
        moved = scenario.at_distance(distance)
        runner = ScenarioRunner(moved, device)
        return (
            success_rate(runner, sources, n_trials, rng)
            >= success_threshold
        )

    # Probe far-side first: powerful arrays have a near-field dead
    # zone (microphone overload), so starting at the farthest working
    # ladder point keeps the doubling search on the monotonic far
    # slope of the coverage region.
    low = None
    for probe in (3.0, 2.0, 1.0, 0.5, 0.25):
        if probe > max_distance_m:
            continue
        if works(probe):
            low = probe
            break
    if low is None:
        return 0.0
    high = low
    while high < max_distance_m:
        high = min(high * 2.0, max_distance_m)
        if not works(high):
            break
    else:
        return max_distance_m
    if high >= max_distance_m and works(max_distance_m):
        return max_distance_m
    # Invariant: works(low), not works(high).
    while high - low > resolution_m:
        mid = 0.5 * (low + high)
        if works(mid):
            low = mid
        else:
            high = mid
    return low
