"""The declarative trial pipeline: one stage list, two execution modes.

Before this module existed the simulator carried two hand-synchronized
implementations of the per-trial attack chain — the scalar loop in
:class:`repro.sim.runner.ScenarioRunner` and the vectorized kernel in
:mod:`repro.sim.batch` — whose bitwise agreement rested on a draw-order
contract stated in comments and pinned only by differential tests.
Here the chain is *data*: a :class:`TrialPipeline` is an ordered list
of named :class:`Stage` objects

    transmit -> motion-gain -> [interference] -> ambient ->
    microphone -> adc -> recognize

where each stage declares a scalar kernel (one trial, one
:class:`~repro.dsp.signals.Signal`, one generator) and an optional
batch kernel (a whole trial chunk as ``(n_trials, n_samples)`` stacks,
one generator per row). A single executor walks the same list in
either mode, so batch-vs-scalar bitwise identity holds *by
construction*: there is no second statement of the stage order left to
drift.

Per-stage random draws are the equivalence discipline: a stage's batch
kernel must consume exactly the draws its scalar kernel would, from
the same per-trial generators, in row order. The built-in stages obey
this (motion gains are drawn one-per-generator before the stacked
multiply; ambient and self-noise draw row by row), and the
property-based suite checks the executor preserves it for arbitrary
stage lists.

Whether a whole pipeline may take the batched path is a *fold* over
its stages' :class:`BatchSupport`: the first stage that lacks a batch
kernel, or whose construction-time check refused (a subclassed
microphone whose overridden ``record`` the stacked chain would
bypass), decides — with a structured reason instead of a silent
``False``.

:func:`build_pipeline` assembles the canonical attack pipeline for a
(scenario, device) pair. The defense's dataset synthesis composes its
own variant — the same stages minus recognition, plus a per-trial
talker-level gain — through the same builders, which is what lets
labelled-recording synthesis run on the batched path in every
registered environment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.acoustics.channel import AcousticChannel, PlacedSource
from repro.acoustics.spl import spl_to_pressure
from repro.dsp.signals import Signal, SignalBatch
from repro.errors import ExperimentError
from repro.hardware.microphone import Microphone
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.obs.trace import current_tracer
from repro.sim.cache import EmissionCache, stable_key
from repro.sim.scenario import Scenario, VictimDevice
from repro.speech.recognizer import KeywordRecognizer

#: Trials stacked per batched executor pass. Sixteen acoustic-rate
#: rows keep every intermediate in the low tens of MB — large enough
#: that a 10-trial dataset cell or a 50-trial sweep group pays the
#: per-chunk fixed costs (filter design, zero-phase initial
#: conditions, batch construction) a handful of times rather than
#: per-trial, small enough that the filter chain's temporaries stay
#: within memory bounds. Row-at-a-time filtering keeps the hot DSP
#: cache-resident regardless of the stack height.
CHUNK_TRIALS = 16

#: Transmitted interference beds retained per invariants cache. Real
#: runs see a handful of (geometry, sample rate) combinations; the
#: bound exists so a sweeping caller cannot grow the precompute cache
#: without limit (the unbounded dict this replaces).
_INVARIANT_CACHE_ENTRIES = 8


@dataclass(frozen=True)
class BatchSupport:
    """Whether a stage (or pipeline) may take the batched path.

    Truthiness matches ``supported`` so ``if supports_batch(group):``
    call sites keep working; the ``reason`` carries the structured
    explanation a silent ``False`` used to swallow.
    """

    supported: bool
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.supported

    @classmethod
    def ok(cls) -> "BatchSupport":
        return cls(supported=True)

    @classmethod
    def refused(cls, reason: str) -> "BatchSupport":
        return cls(supported=False, reason=reason)


@dataclass
class StageTiming:
    """Accumulated wall time of one (mode, stage) pair."""

    seconds: float = 0.0
    calls: int = 0
    trials: int = 0

    @property
    def seconds_per_trial(self) -> float:
        """Mean wall seconds each trial spent in this stage."""
        if self.trials == 0:
            return 0.0
        return self.seconds / self.trials


class StageProfile:
    """Per-stage wall-time attribution for a pipeline run.

    Pass one to :meth:`TrialPipeline.run_trials` (or
    :meth:`~TrialPipeline.run_scalar`) and every stage call — scalar
    or batched — adds its wall time under ``(mode, stage_name)``. The
    hook is deliberately lightweight: when no profile is attached the
    executor takes no timestamps at all, so profiling never taxes
    production runs. One profile may accumulate across many
    ``run_trials`` calls (the benchmark harness feeds a whole workload
    through one), and :meth:`render` prints the breakdown the
    performance docs quote.
    """

    def __init__(self) -> None:
        self.timings: dict[tuple[str, str], StageTiming] = {}

    def add(
        self, mode: str, stage: str, seconds: float, n_trials: int
    ) -> None:
        """Record one stage call of ``n_trials`` trials."""
        timing = self.timings.setdefault((mode, stage), StageTiming())
        timing.seconds += seconds
        timing.calls += 1
        timing.trials += n_trials

    def total_seconds(self, mode: str | None = None) -> float:
        """Wall seconds across all stages, optionally one mode's."""
        return sum(
            timing.seconds
            for (timing_mode, _), timing in self.timings.items()
            if mode is None or timing_mode == mode
        )

    def as_rows(self) -> list[dict]:
        """JSON-friendly rows, in first-recorded order per mode."""
        return [
            {
                "mode": mode,
                "stage": stage,
                "seconds": timing.seconds,
                "calls": timing.calls,
                "trials": timing.trials,
                "seconds_per_trial": timing.seconds_per_trial,
            }
            for (mode, stage), timing in self.timings.items()
        ]

    @classmethod
    def from_spans(cls, spans) -> "StageProfile":
        """Rebuild a profile from trace spans (:mod:`repro.obs`).

        Any span carrying ``mode`` and ``trials`` attributes is a
        stage-timing record — the executors emit exactly one per
        stage call — so a trace file alone reproduces the profiling
        table without a separate profiling run.
        """
        profile = cls()
        for span in spans:
            attrs = span.attrs
            if "mode" in attrs and "trials" in attrs:
                profile.add(
                    str(attrs["mode"]),
                    span.name,
                    span.duration_s,
                    int(attrs["trials"]),
                )
        return profile

    def render(self) -> str:
        """A fixed-width table of the recorded breakdown."""
        lines = [
            f"{'mode':<8} {'stage':<14} {'seconds':>9} "
            f"{'calls':>6} {'trials':>7} {'ms/trial':>9}"
        ]
        for row in self.as_rows():
            lines.append(
                f"{row['mode']:<8} {row['stage']:<14} "
                f"{row['seconds']:>9.4f} {row['calls']:>6d} "
                f"{row['trials']:>7d} "
                f"{1e3 * row['seconds_per_trial']:>9.3f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one attack trial.

    Attributes
    ----------
    success:
        The device recognised the *intended* command.
    recognized_command:
        What the device actually heard (best match).
    accepted:
        Whether the recogniser accepted any command at all.
    distance:
        DTW distance of the best match.
    recording:
        The device-rate recording (kept for defense experiments;
        ``None`` when the engine ran with ``keep_recordings=False``
        so success-rate waves don't ship waveforms between
        processes).
    """

    success: bool
    recognized_command: str
    accepted: bool
    distance: float
    recording: Signal | None


@dataclass(frozen=True)
class TrialContext:
    """Trial-invariant inputs shared by every trial of a group.

    Built once per (emission, geometry) by the pipeline's precompute
    step: the deterministic arrived attack wave, and — when the scene
    has competing audio — the arrived interference bed. Every trial of
    the group reads these; only the per-trial draws differ.
    """

    clean_attack: Signal
    clean_interference: Signal | None = None


#: Recognised ``precision=`` values, in golden-first order.
_PRECISIONS = ("float64", "float32")


def resolve_precision(precision: str | None) -> str:
    """Normalise a ``precision=`` argument against the environment.

    ``None`` defers to the ``REPRO_FAST_MATH`` environment variable
    (truthy values select ``"float32"``); anything explicit must be
    ``"float64"`` (the default golden mode — bitwise-frozen numerics)
    or ``"float32"`` (the opt-in fast path — same stages, single
    precision, tolerance-bounded rather than bitwise).
    """
    if precision is None:
        flag = os.environ.get("REPRO_FAST_MATH", "").strip().lower()
        precision = (
            "float32" if flag in ("1", "true", "yes", "on") else "float64"
        )
    if precision not in _PRECISIONS:
        raise ExperimentError(
            f"precision must be one of {_PRECISIONS}, got {precision!r}"
        )
    return precision


def _cast_value(value: Any, dtype: type) -> Any:
    """Cast a stage payload's samples to ``dtype``, type-preserving."""
    if isinstance(value, (Signal, SignalBatch)):
        if value.samples.dtype != dtype:
            return value.replace(samples=value.samples.astype(dtype))
        return value
    if (
        isinstance(value, np.ndarray)
        and np.issubdtype(value.dtype, np.floating)
        and value.dtype != dtype
    ):
        return value.astype(dtype)
    return value


def _restore_float64(value: Any) -> Any:
    """Return fast-path outputs to float64 at the pipeline boundary.

    Downstream consumers (feature extraction, serialisation, the
    golden suites' fixtures) are written against float64 arrays; the
    fast path keeps its reduced precision — the values are unchanged —
    but hands them back in the default dtype so the mode never leaks
    type surprises out of the pipeline.
    """
    if isinstance(value, TrialOutcome):
        recording = value.recording
        if (
            recording is not None
            and recording.samples.dtype != np.float64
        ):
            return dc_replace(
                value, recording=_cast_value(recording, np.float64)
            )
        return value
    if isinstance(value, list):
        return [_restore_float64(entry) for entry in value]
    return _cast_value(value, np.float64)


#: Scalar kernel: (context, value-in, per-trial generator) -> value-out.
ScalarKernel = Callable[
    [TrialContext, Any, "np.random.Generator | None"], Any
]
#: Batch kernel: (context, stacked value-in, per-trial generators) ->
#: stacked value-out. Must consume exactly the draws the scalar kernel
#: would, from the same generators, in row order.
BatchKernel = Callable[
    [TrialContext, Any, Sequence[np.random.Generator]], Any
]


@dataclass(frozen=True)
class Stage:
    """One named step of the trial chain.

    Attributes
    ----------
    name:
        Stable identifier (``"transmit"``, ``"ambient"``, ...); shown
        in refusal reasons and the pipeline diagram.
    scalar:
        The reference implementation, one trial at a time.
    batch:
        Optional vectorized implementation over a trial chunk;
        ``None`` means the whole pipeline must take the scalar path.
    support:
        Construction-time batch verdict. A builder that *has* a batch
        kernel but cannot prove it equivalent (subclassed hardware
        model) attaches the refusal here so the fold can report why.
    """

    name: str
    scalar: ScalarKernel
    batch: BatchKernel | None = None
    support: BatchSupport = field(default_factory=BatchSupport.ok)

    def batch_support(self) -> BatchSupport:
        """This stage's contribution to the pipeline-level fold."""
        if not self.support:
            return self.support
        if self.batch is None:
            return BatchSupport.refused(
                f"stage {self.name!r} declares no batch kernel"
            )
        return BatchSupport.ok()


class TrialPipeline:
    """An ordered stage list plus the mode-agnostic executor.

    The same ``stages`` tuple drives both execution modes:
    :meth:`run_scalar` folds each trial through every stage's scalar
    kernel; :meth:`run_trials` with ``batch=True`` folds bounded trial
    chunks through the batch kernels instead — falling back to the
    scalar walk automatically when :meth:`batch_support` refuses.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        context_builder: (
            Callable[[list[PlacedSource]], TrialContext] | None
        ) = None,
        invariants: EmissionCache | None = None,
        precision: str | None = None,
    ) -> None:
        stages = tuple(stages)
        if not stages:
            raise ExperimentError(
                "a TrialPipeline needs at least one stage"
            )
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ExperimentError(
                f"stage names must be unique, got {names}"
            )
        self.stages = stages
        self._context_builder = context_builder
        #: The bounded cache behind the trial-invariant precompute
        #: (transmitted interference beds, keyed by sample rate);
        #: exposed for cache-accounting tests. ``None`` for synthetic
        #: pipelines without a context builder.
        self.invariants = invariants
        #: ``"float64"`` (golden mode, the default) or ``"float32"``
        #: (fast math): see :func:`resolve_precision`. In float32 mode
        #: the executor casts every stage's payload down before the
        #: next stage, so the dtype-preserving DSP primitives run
        #: single-precision end to end, and restores float64 at the
        #: pipeline boundary. In float64 mode no cast of any kind
        #: happens — the golden numerics are untouched.
        self.precision = resolve_precision(precision)
        self._fast_dtype = (
            np.float32 if self.precision == "float32" else None
        )

    # -- introspection ------------------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        """The declared order, for diagrams and ordering tests."""
        return tuple(stage.name for stage in self.stages)

    def batch_support(self) -> BatchSupport:
        """Fold of the per-stage verdicts: first refusal wins."""
        for stage in self.stages:
            support = stage.batch_support()
            if not support:
                return support
        return BatchSupport.ok()

    # -- trial-invariant precompute -----------------------------------

    def context(self, sources: Sequence[PlacedSource]) -> TrialContext:
        """The trial-invariant precompute for one emission.

        Only available on pipelines built against a scenario (see
        :func:`build_pipeline`); synthetic pipelines construct their
        :class:`TrialContext` directly.
        """
        if self._context_builder is None:
            raise ExperimentError(
                "this pipeline has no context builder; construct a "
                "TrialContext directly"
            )
        return self._context_builder(list(sources))

    # -- execution ----------------------------------------------------

    def run_scalar(
        self,
        ctx: TrialContext,
        rng: np.random.Generator,
        profile: StageProfile | None = None,
    ) -> Any:
        """One trial through every stage's scalar kernel, in order.

        ``profile`` (when given) receives each stage's wall time under
        mode ``"scalar"``.
        """
        tracer = current_tracer()
        observe = profile is not None or tracer is not None
        value: Any = None
        for stage in self.stages:
            started = time.perf_counter() if observe else 0.0
            value = stage.scalar(ctx, value, rng)
            if self._fast_dtype is not None:
                value = _cast_value(value, self._fast_dtype)
            if observe:
                ended = time.perf_counter()
                if profile is not None:
                    profile.add(
                        "scalar", stage.name, ended - started, 1
                    )
                if tracer is not None:
                    tracer.record(
                        stage.name,
                        started,
                        ended,
                        mode="scalar",
                        trials=1,
                    )
        if self._fast_dtype is not None:
            value = _restore_float64(value)
        return value

    def run_trials(
        self,
        ctx: TrialContext,
        rngs: Sequence[np.random.Generator],
        batch: bool = True,
        chunk_trials: int = CHUNK_TRIALS,
        profile: StageProfile | None = None,
    ) -> list:
        """Every trial's final value, in generator order.

        With ``batch=True`` (and a fully batch-capable stage list) the
        generators stream through the batch kernels in bounded chunks;
        otherwise each runs the scalar walk. Outcomes are bitwise
        identical either way — the stage contract, checked by the
        differential suites. ``profile`` (when given) accumulates each
        stage's wall time under whichever mode actually executed.
        """
        rngs = list(rngs)
        if not rngs:
            raise ExperimentError(
                "run_trials needs >= 1 trial generator"
            )
        if chunk_trials < 1:
            raise ExperimentError(
                f"chunk_trials must be >= 1, got {chunk_trials}"
            )
        if not (batch and self.batch_support()):
            return [
                self.run_scalar(ctx, rng, profile=profile)
                for rng in rngs
            ]
        out: list = []
        for start in range(0, len(rngs), chunk_trials):
            chunk = rngs[start : start + chunk_trials]
            out.extend(self._run_batch_chunk(ctx, chunk, profile))
        return out

    def _run_batch_chunk(
        self,
        ctx: TrialContext,
        rngs: list[np.random.Generator],
        profile: StageProfile | None = None,
    ) -> list:
        tracer = current_tracer()
        observe = profile is not None or tracer is not None
        value: Any = None
        for stage in self.stages:
            started = time.perf_counter() if observe else 0.0
            value = stage.batch(ctx, value, rngs)
            if self._fast_dtype is not None:
                value = _cast_value(value, self._fast_dtype)
            if observe:
                ended = time.perf_counter()
                if profile is not None:
                    profile.add(
                        "batch", stage.name, ended - started, len(rngs)
                    )
                if tracer is not None:
                    tracer.record(
                        stage.name,
                        started,
                        ended,
                        mode="batch",
                        trials=len(rngs),
                    )
        rows = _per_trial_values(value, len(rngs))
        if self._fast_dtype is not None:
            rows = _restore_float64(rows)
        return rows


def _per_trial_values(value: Any, n_trials: int) -> list:
    """Normalise a batch chunk's final value to one entry per trial."""
    if isinstance(value, list):
        rows = value
    elif isinstance(value, SignalBatch):
        rows = [value.row(index) for index in range(value.n_signals)]
    elif isinstance(value, np.ndarray) and value.ndim == 2:
        rows = list(value)
    else:
        raise ExperimentError(
            "the final batch stage must produce a list, a SignalBatch "
            f"or a 2-D array, got {type(value).__qualname__}"
        )
    if len(rows) != n_trials:
        raise ExperimentError(
            f"final batch stage produced {len(rows)} rows for "
            f"{n_trials} trials"
        )
    return rows


# ----------------------------------------------------------------------
# Stage builders
# ----------------------------------------------------------------------

def transmit_stage(scenario: Scenario) -> Stage:
    """Inject the precomputed transmission into the trial flow.

    The expensive work — propagating the attack emission (direct wave
    plus any room reflections) and the interference bed to the victim
    — is trial-invariant and happens once per group in the pipeline's
    precompute step (:meth:`TrialPipeline.context`); this stage merely
    hands each trial the shared arrived waveform. Subclassed scenarios
    refuse the batched path here: their overridden channel/draw
    semantics are exactly what the stacked kernels would bypass.
    """
    support = BatchSupport.ok()
    if type(scenario) is not Scenario:
        support = BatchSupport.refused(
            f"scenario is a {type(scenario).__qualname__}, not the "
            "stock Scenario; its overridden semantics would be "
            "bypassed by the batched chain"
        )
    return Stage(
        name="transmit",
        scalar=lambda ctx, value, rng: ctx.clean_attack,
        batch=lambda ctx, value, rngs: ctx.clean_attack,
        support=support,
    )


def _gain_rows(
    value: Signal | SignalBatch, gains: Sequence[float | None]
) -> Signal | SignalBatch:
    """Apply per-trial amplitude gains, matching scalar math bitwise.

    ``None`` gains leave the shared waveform untouched (static
    scenarios never multiply); when any trial scales, the chunk is
    stacked with row ``i`` equal to the scalar trial's
    ``Signal.__mul__`` result.
    """
    if all(gain is None for gain in gains):
        return value
    if isinstance(value, Signal):
        rows = np.empty((len(gains), value.n_samples))
        for index, gain in enumerate(gains):
            rows[index] = (
                value.samples if gain is None else value.samples * gain
            )
        return SignalBatch.adopt(rows, value.sample_rate, value.unit)
    rows = np.empty_like(value.samples)
    for index, gain in enumerate(gains):
        rows[index] = (
            value.samples[index]
            if gain is None
            else value.samples[index] * gain
        )
    return SignalBatch.adopt(rows, value.sample_rate, value.unit)


def motion_stage(scenario: Scenario) -> Stage:
    """The walking attacker's per-trial geometry gain.

    Always present in the canonical stage list; for static scenarios
    :meth:`~repro.sim.scenario.Scenario.trial_gain` returns ``None``
    and — crucially — consumes no random draw, so the stage is free
    and stream-invisible exactly where the old scalar loop was.
    """

    def scalar(ctx, value, rng):
        gain = scenario.trial_gain(rng)
        return value if gain is None else value * gain

    def batch(ctx, value, rngs):
        # One draw per generator, in row order — exactly where each
        # scalar trial draws it.
        gains = [scenario.trial_gain(rng) for rng in rngs]
        return _gain_rows(value, gains)

    return Stage(name="motion-gain", scalar=scalar, batch=batch)


def level_stage(
    low_spl: float,
    high_spl: float,
    reference_spl: float,
    capture: list[float] | None = None,
) -> Stage:
    """A per-trial source-level draw, as an amplitude gain.

    The defense dataset's genuine talker speaks at a uniformly drawn
    SPL each trial. Because propagation is linear, the level is
    equivalent to a gain of ``10^((spl - reference)/20)`` on a
    transmission rendered once at ``reference_spl`` — the same
    mechanism as the walking attacker's motion gain, which is what
    lets labelled-recording synthesis share the batched path.
    ``capture`` (when given) receives each drawn SPL in trial order,
    for per-row metadata.
    """
    if not low_spl <= high_spl:
        raise ExperimentError(
            f"level range [{low_spl}, {high_spl}] is inverted"
        )
    reference_pressure = spl_to_pressure(reference_spl)

    def draw(rng: np.random.Generator) -> float:
        spl = float(rng.uniform(low_spl, high_spl))
        if capture is not None:
            capture.append(spl)
        return spl_to_pressure(spl) / reference_pressure

    def scalar(ctx, value, rng):
        return value * draw(rng)

    def batch(ctx, value, rngs):
        return _gain_rows(value, [draw(rng) for rng in rngs])

    return Stage(name="talker-level", scalar=scalar, batch=batch)


def interference_stage() -> Stage:
    """Sum the precomputed interference bed at the diaphragm.

    Scalar trials use :meth:`Signal.__add__` (zero-pad to the longer
    waveform, add); the batch kernel performs the identical
    pad-and-add on the stacked rows, so row ``i`` matches the scalar
    trial bitwise. A chunk that is still a shared waveform (static
    scenario) stays shared — the bed is trial-invariant too.
    """

    def scalar(ctx, value, rng):
        return value + ctx.clean_interference

    def batch(ctx, value, rngs):
        if isinstance(value, Signal):
            return value + ctx.clean_interference
        bed = ctx.clean_interference
        n_total = max(value.n_samples, bed.n_samples)
        padded = np.zeros((value.n_signals, n_total))
        padded[:, : value.n_samples] = value.samples
        bed_padded = np.zeros(n_total)
        bed_padded[: bed.n_samples] = bed.samples
        np.add(padded, bed_padded[np.newaxis, :], out=padded)
        return SignalBatch.adopt(padded, value.sample_rate, value.unit)

    return Stage(name="interference", scalar=scalar, batch=batch)


def ambient_stage(channel: AcousticChannel) -> Stage:
    """Add each trial's ambient-noise draw at the receiver."""
    return Stage(
        name="ambient",
        scalar=lambda ctx, value, rng: channel.add_ambient(value, rng),
        batch=lambda ctx, value, rngs: channel.ambient_batch(
            value, list(rngs)
        ),
    )


def record_stages(microphone: Microphone) -> list[Stage]:
    """The microphone chain as pipeline stages.

    For the stock :class:`~repro.hardware.microphone.Microphone` the
    chain splits into its two halves — ``microphone`` (front-end,
    nonlinearity, anti-alias, self-noise) and ``adc`` (resample, clip,
    quantise) — each with a scalar and a batch kernel. A subclassed
    microphone collapses to a single ``record`` stage that calls the
    (possibly overridden) :meth:`record` and refuses the batched path,
    so custom hardware models keep their semantics on the scalar walk.
    A subclassed nonlinearity keeps the split (both modes call its
    ``apply_array``) but refuses batching conservatively, as the old
    kernel did.
    """
    if type(microphone) is not Microphone:
        return [
            Stage(
                name="record",
                scalar=lambda ctx, value, rng: microphone.record(
                    value, rng
                ),
                support=BatchSupport.refused(
                    f"microphone is a "
                    f"{type(microphone).__qualname__}, not the stock "
                    "Microphone; its overridden record() would be "
                    "bypassed by the batched chain"
                ),
            )
        ]
    support = BatchSupport.ok()
    nonlinearity = microphone.config.nonlinearity
    if type(nonlinearity) is not PolynomialNonlinearity:
        support = BatchSupport.refused(
            "nonlinearity is a "
            f"{type(nonlinearity).__qualname__}, not the stock "
            "PolynomialNonlinearity; its overridden transfer would be "
            "bypassed by the batched chain"
        )
    return [
        Stage(
            name="microphone",
            scalar=lambda ctx, value, rng: microphone.record_analog(
                value, rng
            ),
            batch=lambda ctx, value, rngs: microphone.record_analog_batch(
                value, list(rngs)
            ),
            support=support,
        ),
        Stage(
            name="adc",
            scalar=lambda ctx, value, rng: microphone.digitize(value),
            batch=lambda ctx, value, rngs: microphone.digitize_batch(
                value
            ),
        ),
    ]


def recognize_stage(scenario: Scenario, device: VictimDevice) -> Stage:
    """Run the recogniser and fold the verdict into a TrialOutcome."""

    def fold(result, recording: Signal) -> TrialOutcome:
        return TrialOutcome(
            success=result.accepted
            and result.command == scenario.command,
            recognized_command=result.command,
            accepted=result.accepted,
            distance=result.distance,
            recording=recording,
        )

    def outcome(recording: Signal) -> TrialOutcome:
        return fold(device.recognizer.recognize(recording), recording)

    def batch(ctx, recordings: SignalBatch, rngs):
        rows = recordings.signals()
        if type(device.recognizer) is KeywordRecognizer:
            # The whole chunk scores through one stacked anti-diagonal
            # DTW sweep (bitwise identical to per-row recognize); a
            # subclassed recogniser keeps its overridden recognize()
            # on the per-row walk below.
            results = device.recognizer.recognize_batch(rows)
            return [
                fold(result, row) for result, row in zip(results, rows)
            ]
        return [outcome(row) for row in rows]

    return Stage(
        name="recognize",
        scalar=lambda ctx, value, rng: outcome(value),
        batch=batch,
    )


# ----------------------------------------------------------------------
# The canonical pipelines
# ----------------------------------------------------------------------

def build_pipeline(
    scenario: Scenario,
    device: VictimDevice | Microphone,
    recognize: bool = True,
    gain_stage: Stage | None = None,
    invariants: EmissionCache | None = None,
    precision: str | None = None,
) -> TrialPipeline:
    """Assemble the trial pipeline for a (scenario, device) pair.

    This is the *single* statement of the per-trial stage order; the
    scalar runner, the batched kernel and the engine worker all
    execute the list it returns.

    Parameters
    ----------
    scenario:
        The physical setup; supplies the channel, the motion model and
        the interference bed.
    device:
        A :class:`~repro.sim.scenario.VictimDevice` (microphone +
        recogniser), or a bare
        :class:`~repro.hardware.microphone.Microphone` for
        recording-only pipelines (``recognize`` must then be False).
    recognize:
        Whether the pipeline ends in recognition (attack trials) or at
        the ADC (defense dataset synthesis wants raw recordings).
    gain_stage:
        Optional extra per-trial gain inserted after ``transmit`` —
        the defense dataset's talker-level draw
        (:func:`level_stage`). Its draw happens *before* the motion
        gain's, a fixed order both execution modes share.
    invariants:
        Optional shared :class:`~repro.sim.cache.EmissionCache` for
        the trial-invariant precompute. Passing one cache to several
        pipelines (the defense dataset builds one per cell) lets them
        share transmitted interference beds — the cache key carries
        the bed's full physical identity (sources, geometry, weather,
        rate), so sharing is always safe. ``None`` gives the pipeline
        a private bounded cache.
    precision:
        ``"float64"`` (the default golden mode — bitwise-frozen
        numerics) or ``"float32"`` (the opt-in fast path: every stage
        payload is cast down between stages so the dtype-preserving
        DSP primitives run single-precision, and outputs return to
        float64 at the boundary). ``None`` defers to the
        ``REPRO_FAST_MATH`` environment variable; see
        :func:`resolve_precision`.
    """
    if isinstance(device, Microphone):
        if recognize:
            raise ExperimentError(
                "a bare Microphone cannot recognise; pass a "
                "VictimDevice or recognize=False"
            )
        microphone = device
    else:
        microphone = device.microphone
        if (
            recognize
            and scenario.command not in device.recognizer.commands
        ):
            raise ExperimentError(
                f"device {device.name!r} has no template for command "
                f"{scenario.command!r}; enrolled: "
                f"{device.recognizer.commands}"
            )
    channel = scenario.channel()
    stages: list[Stage] = [transmit_stage(scenario)]
    if gain_stage is not None:
        stages.append(gain_stage)
    stages.append(motion_stage(scenario))
    if scenario.interference:
        stages.append(interference_stage())
    stages.append(ambient_stage(channel))
    stages.extend(record_stages(microphone))
    if recognize:
        stages.append(recognize_stage(scenario, device))
    if invariants is None:
        invariants = EmissionCache(max_entries=_INVARIANT_CACHE_ENTRIES)

    def context(sources: list[PlacedSource]) -> TrialContext:
        if not sources:
            raise ExperimentError(
                "run_trial needs at least one source"
            )
        clean_attack = channel.transmit(
            sources, scenario.victim_position
        )
        clean_interference = None
        if scenario.interference:
            rate = clean_attack.sample_rate
            # The bed is deterministic and trial-invariant; transmit
            # it once per physical identity, bounded, instead of once
            # per trial (or unboundedly per rate, as the old runner
            # dict did). The key carries everything the arrived bed
            # depends on, so a cache shared across pipelines (dataset
            # cells differing only in command or class) never
            # collides and never re-transmits.
            clean_interference = invariants.get_or_compute(
                stable_key(
                    "interference-bed",
                    scenario.interference,
                    scenario.victim_position,
                    scenario.room,
                    scenario.conditions,
                    rate,
                ),
                lambda: channel.transmit(
                    scenario.interference_sources(rate),
                    scenario.victim_position,
                ),
            )
        return TrialContext(clean_attack, clean_interference)

    return TrialPipeline(
        stages,
        context_builder=context,
        invariants=invariants,
        precision=precision,
    )
