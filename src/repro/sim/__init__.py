"""End-to-end experiment simulation.

``scenario``
    Declarative description of one physical setup (room, attacker,
    victim device, command) — including environmental features:
    interference sources, a walking attacker, weather.
``spec``
    Pure-data :class:`ScenarioSpec` environments and the named
    registry behind ``--scenario NAME`` (``free_field``,
    ``living_room``, ``walking_attacker``, ...), turning the fixed
    experiment list into an experiments × environments grid.
``pipeline``
    The declarative trial chain: a :class:`TrialPipeline` of named
    :class:`Stage` objects (transmit -> motion-gain -> interference ->
    ambient -> microphone -> adc -> recognize), each with a scalar and
    an optional batch kernel, walked by one executor in either mode —
    batch-vs-scalar bitwise identity holds by construction.
``runner``
    Executes a scenario trial by trial: the scalar driver over the
    shared pipeline, returning per-trial outcomes.
``engine``
    Parallel cached execution: fans trial groups over a process pool
    with ``SeedSequence``-spawned per-trial streams (bit-identical for
    any ``jobs``) and a per-process emission/synthesis cache.
``batch``
    The batched driver over the shared pipeline: one deterministic
    transmission per trial group, per-trial stages as stacked 2-D
    operations — bitwise identical to the scalar runner, ~an order of
    magnitude faster on trial-heavy groups. The engine uses it by
    default.
``sweep``
    Parameter sweeps (distance, power, speaker count) built on the
    engine, with emission caching so sweeps stay tractable.
``results``
    Small result-table containers with aligned-text rendering used by
    the benchmarks and EXPERIMENTS.md.
``bench``
    Shared ``BENCH_*.json`` plumbing: machine metadata embedded in
    every record and the ``bench-trajectory.jsonl`` appender behind
    CI's perf-gates history.
"""

from repro.sim.scenario import (
    AttackerMotion,
    InterferenceSource,
    Scenario,
    TrajectoryLeg,
    VictimDevice,
    interference_waveform,
)
from repro.sim.fuzz import (
    FUZZ_PREFIX,
    FuzzGrammar,
    FuzzSeedError,
    generate_scenario,
    parse_fuzz_seed,
)
from repro.sim.spec import (
    InterferenceSpec,
    RIG_POSITION,
    RoomSpec,
    ScenarioSpec,
    TrajectorySpec,
    WeatherSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sim.pipeline import (
    Stage,
    TrialContext,
    TrialPipeline,
    build_pipeline,
)
from repro.sim.runner import ScenarioRunner, TrialOutcome
from repro.sim.batch import BatchSupport, run_group_batch, supports_batch
from repro.sim.engine import (
    EmissionCache,
    EmissionSpec,
    ExperimentEngine,
    TrialGroup,
    attack_range_search,
    cached_voice,
    process_cache,
    stable_key,
)
from repro.sim.sweep import (
    accuracy_over_distances,
    attack_range_m,
    success_rate,
    success_rate_by_scenario,
)
from repro.sim.results import ResultTable
from repro.sim.bench import append_trajectory, machine_metadata

__all__ = [
    "append_trajectory",
    "machine_metadata",
    "AttackerMotion",
    "BatchSupport",
    "InterferenceSource",
    "InterferenceSpec",
    "RIG_POSITION",
    "RoomSpec",
    "Scenario",
    "ScenarioSpec",
    "TrajectorySpec",
    "VictimDevice",
    "WeatherSpec",
    "ScenarioRunner",
    "Stage",
    "TrialContext",
    "TrialOutcome",
    "TrialPipeline",
    "build_pipeline",
    "EmissionCache",
    "EmissionSpec",
    "ExperimentEngine",
    "FUZZ_PREFIX",
    "FuzzGrammar",
    "FuzzSeedError",
    "TrajectoryLeg",
    "generate_scenario",
    "parse_fuzz_seed",
    "TrialGroup",
    "attack_range_search",
    "cached_voice",
    "get_scenario",
    "interference_waveform",
    "process_cache",
    "register_scenario",
    "run_group_batch",
    "scenario_names",
    "stable_key",
    "supports_batch",
    "success_rate",
    "accuracy_over_distances",
    "attack_range_m",
    "success_rate_by_scenario",
    "ResultTable",
]
