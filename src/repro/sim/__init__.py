"""End-to-end experiment simulation.

``scenario``
    Declarative description of one physical setup (room, attacker,
    victim device, command).
``runner``
    Executes a scenario: generate -> radiate -> propagate -> record ->
    recognise, returning per-trial outcomes.
``engine``
    Parallel cached execution: fans trial groups over a process pool
    with ``SeedSequence``-spawned per-trial streams (bit-identical for
    any ``jobs``) and a per-process emission/synthesis cache.
``batch``
    Vectorized batch trial kernel: one deterministic transmission per
    trial group, per-trial stages as stacked 2-D operations — bitwise
    identical to the scalar runner, ~an order of magnitude faster on
    trial-heavy groups. The engine uses it by default.
``sweep``
    Parameter sweeps (distance, power, speaker count) built on the
    engine, with emission caching so sweeps stay tractable.
``results``
    Small result-table containers with aligned-text rendering used by
    the benchmarks and EXPERIMENTS.md.
"""

from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.runner import ScenarioRunner, TrialOutcome
from repro.sim.batch import run_group_batch, supports_batch
from repro.sim.engine import (
    EmissionCache,
    EmissionSpec,
    ExperimentEngine,
    TrialGroup,
    attack_range_search,
    cached_voice,
    process_cache,
    stable_key,
)
from repro.sim.sweep import (
    accuracy_over_distances,
    attack_range_m,
    success_rate,
)
from repro.sim.results import ResultTable

__all__ = [
    "Scenario",
    "VictimDevice",
    "ScenarioRunner",
    "TrialOutcome",
    "EmissionCache",
    "EmissionSpec",
    "ExperimentEngine",
    "TrialGroup",
    "attack_range_search",
    "cached_voice",
    "process_cache",
    "run_group_batch",
    "stable_key",
    "supports_batch",
    "success_rate",
    "accuracy_over_distances",
    "attack_range_m",
    "ResultTable",
]
