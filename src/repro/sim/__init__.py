"""End-to-end experiment simulation.

``scenario``
    Declarative description of one physical setup (room, attacker,
    victim device, command).
``runner``
    Executes a scenario: generate -> radiate -> propagate -> record ->
    recognise, returning per-trial outcomes.
``sweep``
    Parameter sweeps (distance, power, speaker count) built on the
    runner, with emission caching so sweeps stay tractable.
``results``
    Small result-table containers with aligned-text rendering used by
    the benchmarks and EXPERIMENTS.md.
"""

from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.runner import ScenarioRunner, TrialOutcome
from repro.sim.sweep import (
    accuracy_over_distances,
    attack_range_m,
    success_rate,
)
from repro.sim.results import ResultTable

__all__ = [
    "Scenario",
    "VictimDevice",
    "ScenarioRunner",
    "TrialOutcome",
    "success_rate",
    "accuracy_over_distances",
    "attack_range_m",
    "ResultTable",
]
