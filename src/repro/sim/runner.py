"""Scenario execution: the scalar driver over the trial pipeline.

The runner separates *emission* (expensive, deterministic per command
and attacker) from *trials* (cheap, stochastic): the attacker's
radiated waveforms are computed once and reused while ambient noise and
microphone self-noise are redrawn per trial — matching how the paper
repeats a fixed attack signal 50 times.

Since :mod:`repro.sim.pipeline` the runner no longer states the trial
chain itself: it builds the declarative :class:`TrialPipeline` for its
(scenario, device) pair and walks each trial through the pipeline's
scalar executor. The per-trial draw order — motion gain, ambient
noise, microphone self-noise — therefore lives in exactly one place,
and the vectorized batch kernel (:mod:`repro.sim.batch`) reproduces it
bitwise because it executes the *same* stage list, not a synchronized
copy.
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.channel import PlacedSource
from repro.dsp.signals import Signal
from repro.sim.pipeline import TrialOutcome, build_pipeline
from repro.sim.scenario import Scenario, VictimDevice
from repro.speech.commands import synthesize_command
from repro.errors import ExperimentError

__all__ = ["ScenarioRunner", "TrialOutcome"]


class ScenarioRunner:
    """Runs trials of a scenario against a victim device.

    Parameters
    ----------
    scenario:
        The physical setup.
    device:
        The victim; its recogniser must have the scenario's command
        enrolled, otherwise success is impossible by construction and
        the runner refuses to proceed (enforced by
        :func:`repro.sim.pipeline.build_pipeline`).
    """

    def __init__(self, scenario: Scenario, device: VictimDevice) -> None:
        self.scenario = scenario
        self.device = device
        self.pipeline = build_pipeline(scenario, device)

    def synthesize_voice(self, rng: np.random.Generator) -> Signal:
        """The target command waveform the attacker starts from."""
        return synthesize_command(self.scenario.command, rng)

    def run_trial(
        self,
        sources: list[PlacedSource],
        rng: np.random.Generator,
    ) -> TrialOutcome:
        """One trial: the scalar walk of the shared stage list.

        The trial-invariant transmissions (attack wave and, if the
        scene has competing audio, the interference bed) come from the
        pipeline's precompute step — the bed is cached per sample rate
        in a bounded :class:`~repro.sim.cache.EmissionCache` rather
        than re-propagated every trial.
        """
        ctx = self.pipeline.context(sources)
        return self.pipeline.run_scalar(ctx, rng)

    def run_trials(
        self,
        sources: list[PlacedSource],
        n_trials: int,
        rng: np.random.Generator,
    ) -> list[TrialOutcome]:
        """Repeated trials with fresh noise draws.

        The trial-invariant precompute runs once for the whole
        repetition — the same amortisation the engine path gets — so
        only the per-trial stages repeat.
        """
        if n_trials < 1:
            raise ExperimentError(
                f"n_trials must be >= 1, got {n_trials}"
            )
        ctx = self.pipeline.context(sources)
        return [
            self.pipeline.run_scalar(ctx, rng) for _ in range(n_trials)
        ]
