"""Scenario execution: the full attack chain, once per trial.

The runner separates *emission* (expensive, deterministic per command
and attacker) from *trials* (cheap, stochastic): the attacker's
radiated waveforms are computed once and reused while ambient noise and
microphone self-noise are redrawn per trial — matching how the paper
repeats a fixed attack signal 50 times.

Environmental scenario features all slot into that same split. Rooms
and deterministic interference beds change only the (trial-invariant)
transmission; a walking attacker adds one per-trial uniform draw that
scales the arrived attack wave. The per-trial draw order — motion
gain, ambient noise, microphone self-noise — is the contract the
vectorized batch kernel (:mod:`repro.sim.batch`) reproduces bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.channel import PlacedSource
from repro.dsp.signals import Signal
from repro.sim.scenario import Scenario, VictimDevice
from repro.speech.commands import synthesize_command
from repro.errors import ExperimentError


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one attack trial.

    Attributes
    ----------
    success:
        The device recognised the *intended* command.
    recognized_command:
        What the device actually heard (best match).
    accepted:
        Whether the recogniser accepted any command at all.
    distance:
        DTW distance of the best match.
    recording:
        The device-rate recording (kept for defense experiments;
        ``None`` when the engine ran with ``keep_recordings=False``
        so success-rate waves don't ship waveforms between
        processes).
    """

    success: bool
    recognized_command: str
    accepted: bool
    distance: float
    recording: Signal | None


class ScenarioRunner:
    """Runs trials of a scenario against a victim device.

    Parameters
    ----------
    scenario:
        The physical setup.
    device:
        The victim; its recogniser must have the scenario's command
        enrolled, otherwise success is impossible by construction and
        the runner refuses to proceed.
    """

    def __init__(self, scenario: Scenario, device: VictimDevice) -> None:
        if scenario.command not in device.recognizer.commands:
            raise ExperimentError(
                f"device {device.name!r} has no template for command "
                f"{scenario.command!r}; enrolled: "
                f"{device.recognizer.commands}"
            )
        self.scenario = scenario
        self.device = device
        self._channel = scenario.channel()
        # The interference bed is deterministic and trial-invariant;
        # transmit it once per (runner, sample rate) instead of once
        # per trial. Keyed by rate because callers may pass emissions
        # at different acoustic rates to one runner.
        self._interference_cache: dict[float, Signal] = {}

    def synthesize_voice(self, rng: np.random.Generator) -> Signal:
        """The target command waveform the attacker starts from."""
        return synthesize_command(self.scenario.command, rng)

    def run_trial(
        self,
        sources: list[PlacedSource],
        rng: np.random.Generator,
    ) -> TrialOutcome:
        """One trial: propagate given emissions, record, recognise.

        Per-trial draw order (the batch kernel's contract): the
        walking-attacker gain (if the scenario moves), the ambient
        noise, then the microphone self-noise.
        """
        if not sources:
            raise ExperimentError("run_trial needs at least one source")
        clean = self._channel.transmit(
            sources, self.scenario.victim_position
        )
        gain = self.scenario.trial_gain(rng)
        if gain is not None:
            clean = clean * gain
        if self.scenario.interference:
            clean = clean + self._transmitted_interference(
                clean.sample_rate
            )
        arrived = self._channel.add_ambient(clean, rng)
        recording = self.device.microphone.record(arrived, rng)
        result = self.device.recognizer.recognize(recording)
        return TrialOutcome(
            success=result.accepted
            and result.command == self.scenario.command,
            recognized_command=result.command,
            accepted=result.accepted,
            distance=result.distance,
            recording=recording,
        )

    def _transmitted_interference(self, sample_rate: float) -> Signal:
        """The interference bed arrived at the victim, cached."""
        cached = self._interference_cache.get(sample_rate)
        if cached is None:
            cached = self._channel.transmit(
                self.scenario.interference_sources(sample_rate),
                self.scenario.victim_position,
            )
            self._interference_cache[sample_rate] = cached
        return cached

    def run_trials(
        self,
        sources: list[PlacedSource],
        n_trials: int,
        rng: np.random.Generator,
    ) -> list[TrialOutcome]:
        """Repeat :meth:`run_trial` with fresh noise draws."""
        if n_trials < 1:
            raise ExperimentError(
                f"n_trials must be >= 1, got {n_trials}"
            )
        return [self.run_trial(sources, rng) for _ in range(n_trials)]
