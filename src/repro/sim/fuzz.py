"""Scenario fuzzing: environments generated, not registered.

The registry (:mod:`repro.sim.spec`) holds six hand-written
environments; this module turns that matrix into an open-ended space.
``generate_scenario(seed)`` composes an arbitrary — but always
physically valid — :class:`~repro.sim.spec.ScenarioSpec` from a single
integer seed: random room dimensions and wall absorption (or a free
field), multi-leg attacker trajectories, up to three simultaneous
interferers, and weather drawn from a diurnal time-of-day model.

``--scenario random:<seed>`` resolves through here (parsed by
:func:`repro.sim.spec.get_scenario`), so every experiment that takes
``--scenario`` — the offline tables, the defense dataset synthesis and
the streaming/sharded S1 path alike — runs in generated environments
with no registration step. The generated spec is echoed to stderr the
first time a process materialises it, so a failing case is always
reproducible from the printed seed.

Determinism is the load-bearing property. The spec is a pure function
of ``(seed, grammar)``: the draw sequence below is fixed, the
generator is ``numpy.random.default_rng(seed)``, and the result is
cached per process — repeated calls, engine worker processes and shard
subprocesses that receive only the ``random:<seed>`` string all
rebuild the identical spec field-for-field (pinned by the seed-
stability suite, including across a subprocess boundary). Changing the
grammar — bounds *or* draw order — therefore changes which scenario a
seed denotes; that is fine (no golden covers a generated scenario) but
must be deliberate.

The correctness oracle over this space is differential, not curated:
for any generated scenario, batch-vs-scalar execution must agree
bitwise, worker fan-out and shard partitioning must not change a byte,
and the streaming guard must match the offline guard exactly
(``tests/sim/test_fuzz.py`` and the CI ``fuzz-smoke`` job).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ExperimentError
from repro.sim.scenario import INTERFERENCE_KINDS
from repro.sim.spec import (
    RIG_POSITION,
    WALL_MARGIN_M,
    InterferenceSpec,
    RoomSpec,
    ScenarioSpec,
    TrajectorySpec,
    WeatherSpec,
)

#: The name prefix that selects a generated scenario.
FUZZ_PREFIX = "random:"

#: Generated specs retained per process. Fuzz suites sweep many seeds;
#: the bound keeps a long property run from accumulating every spec it
#: ever built.
_CACHE_ENTRIES = 128


class FuzzSeedError(ExperimentError, ValueError):
    """A malformed ``random:<seed>`` scenario name.

    Subclasses :class:`ValueError` (it is one: the string failed to
    parse) *and* the library's :class:`ExperimentError`, so both
    ``except ValueError`` call sites and the CLI's library-error
    handling catch it.
    """


@dataclass(frozen=True)
class FuzzGrammar:
    """Bounds of the generative grammar, as data.

    One instance (:data:`DEFAULT_GRAMMAR`) drives both the CLI's
    ``random:<seed>`` generation and the hypothesis strategies in
    ``tests/strategies.py`` — the property suite asserts generated
    specs stay inside these bounds, so the grammar cannot silently
    drift apart from its oracle.

    Every geometric bound is chosen so the composed spec is valid *by
    construction*: rooms always contain the rig
    (:data:`~repro.sim.spec.RIG_POSITION`) and the default victim,
    interferers always sit inside the room and off the victim line,
    and weather stays inside the ISO 9613-1 validated range.
    """

    room_probability: float = 0.6
    room_length_m: tuple[float, float] = (3.5, 10.0)
    room_width_m: tuple[float, float] = (2.7, 8.0)
    room_height_m: tuple[float, float] = (2.2, 3.5)
    wall_absorption: tuple[float, float] = (0.15, 0.85)
    distance_m: tuple[float, float] = (0.75, 6.0)
    ambient_noise_spl: tuple[float, float] = (35.0, 60.0)
    trajectory_probability: float = 0.5
    multi_leg_probability: float = 0.5
    trajectory_span_m: tuple[float, float] = (0.3, 1.5)
    leg_count: tuple[int, int] = (2, 4)
    leg_offset_m: tuple[float, float] = (-1.0, 1.0)
    leg_span_m: tuple[float, float] = (0.2, 1.0)
    max_interferers: int = 3
    interference_level_spl: tuple[float, float] = (45.0, 70.0)
    interference_duration_s: tuple[float, float] = (1.5, 2.5)
    #: Free-field interferer placement box (rooms use wall margins).
    interference_box_x: tuple[float, float] = (0.5, 6.0)
    interference_box_y: tuple[float, float] = (0.4, 6.0)
    interference_box_z: tuple[float, float] = (0.4, 2.2)
    #: Interferers keep at least this far (in y) from the rig-victim
    #: axis, so a range search can never probe a victim position
    #: coincident with an interfering loudspeaker.
    victim_line_margin_m: float = 0.3
    wall_margin_m: float = 0.3
    weather_probability: float = 0.5
    #: Diurnal temperature model: the day's mean and swing; the drawn
    #: hour samples ``mean + swing * sin(...)``, humidity moves
    #: opposite the temperature. Weather varies with the drawn time of
    #: day but is sampled once per scenario — propagation is quasi-
    #: static over a two-second trial.
    temperature_mean_c: tuple[float, float] = (0.0, 25.0)
    temperature_swing_c: tuple[float, float] = (2.0, 8.0)
    relative_humidity: tuple[float, float] = (20.0, 95.0)
    pressure_kpa: tuple[float, float] = (97.0, 103.0)
    echo_probability: float = 0.5


DEFAULT_GRAMMAR = FuzzGrammar()


def is_fuzz_name(name: str) -> bool:
    """Whether a scenario name requests generation (well-formed or
    not — malformed ``random:`` strings must reach the parser, not
    fall through to an 'unknown scenario' registry error)."""
    return isinstance(name, str) and name.startswith(FUZZ_PREFIX)


def parse_fuzz_seed(name: str) -> int:
    """The integer seed of a ``random:<seed>`` scenario name.

    Raises :class:`FuzzSeedError` (a :class:`ValueError`) for
    anything except ``random:`` followed by a non-negative integer.
    """
    if not is_fuzz_name(name):
        raise FuzzSeedError(
            f"not a fuzz scenario name: {name!r} (expected "
            f"'{FUZZ_PREFIX}<seed>')"
        )
    digits = name[len(FUZZ_PREFIX):]
    if not digits.isdigit():
        raise FuzzSeedError(
            f"malformed fuzz scenario {name!r}: the seed must be a "
            f"non-negative integer, e.g. '{FUZZ_PREFIX}7'"
        )
    return int(digits)


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    low, high = bounds
    return float(rng.uniform(low, high))


def _off_victim_line(y: float, low: float, high: float, margin: float) -> float:
    """Nudge a y coordinate off the rig-victim axis (y = rig.y).

    The rig, the victim and every range-search probe share
    ``RIG_POSITION.y``; an interferer within ``margin`` of that line
    is moved just outside it (whichever side still fits ``[low,
    high]``), keeping source-receiver distances bounded away from
    zero.
    """
    axis = RIG_POSITION.y
    if abs(y - axis) >= margin:
        return y
    above, below = axis + margin, axis - margin
    if above <= high:
        return above
    if below >= low:
        return below
    raise ExperimentError(
        f"no interferer placement off the victim line fits "
        f"[{low}, {high}]"
    )


def _draw_interferer(
    rng: np.random.Generator,
    grammar: FuzzGrammar,
    room: RoomSpec | None,
) -> InterferenceSpec:
    kind = INTERFERENCE_KINDS[
        int(rng.integers(len(INTERFERENCE_KINDS)))
    ]
    margin = grammar.wall_margin_m
    if room is None:
        x = _uniform(rng, grammar.interference_box_x)
        y_low, y_high = grammar.interference_box_y
        z = _uniform(rng, grammar.interference_box_z)
    else:
        x = float(rng.uniform(margin, room.length_m - margin))
        y_low, y_high = margin, room.width_m - margin
        z = float(rng.uniform(margin, room.height_m - margin))
    y = _off_victim_line(
        float(rng.uniform(y_low, y_high)),
        y_low,
        y_high,
        grammar.victim_line_margin_m,
    )
    return InterferenceSpec(
        kind=kind,
        x=x,
        y=y,
        z=z,
        level_spl=_uniform(rng, grammar.interference_level_spl),
        seed=int(rng.integers(2**31)),
        duration_s=_uniform(rng, grammar.interference_duration_s),
    )


def _draw_trajectory(
    rng: np.random.Generator, grammar: FuzzGrammar
) -> TrajectorySpec:
    if rng.random() < grammar.multi_leg_probability:
        low, high = grammar.leg_count
        n_legs = int(rng.integers(low, high + 1))
        legs = tuple(
            (
                _uniform(rng, grammar.leg_offset_m),
                _uniform(rng, grammar.leg_span_m),
            )
            for _ in range(n_legs)
        )
        # span_m is unused by a multi-leg walk but must validate.
        return TrajectorySpec(span_m=1.0, legs=legs)
    return TrajectorySpec(
        span_m=_uniform(rng, grammar.trajectory_span_m)
    )


def _draw_weather(
    rng: np.random.Generator, grammar: FuzzGrammar
) -> WeatherSpec:
    hour = float(rng.uniform(0.0, 24.0))
    mean = _uniform(rng, grammar.temperature_mean_c)
    swing = _uniform(rng, grammar.temperature_swing_c)
    # Peak mid-afternoon (15:00), trough before dawn.
    phase = np.sin(2.0 * np.pi * (hour - 9.0) / 24.0)
    temperature = mean + swing * phase
    rh_low, rh_high = grammar.relative_humidity
    humidity = float(
        np.clip(
            _uniform(rng, grammar.relative_humidity)
            - 2.0 * swing * phase,
            rh_low,
            rh_high,
        )
    )
    return WeatherSpec(
        temperature_c=temperature,
        relative_humidity=humidity,
        pressure_kpa=_uniform(rng, grammar.pressure_kpa),
    )


@lru_cache(maxsize=_CACHE_ENTRIES)
def _generate(seed: int, grammar: FuzzGrammar) -> ScenarioSpec:
    rng = np.random.default_rng(seed)
    room: RoomSpec | None = None
    if rng.random() < grammar.room_probability:
        room = RoomSpec(
            length_m=_uniform(rng, grammar.room_length_m),
            width_m=_uniform(rng, grammar.room_width_m),
            height_m=_uniform(rng, grammar.room_height_m),
            wall_absorption=_uniform(rng, grammar.wall_absorption),
        )
    distance_low, distance_high = grammar.distance_m
    if room is not None:
        # Keep the default victim strictly inside the room, the same
        # cap max_distance_m applies to range searches.
        distance_high = min(
            distance_high, room.length_m - RIG_POSITION.x - WALL_MARGIN_M
        )
    distance = float(rng.uniform(distance_low, distance_high))
    ambient = _uniform(rng, grammar.ambient_noise_spl)
    trajectory: TrajectorySpec | None = None
    if rng.random() < grammar.trajectory_probability:
        trajectory = _draw_trajectory(rng, grammar)
    n_interferers = int(rng.integers(grammar.max_interferers + 1))
    interference = tuple(
        _draw_interferer(rng, grammar, room)
        for _ in range(n_interferers)
    )
    weather: WeatherSpec | None = None
    if rng.random() < grammar.weather_probability:
        weather = _draw_weather(rng, grammar)
    device = "echo" if rng.random() < grammar.echo_probability else "phone"
    return ScenarioSpec(
        name=f"random_{seed}",
        description=(
            f"generated environment (seed {seed}): "
            + ("room" if room else "free field")
            + f", {n_interferers} interferer(s)"
            + (", walking attacker" if trajectory else "")
            + (", weather" if weather else "")
        ),
        room=room,
        distance_m=distance,
        ambient_noise_spl=ambient,
        trajectory=trajectory,
        interference=interference,
        weather=weather,
        device=device,
    )


def generate_scenario(
    seed: int, grammar: FuzzGrammar = DEFAULT_GRAMMAR
) -> ScenarioSpec:
    """The deterministic :class:`ScenarioSpec` for ``seed``.

    A pure function of ``(seed, grammar)``, cached per process;
    validity is enforced at construction by
    :class:`~repro.sim.spec.ScenarioSpec` itself (which builds and
    geometry-checks the default scenario), so a grammar bug fails
    here, not mid-experiment.
    """
    if seed < 0:
        raise FuzzSeedError(
            f"fuzz seed must be non-negative, got {seed}"
        )
    return _generate(int(seed), grammar)


#: Seeds already echoed by this process (echo once, not per lookup).
_echoed_seeds: set[int] = set()


def generated_scenario(name: str) -> ScenarioSpec:
    """Resolve ``random:<seed>``, echoing the spec for reproduction.

    The echo goes to stderr (tables own stdout) the first time this
    process materialises the seed — rendered tables stay byte-
    identical across ``--jobs``/``--shards``/batch modes while every
    log still carries the full generated environment.
    """
    seed = parse_fuzz_seed(name)
    spec = generate_scenario(seed)
    if seed not in _echoed_seeds:
        _echoed_seeds.add(seed)
        print(
            f"[fuzz] scenario {FUZZ_PREFIX}{seed} -> {spec!r}",
            file=sys.stderr,
        )
    return spec
