"""Shared plumbing for the ``BENCH_*.json`` writers.

Every benchmark that records a JSON point for CI's run-over-run
trajectory embeds :func:`machine_metadata`, so a point from a 4-core
GitHub runner is never compared naively against one from a laptop:
the cpu count, interpreter, library versions and git revision ride
along with the numbers. :func:`append_trajectory` turns one or more
freshly written ``BENCH_*.json`` records into appended lines of a
``bench-trajectory.jsonl`` history file — the per-commit perf record
the CI ``perf-gates`` job restores, extends and re-uploads.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

import numpy as np
import scipy

#: Version stamped into every ``BENCH_*.json`` by
#: :func:`write_bench_record`. Bump when the record layout changes so
#: trajectory consumers can tell points apart.
BENCH_SCHEMA_VERSION = 2


def git_sha() -> str | None:
    """The current commit hash, or ``None`` outside a checkout.

    Prefers CI's ``GITHUB_SHA`` (always set on runners, including
    shallow clones), falling back to ``git rev-parse``.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def machine_metadata() -> dict[str, Any]:
    """What this benchmark point was measured *on*.

    Embedded in every ``BENCH_*.json`` so trajectory points are
    comparable across runners: a sustained-streams figure means
    nothing without the core count it was measured with.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "git_sha": git_sha(),
    }


def write_bench_record(
    path: str | Path, record: dict[str, Any]
) -> dict[str, Any]:
    """Write one ``BENCH_*.json`` record the canonical way.

    The single JSON writer every benchmark shares (pipeline, stream,
    obs — previously each carried its own copy of this boilerplate):
    stamps ``schema_version`` and, unless the record already carries
    one, the :func:`machine_metadata` block; writes 2-space-indented
    JSON with a trailing newline. Returns the record as written.
    """
    record = dict(record)
    record["schema_version"] = BENCH_SCHEMA_VERSION
    record.setdefault("machine", machine_metadata())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record


def summarize_record(record: dict[str, Any]) -> dict[str, Any]:
    """The scalar headline numbers of one benchmark record.

    Keeps every top-level gate/config scalar plus, per workload, the
    numeric fields — dropping nested case lists so a trajectory line
    stays one compact point, not a copy of the record.
    """
    summary: dict[str, Any] = {
        key: value
        for key, value in record.items()
        if isinstance(value, (str, int, float, bool))
    }
    workloads = []
    for result in record.get("results", []):
        workloads.append(
            {
                key: value
                for key, value in result.items()
                if isinstance(value, (str, int, float, bool))
            }
        )
    if workloads:
        summary["results"] = workloads
    return summary


def append_trajectory(
    bench_paths: list[str | Path],
    trajectory_path: str | Path = "bench-trajectory.jsonl",
) -> int:
    """Append one summarised line per benchmark record.

    Each line carries the record's summary, the machine metadata and
    a wall-clock timestamp; returns the number of lines appended.
    Benchmarks that did not run (missing files) are skipped rather
    than failing the append — a partial trajectory beats none.
    """
    meta = machine_metadata()
    recorded_at = int(time.time())
    lines = []
    for path in bench_paths:
        path = Path(path)
        if not path.exists():
            continue
        with open(path) as handle:
            record = json.load(handle)
        lines.append(
            {
                "source": path.name,
                "recorded_at_unix": recorded_at,
                "machine": record.get("machine", meta),
                "summary": summarize_record(record),
            }
        )
    trajectory_path = Path(trajectory_path)
    with open(trajectory_path, "a") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)
