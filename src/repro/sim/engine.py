"""Parallel, cached experiment execution.

Every experiment in this repository decomposes into *trial groups*: a
(scenario, device, emission, n_trials) cell whose trials differ only in
their noise draws. Three observations make the whole suite scale:

1. **Trials are embarrassingly parallel** once each trial owns an
   independent random stream. :class:`ExperimentEngine` derives
   per-trial generators with :meth:`numpy.random.Generator.spawn`
   (i.e. ``SeedSequence.spawn``) *before* scheduling, so the results
   are bit-identical for any ``jobs`` value — parallelism never
   changes the science, only the wall clock.
2. **Emissions are expensive, deterministic and large.** A 32-element
   array emission takes ~1 s to synthesise and ~45 MB to pickle, so
   shipping waveforms to workers would drown the pool in IPC. Instead
   work units carry an :class:`EmissionSpec` — a module-level builder
   plus picklable arguments — and every process materialises it at
   most once through a local :class:`EmissionCache`.
3. **The serial path is the degenerate case.** With ``jobs=1`` the
   engine runs every task in-process with no executor, identical code
   path, identical numbers.
4. **Inside each worker the hot path is vectorized.** By default trial
   chunks run through :mod:`repro.sim.batch`: the deterministic
   transmission is computed once per group and the per-trial noise /
   microphone / ADC stages execute as stacked 2-D operations, bitwise
   identical to the scalar loop (``batch=False``, CLI ``--no-batch``).

The engine is the substrate under :mod:`repro.sim.sweep`, all the
``repro.experiments`` modules and the ``python -m repro.experiments``
CLI (``--jobs``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.acoustics.channel import PlacedSource
from repro.dsp.signals import Signal
from repro.errors import ExperimentError
from repro.obs.metrics import current_metrics
from repro.obs.trace import Tracer, activate as activate_tracer, current_tracer
from repro.sim.cache import CacheStats, EmissionCache, stable_key
from repro.sim.pipeline import (
    TrialOutcome,
    build_pipeline,
    resolve_precision,
)
from repro.sim.scenario import Scenario, VictimDevice
from repro.speech.commands import synthesize_command

__all__ = [
    "CacheStats",
    "EmissionCache",
    "EmissionSpec",
    "ExperimentEngine",
    "TrialGroup",
    "TrialOutcome",
    "attack_range_search",
    "cached_voice",
    "partition_evenly",
    "process_cache",
    "stable_key",
]


#: The per-process cache. Workers forked from a warm parent inherit
#: its entries for free; workers that miss recompute once and keep the
#: result for every later task they execute.
_PROCESS_CACHE = EmissionCache()


def process_cache() -> EmissionCache:
    """The calling process's emission/synthesis cache."""
    return _PROCESS_CACHE


def cached_voice(command: str, seed: int) -> Signal:
    """Synthesise ``command`` from a fresh ``default_rng(seed)``, cached.

    Keying synthesis by ``(command, seed)`` instead of an ambient
    generator state is what makes voices shareable across experiments,
    distances and worker processes.
    """
    return _PROCESS_CACHE.get_or_compute(
        stable_key("voice", command, seed),
        lambda: synthesize_command(command, np.random.default_rng(seed)),
    )


@dataclass(frozen=True)
class EmissionSpec:
    """A picklable recipe for an attacker emission.

    ``builder`` must be a module-level callable (pickled by reference)
    and ``args`` must be cheaply picklable; the multi-megabyte
    waveforms it produces stay inside whichever process materialises
    them. The build result is cached under a key derived from the
    builder's qualified name and arguments — a stable hash of command
    + attacker configuration.
    """

    builder: Callable[..., Any]
    args: tuple = ()

    @property
    def key(self) -> str:
        return stable_key(
            self.builder.__module__,
            self.builder.__qualname__,
            self.args,
        )

    def emission(self) -> Any:
        """The built emission object, from the process cache."""
        return _PROCESS_CACHE.get_or_compute(
            self.key, lambda: self.builder(*self.args)
        )

    def sources(self) -> tuple[PlacedSource, ...]:
        """The emission's placed sources, materialising on demand."""
        emission = self.emission()
        if isinstance(emission, (tuple, list)):
            return tuple(emission)
        return tuple(emission.sources)


@dataclass(frozen=True)
class TrialGroup:
    """One (scenario, device, emission, n_trials) work unit.

    ``emission`` is either an :class:`EmissionSpec` (preferred: tiny
    pickles, per-process caching) or a concrete sequence of
    :class:`PlacedSource` (back-compat with callers that already built
    their waveforms).
    """

    scenario: Scenario
    device: VictimDevice
    emission: EmissionSpec | Sequence[PlacedSource]
    n_trials: int

    def resolve_sources(self) -> list[PlacedSource]:
        if isinstance(self.emission, EmissionSpec):
            return list(self.emission.sources())
        return list(self.emission)


def _run_trial_batch(
    task: tuple[
        TrialGroup, tuple[np.random.Generator, ...], bool, bool, str
    ],
) -> list[TrialOutcome] | tuple[list[TrialOutcome], list]:
    """Worker: execute one chunk of a group's trials.

    Module-level so it pickles by reference; the emission is resolved
    here, inside the executing process, through its cache. A thin
    driver over the shared declarative pipeline
    (:mod:`repro.sim.pipeline`): build the group's stage list once,
    precompute the trial-invariant transmissions, then execute the
    generators through it. With ``use_batch`` set (the default engine
    mode) the pipeline runs its batched executor — one transmission,
    stacked 2-D trial operations — and falls back to the scalar walk
    of the *same* stage list for groups whose
    :meth:`~repro.sim.pipeline.TrialPipeline.batch_support` fold
    refuses. Both modes consume the same spawned generators in the
    same per-stage order, so their outcomes are bitwise identical.

    When the caller only wants success statistics,
    ``keep_recordings=False`` drops each outcome's device-rate
    waveform *before* it is pickled back — at 50 trials per cell the
    recordings, not the results, are the dominant IPC cost.

    An optional sixth tuple element requests tracing. Pool workers
    cannot see the coordinator's ambient tracer, so the flag travels
    with the task; a traced worker installs a fresh local
    :class:`~repro.obs.trace.Tracer`, wraps the run in a
    ``trial-batch`` span (pipeline stage spans nest under it) and
    returns ``(outcomes, spans)`` for the coordinator to adopt.
    Tracing never touches the trial computation itself, so outcomes
    stay bitwise identical either way.
    """
    group, rngs, keep_recordings, use_batch, precision = task[:5]
    trace = bool(task[5]) if len(task) > 5 else False

    def execute() -> list[TrialOutcome]:
        pipeline = build_pipeline(
            group.scenario, group.device, precision=precision
        )
        ctx = pipeline.context(group.resolve_sources())
        outcomes = pipeline.run_trials(ctx, rngs, batch=use_batch)
        if not keep_recordings:
            outcomes = [
                replace(outcome, recording=None)
                for outcome in outcomes
            ]
        return outcomes

    if not trace:
        return execute()
    local = Tracer()
    with activate_tracer(local):
        with local.span(
            "trial-batch", trials=len(rngs), batched=use_batch
        ):
            outcomes = execute()
    return outcomes, local.spans


def _spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators, in deterministic order."""
    try:
        return rng.spawn(n)
    except TypeError as error:  # generator without a SeedSequence
        raise ExperimentError(
            "the engine needs a seeded generator (np.random.default_rng) "
            f"to derive reproducible per-trial streams: {error}"
        ) from error


def partition_evenly(items: Sequence, n_parts: int) -> list[list]:
    """Split into at most ``n_parts`` contiguous, near-equal chunks.

    The partition is a pure function of ``(len(items), n_parts)``, so
    schedulers that key work on it — the engine's trial batching, the
    sharded fleet's stream planner — stay deterministic for any
    worker count.
    """
    n_parts = max(1, min(n_parts, len(items)))
    base, extra = divmod(len(items), n_parts)
    chunks, start = [], 0
    for index in range(n_parts):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def attack_range_search(
    works: Callable[[float], bool],
    max_distance_m: float = 16.0,
    resolution_m: float = 0.25,
) -> float:
    """Ladder/double/bisect search for the furthest working distance.

    ``works`` is evaluated **at most once per distance** — probes are
    memoised, so the doubling phase's terminal point is never re-run
    by the bisection (each probe costs ``n_trials`` full simulation
    trials). The search shape mirrors the physics: powerful arrays
    have a near-field dead zone (ADC overload), so the ladder finds a
    working start, doubling finds the far edge, bisection refines it.
    Returns 0.0 when no ladder probe works and ``max_distance_m`` when
    the attack never fails inside the probed range.
    """
    if not resolution_m > 0:  # also rejects NaN
        raise ExperimentError(
            f"resolution_m must be > 0, got {resolution_m}"
        )
    if not max_distance_m > 0:
        raise ExperimentError(
            f"max_distance_m must be > 0, got {max_distance_m}"
        )
    memo: dict[float, bool] = {}

    def probe(distance: float) -> bool:
        if distance not in memo:
            memo[distance] = works(distance)
        return memo[distance]

    low = None
    for start in (3.0, 2.0, 1.0, 0.5, 0.25):
        if start > max_distance_m:
            continue
        if probe(start):
            low = start
            break
    if low is None:
        return 0.0
    high = low
    while high < max_distance_m:
        high = min(high * 2.0, max_distance_m)
        if not probe(high):
            break
    else:
        return max_distance_m
    # Invariant: probe(low), not probe(high).
    while high - low > resolution_m:
        mid = 0.5 * (low + high)
        if probe(mid):
            low = mid
        else:
            high = mid
    return low


class ExperimentEngine:
    """Schedules trial groups over a process pool, reproducibly.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.
        ``jobs=1`` is the serial degenerate case: no pool, no pickling,
        same numbers. Results are bit-identical for every value.
    batch:
        Whether trial chunks run through the vectorized kernel
        (:mod:`repro.sim.batch`) — one deterministic transmission per
        group, stacked 2-D trial operations — instead of the scalar
        per-trial loop. Defaults to ``True``; both modes are bitwise
        identical (the kernel falls back to the scalar path for groups
        it cannot prove equivalent), so this flag changes wall clock,
        never numbers. The CLI exposes it as ``--no-batch``.
    precision:
        ``"float64"`` (the default golden mode) or ``"float32"`` (the
        opt-in fast-math path); ``None`` defers to the
        ``REPRO_FAST_MATH`` environment variable. Resolved once here —
        workers receive the resolved string, so a pool whose processes
        see different environments still computes one way. See
        :func:`repro.sim.pipeline.resolve_precision`.

    The engine owns at most one :class:`ProcessPoolExecutor`, created
    lazily on first parallel use and reused across calls (and across
    experiments, when the CLI shares one engine), so pool start-up is
    paid once per run rather than once per sweep point.
    """

    def __init__(
        self,
        jobs: int | None = None,
        batch: bool = True,
        precision: str | None = None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if isinstance(jobs, bool) or not isinstance(jobs, int):
            raise ExperimentError(
                f"jobs must be a positive integer or None, got {jobs!r}"
            )
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if not isinstance(batch, bool):
            raise ExperimentError(
                f"batch must be a boolean, got {batch!r}"
            )
        self.jobs = jobs
        self.batch = batch
        self.precision = resolve_precision(precision)
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def scoped(
        cls, engine: "ExperimentEngine | None", jobs: int | None
    ) -> "_ScopedEngine":
        """Context manager yielding ``engine`` or a fresh one.

        Experiments use this so a caller-supplied engine (the CLI's
        shared pool) is borrowed, while a locally created one is closed
        on exit. **Precedence:** a non-``None`` ``engine`` always wins
        and ``jobs`` is ignored — ``jobs`` only configures the engine
        created when none is supplied. (The CLI relies on this: it
        passes its shared pool while every experiment's ``jobs``
        parameter sits at its default.)
        """
        return _ScopedEngine(engine, jobs)

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- generic fan-out ----------------------------------------------

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Order-preserving map, in-process when serial or trivial."""
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return list(self._executor().map(fn, tasks))

    # -- trial execution ----------------------------------------------

    def run_trial_groups(
        self,
        groups: Sequence[TrialGroup],
        rng: np.random.Generator,
        keep_recordings: bool = True,
        batch: bool | None = None,
    ) -> list[list[TrialOutcome]]:
        """Execute every group's trials, fanned out together.

        Per-group generators are spawned from ``rng`` in group order
        and per-trial generators from each group's child, *before* any
        scheduling — so outcomes depend only on ``rng`` and the group
        list, never on ``jobs``. Submitting all groups in one wave
        (rather than group-by-group) is what lets a 4-cell experiment
        such as T2 occupy 4 workers end to end.

        ``keep_recordings=False`` nulls each outcome's ``recording``
        (identically at every ``jobs`` value) so success-rate waves do
        not pickle waveforms back from the pool.

        ``batch`` overrides the engine-wide vectorized-kernel setting
        for this call (``None`` inherits it). Outcomes are bitwise
        identical either way; only throughput changes.
        """
        groups = list(groups)
        if not groups:
            raise ExperimentError("run_trial_groups needs >= 1 group")
        for group in groups:
            if group.n_trials < 1:
                raise ExperimentError(
                    f"n_trials must be >= 1, got {group.n_trials}"
                )
        use_batch = self.batch if batch is None else bool(batch)
        tracer = current_tracer()
        trace = tracer is not None
        # Coarse batches keep emission materialisation local: with
        # groups >= jobs each group stays on one worker, so its
        # emission is built exactly once in the whole pool.
        batches_per_group = max(1, self.jobs // len(groups))
        tasks: list[tuple[TrialGroup, tuple]] = []
        widths: list[int] = []
        for group, group_rng in zip(groups, _spawn(rng, len(groups))):
            trial_rngs = _spawn(group_rng, group.n_trials)
            batches = partition_evenly(trial_rngs, batches_per_group)
            widths.append(len(batches))
            tasks.extend(
                (
                    group,
                    tuple(batch),
                    keep_recordings,
                    use_batch,
                    self.precision,
                    trace,
                )
                for batch in batches
            )
        metrics = current_metrics()
        if metrics is not None:
            metrics.counter("engine.trial_groups").inc(len(groups))
            metrics.counter("engine.trials").inc(
                sum(group.n_trials for group in groups)
            )
            metrics.counter("engine.tasks").inc(len(tasks))
        if trace:
            with tracer.span(
                "trial-groups",
                groups=len(groups),
                tasks=len(tasks),
                jobs=self.jobs,
            ) as fanout_id:
                dispatch_started = time.perf_counter()
                traced = self.map(_run_trial_batch, tasks)
                dispatch_seconds = (
                    time.perf_counter() - dispatch_started
                )
                flat = []
                for outcomes, worker_spans in traced:
                    tracer.adopt(worker_spans, parent_id=fanout_id)
                    flat.append(outcomes)
            if metrics is not None:
                metrics.latency("engine.fanout_s").observe(
                    dispatch_seconds
                )
        else:
            flat = self.map(_run_trial_batch, tasks)
        results: list[list[TrialOutcome]] = []
        cursor = 0
        for width in widths:
            outcomes: list[TrialOutcome] = []
            for batch in flat[cursor : cursor + width]:
                outcomes.extend(batch)
            cursor += width
            results.append(outcomes)
        return results

    def run_trials(
        self,
        scenario: Scenario,
        device: VictimDevice,
        emission: EmissionSpec | Sequence[PlacedSource],
        n_trials: int,
        rng: np.random.Generator,
    ) -> list[TrialOutcome]:
        """Trials of a single group (see :meth:`run_trial_groups`)."""
        group = TrialGroup(scenario, device, emission, n_trials)
        return self.run_trial_groups([group], rng)[0]

    def success_rate(
        self,
        scenario: Scenario,
        device: VictimDevice,
        emission: EmissionSpec | Sequence[PlacedSource],
        n_trials: int,
        rng: np.random.Generator,
    ) -> float:
        """Fraction of successful trials for one group."""
        group = TrialGroup(scenario, device, emission, n_trials)
        return self.success_rates([group], rng)[0]

    def success_rates(
        self,
        groups: Sequence[TrialGroup],
        rng: np.random.Generator,
    ) -> list[float]:
        """Per-group success fractions, all groups fanned out at once.

        Recordings are dropped worker-side (only booleans come home).
        """
        return [
            sum(o.success for o in outcomes) / len(outcomes)
            for outcomes in self.run_trial_groups(
                groups, rng, keep_recordings=False
            )
        ]

    # -- sweeps -------------------------------------------------------

    def accuracy_over_distances(
        self,
        scenario: Scenario,
        device: VictimDevice,
        emission: EmissionSpec | Sequence[PlacedSource],
        distances_m: Sequence[float],
        n_trials: int,
        rng: np.random.Generator,
    ) -> list[tuple[float, float]]:
        """Success rate at each distance, one emission shared by all.

        Returns ``[(distance, success_rate), ...]`` in input order.
        """
        if not distances_m:
            raise ExperimentError("distances_m must not be empty")
        groups = [
            TrialGroup(
                scenario.at_distance(distance), device, emission, n_trials
            )
            for distance in distances_m
        ]
        rates = self.success_rates(groups, rng)
        return list(zip(distances_m, rates))

    def attack_range_m(
        self,
        scenario: Scenario,
        device: VictimDevice,
        emission: EmissionSpec | Sequence[PlacedSource],
        rng: np.random.Generator,
        n_trials: int = 3,
        success_threshold: float = 0.5,
        max_distance_m: float = 16.0,
        resolution_m: float = 0.25,
    ) -> float:
        """Furthest distance at which the attack still succeeds.

        The adaptive search runs through :func:`attack_range_search`,
        so no distance is ever measured twice; each probe's trials are
        parallelised across the pool.
        """
        if not 0 < success_threshold <= 1:
            raise ExperimentError(
                "success_threshold must be in (0, 1], got "
                f"{success_threshold}"
            )

        def works(distance: float) -> bool:
            moved = scenario.at_distance(distance)
            rate = self.success_rate(
                moved, device, emission, n_trials, rng
            )
            return rate >= success_threshold

        return attack_range_search(works, max_distance_m, resolution_m)


class _ScopedEngine:
    """Borrow a caller's engine or own a temporary one."""

    def __init__(
        self, engine: ExperimentEngine | None, jobs: int | None
    ) -> None:
        self._borrowed = engine
        self._jobs = jobs
        self._owned: ExperimentEngine | None = None

    def __enter__(self) -> ExperimentEngine:
        if self._borrowed is not None:
            return self._borrowed
        self._owned = ExperimentEngine(jobs=self._jobs)
        return self._owned

    def __exit__(self, *exc_info) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned = None
