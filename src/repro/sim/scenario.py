"""Scenario descriptions: who attacks what, where — and around whom.

A :class:`Scenario` is pure data; the runner and the batch kernel
execute it. Beyond the original free-field geometry a scenario can
now carry the environmental features real deployments face:

* a :class:`~repro.acoustics.geometry.Room` (first-order reflections
  intermodulate at the microphone exactly like direct waves);
* :class:`InterferenceSource` entries — competing audio such as a TV
  or mains hum, rendered deterministically and summed at the diaphragm
  with the attack waves;
* an :class:`AttackerMotion` model — per-trial geometry perturbation
  of a walking attacker, expressed as a far-field amplitude factor so
  both the scalar and the batched pipelines apply bit-identical math;
* optional :class:`~repro.acoustics.atmosphere.AtmosphericConditions`
  (weather) feeding the ISO 9613-1 absorption model.

Victim devices bundle a microphone preset with a recogniser enrolled
on the command corpus, mirroring "an Echo with Alexa" as one object.
Named, registry-backed environment presets live in
:mod:`repro.sim.spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.acoustics.atmosphere import AtmosphericConditions
from repro.acoustics.channel import AcousticChannel, PlacedSource
from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.spl import spl_to_pressure
from repro.dsp.filters import band_pass
from repro.dsp.signals import Signal, Unit, multi_tone, white_noise
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
)
from repro.hardware.microphone import Microphone
from repro.speech.commands import COMMAND_CORPUS, synthesize_command
from repro.speech.recognizer import KeywordRecognizer
from repro.errors import ExperimentError

#: Interference kinds :func:`interference_waveform` can render.
INTERFERENCE_KINDS = ("speech_babble", "music", "hum")


@dataclass
class VictimDevice:
    """A voice assistant: microphone + enrolled recogniser.

    Build via :meth:`phone` / :meth:`echo` so every experiment shares
    identical device definitions.
    """

    name: str
    microphone: Microphone
    recognizer: KeywordRecognizer

    @staticmethod
    def _enrolled_recognizer(
        commands: tuple[str, ...], seed: int
    ) -> KeywordRecognizer:
        recognizer = KeywordRecognizer()
        rng = np.random.default_rng(seed)
        for command in commands:
            wave = synthesize_command(command, rng)
            recognizer.enroll_multi_condition(command, wave, rng)
        return recognizer

    @classmethod
    def phone(
        cls,
        commands: tuple[str, ...] = ("ok_google", "alexa", "take_a_picture"),
        seed: int = 1234,
    ) -> "VictimDevice":
        """An Android-phone-like device (exposed 48 kHz microphone)."""
        return cls(
            name="phone",
            microphone=android_phone_microphone(),
            recognizer=cls._enrolled_recognizer(commands, seed),
        )

    @classmethod
    def echo(
        cls,
        commands: tuple[str, ...] = ("alexa", "add_milk", "play_music"),
        seed: int = 1234,
    ) -> "VictimDevice":
        """An Amazon-Echo-like device (covered 16 kHz microphone)."""
        return cls(
            name="echo",
            microphone=amazon_echo_microphone(),
            recognizer=cls._enrolled_recognizer(commands, seed),
        )


@dataclass(frozen=True)
class InterferenceSource:
    """Deterministic competing audio placed in the scene.

    The waveform is rendered reproducibly from ``(kind, seed,
    duration_s, level_spl)`` by :func:`interference_waveform`, so the
    interference is trial-invariant: it propagates to the victim once
    per trial group exactly like the attack emission does, and only
    the noise draws differ between trials.

    Attributes
    ----------
    kind:
        One of :data:`INTERFERENCE_KINDS` — ``"speech_babble"``
        (speech-band noise, a TV or talking people), ``"music"``
        (sustained chord with slow amplitude movement) or ``"hum"``
        (mains fundamental plus harmonics).
    position:
        Where the interfering loudspeaker sits.
    level_spl:
        SPL (dB re 20 µPa) of the rendered waveform at the 1 m
        reference distance.
    seed:
        Seed of the private generator the waveform is rendered from.
    duration_s:
        Rendered duration; long enough to cover any attack command.
    """

    kind: str
    position: Position
    level_spl: float = 60.0
    seed: int = 0
    duration_s: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in INTERFERENCE_KINDS:
            raise ExperimentError(
                f"unknown interference kind {self.kind!r}; available: "
                f"{INTERFERENCE_KINDS}"
            )
        if not 0.0 <= self.level_spl <= 100.0:
            raise ExperimentError(
                f"interference level {self.level_spl} dB SPL outside "
                "[0, 100]"
            )
        if self.duration_s <= 0:
            raise ExperimentError(
                f"interference duration must be positive, got "
                f"{self.duration_s}"
            )


@lru_cache(maxsize=32)
def interference_waveform(
    source: InterferenceSource, sample_rate: float
) -> Signal:
    """Render one interference source's pressure waveform at 1 m.

    Deterministic in ``(source, sample_rate)`` and cached, so scalar
    trials, batched trial groups and repeated sweeps all share one
    rendered array per process. The result is a read-only
    :class:`Signal` in pascals, RMS-scaled to ``source.level_spl``.
    """
    rng = np.random.default_rng(source.seed)
    if source.kind == "speech_babble":
        raw = white_noise(
            source.duration_s, sample_rate, rng, unit=Unit.PASCAL
        )
        wave = band_pass(raw, 150.0, 4000.0, order=4)
    elif source.kind == "music":
        chord = multi_tone(
            [(220.0, 1.0), (277.2, 0.8), (329.6, 0.6), (440.0, 0.4)],
            source.duration_s,
            sample_rate,
            unit=Unit.PASCAL,
        )
        # Slow amplitude movement so the interference is not a steady
        # state the recogniser's normalisation could cancel outright.
        t = chord.times()
        envelope = 1.0 + 0.3 * np.sin(2.0 * np.pi * 0.7 * t)
        wave = chord.replace(samples=chord.samples * envelope)
    else:  # "hum" — validated by InterferenceSource
        wave = multi_tone(
            [(50.0, 1.0), (100.0, 0.5), (150.0, 0.25)],
            source.duration_s,
            sample_rate,
            unit=Unit.PASCAL,
        )
    return wave.scaled_to_rms(spl_to_pressure(source.level_spl))


@dataclass(frozen=True)
class TrajectoryLeg:
    """One leg of a multi-leg walk: a dwell region along the axis.

    A leg is a uniform excursion of width ``span_m`` centred
    ``offset_m`` away from the resting distance — "standing two steps
    closer", "pacing near the door". A multi-leg
    :class:`AttackerMotion` picks a leg per trial, so the distance
    distribution becomes a mixture instead of a single interval.
    """

    offset_m: float
    span_m: float

    def __post_init__(self) -> None:
        if self.span_m <= 0:
            raise ExperimentError(
                f"leg span must be positive, got {self.span_m}"
            )
        if not np.isfinite(self.offset_m):
            raise ExperimentError(
                f"leg offset must be finite, got {self.offset_m}"
            )


@dataclass(frozen=True)
class AttackerMotion:
    """A walking attacker, as a per-trial geometry perturbation.

    Each trial displaces the attacker along the attacker-victim axis
    by a uniform draw in ``[-span_m/2, +span_m/2]``. The displacement
    is applied as a far-field *amplitude* factor — pressure scales as
    ``1/d``, so trial ``i`` hears the group's shared transmission
    scaled by ``d0 / d_i``. Phase/delay changes over sub-metre
    displacements are second-order for envelope-demodulated commands
    and are deliberately not modelled; keeping the perturbation a pure
    gain is what lets the batched kernel render a whole trial stack as
    one broadcast multiply while staying bitwise identical to the
    scalar path.

    Attributes
    ----------
    span_m:
        Peak-to-peak walk range along the attacker-victim axis
        (ignored when ``legs`` is non-empty).
    min_distance_m:
        Closest approach; displacement draws are clamped so the
        effective distance never collapses to (or through) zero.
    legs:
        Optional multi-leg walk: each trial first picks one
        :class:`TrajectoryLeg` uniformly, then draws its displacement
        within that leg. Empty (the default) keeps the original
        single-interval walk and its exact random stream, so adding
        the feature changed nothing about existing scenarios.
    """

    span_m: float
    min_distance_m: float = 0.25
    legs: tuple[TrajectoryLeg, ...] = ()

    def __post_init__(self) -> None:
        if self.span_m <= 0:
            raise ExperimentError(
                f"motion span must be positive, got {self.span_m}"
            )
        if self.min_distance_m <= 0:
            raise ExperimentError(
                "minimum approach distance must be positive, got "
                f"{self.min_distance_m}"
            )
        for leg in self.legs:
            if not isinstance(leg, TrajectoryLeg):
                raise ExperimentError(
                    f"legs must be TrajectoryLeg instances, got "
                    f"{type(leg).__qualname__}"
                )

    def trial_gain(
        self, base_distance_m: float, rng: np.random.Generator
    ) -> float:
        """Amplitude factor for one trial.

        Single-interval walks consume exactly one uniform draw (the
        original stream contract); multi-leg walks consume one
        integer draw (the leg) followed by one uniform draw (the
        displacement within it). Both execution pipelines call this
        per trial generator, so the draw order is mode-invariant by
        construction.
        """
        if self.legs:
            leg = self.legs[int(rng.integers(len(self.legs)))]
            delta = leg.offset_m + rng.uniform(
                -leg.span_m / 2.0, leg.span_m / 2.0
            )
        else:
            delta = rng.uniform(-self.span_m / 2.0, self.span_m / 2.0)
        effective = max(base_distance_m + delta, self.min_distance_m)
        return base_distance_m / effective


@dataclass(frozen=True)
class Scenario:
    """One physical experiment setup.

    Attributes
    ----------
    command:
        Corpus command name the attacker tries to inject.
    attacker_position:
        Attack rig location (array centroid).
    victim_position:
        Victim device location.
    room:
        Optional room (``None`` = free field); when set, positions must
        lie inside it.
    ambient_noise_spl:
        Background noise level at the victim, dB SPL.
    interference:
        Deterministic competing audio sources summed at the diaphragm
        with the attack waves (a TV across the room, mains hum, ...).
    motion:
        Optional walking-attacker model; each trial perturbs the
        attack's arrived amplitude by a drawn distance factor.
    conditions:
        Optional weather (temperature/humidity/pressure) driving the
        ISO 9613-1 absorption model; ``None`` uses the indoor default.
    """

    command: str
    attacker_position: Position
    victim_position: Position
    room: Room | None = None
    ambient_noise_spl: float = 40.0
    interference: tuple[InterferenceSource, ...] = ()
    motion: AttackerMotion | None = None
    conditions: AtmosphericConditions | None = None

    def __post_init__(self) -> None:
        if self.command not in COMMAND_CORPUS:
            raise ExperimentError(
                f"unknown command {self.command!r}; available: "
                f"{sorted(COMMAND_CORPUS)}"
            )
        if self.room is not None:
            self.room.require_inside(self.attacker_position, "attacker")
            self.room.require_inside(self.victim_position, "victim")
            for source in self.interference:
                self.room.require_inside(
                    source.position, "interference source"
                )
        if self.ambient_noise_spl < 0 or self.ambient_noise_spl > 90:
            raise ExperimentError(
                f"ambient noise {self.ambient_noise_spl} dB SPL outside "
                "[0, 90]"
            )

    @property
    def distance_m(self) -> float:
        """Attacker-to-victim distance."""
        return self.attacker_position.distance_to(self.victim_position)

    def at_distance(self, distance_m: float) -> "Scenario":
        """A copy with the victim moved to ``distance_m`` along +x."""
        if distance_m <= 0:
            raise ExperimentError(
                f"distance must be positive, got {distance_m}"
            )
        return Scenario(
            command=self.command,
            attacker_position=self.attacker_position,
            victim_position=self.attacker_position.translated(
                distance_m, 0.0, 0.0
            ),
            room=self.room,
            ambient_noise_spl=self.ambient_noise_spl,
            interference=self.interference,
            motion=self.motion,
            conditions=self.conditions,
        )

    def channel(self) -> AcousticChannel:
        """The acoustic channel this scenario plays out on.

        Shared by the scalar runner and the batched trial kernel so
        both pipelines propagate over the *same* model (same room,
        same weather conditions, same noise floor).
        """
        propagation = (
            PropagationModel(conditions=self.conditions)
            if self.conditions is not None
            else PropagationModel()
        )
        return AcousticChannel(
            room=self.room,
            propagation=propagation,
            ambient_noise_spl=self.ambient_noise_spl,
        )

    def interference_sources(
        self, sample_rate: float
    ) -> list[PlacedSource]:
        """Placed, rendered interference waveforms at ``sample_rate``.

        Deterministic (and cached per process), so the interference
        bed is trial-invariant and both execution pipelines can treat
        it exactly like a second emission.
        """
        return [
            PlacedSource(
                interference_waveform(source, sample_rate),
                source.position,
            )
            for source in self.interference
        ]

    def trial_gain(self, rng: np.random.Generator) -> float | None:
        """The motion amplitude factor for one trial.

        Returns ``None`` — and, crucially, consumes **no** random
        draw — for static scenarios, so adding the motion feature
        changed nothing about existing scenarios' random streams.
        """
        if self.motion is None:
            return None
        return self.motion.trial_gain(self.distance_m, rng)
