"""Scenario descriptions: who attacks what, where.

A :class:`Scenario` is pure data; the runner executes it. Victim
devices bundle a microphone preset with a recogniser enrolled on the
command corpus, mirroring "an Echo with Alexa" as one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.geometry import Position, Room
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
)
from repro.hardware.microphone import Microphone
from repro.speech.commands import COMMAND_CORPUS, synthesize_command
from repro.speech.recognizer import KeywordRecognizer
from repro.errors import ExperimentError


@dataclass
class VictimDevice:
    """A voice assistant: microphone + enrolled recogniser.

    Build via :meth:`phone` / :meth:`echo` so every experiment shares
    identical device definitions.
    """

    name: str
    microphone: Microphone
    recognizer: KeywordRecognizer

    @staticmethod
    def _enrolled_recognizer(
        commands: tuple[str, ...], seed: int
    ) -> KeywordRecognizer:
        recognizer = KeywordRecognizer()
        rng = np.random.default_rng(seed)
        for command in commands:
            wave = synthesize_command(command, rng)
            recognizer.enroll_multi_condition(command, wave, rng)
        return recognizer

    @classmethod
    def phone(
        cls,
        commands: tuple[str, ...] = ("ok_google", "alexa", "take_a_picture"),
        seed: int = 1234,
    ) -> "VictimDevice":
        """An Android-phone-like device (exposed 48 kHz microphone)."""
        return cls(
            name="phone",
            microphone=android_phone_microphone(),
            recognizer=cls._enrolled_recognizer(commands, seed),
        )

    @classmethod
    def echo(
        cls,
        commands: tuple[str, ...] = ("alexa", "add_milk", "play_music"),
        seed: int = 1234,
    ) -> "VictimDevice":
        """An Amazon-Echo-like device (covered 16 kHz microphone)."""
        return cls(
            name="echo",
            microphone=amazon_echo_microphone(),
            recognizer=cls._enrolled_recognizer(commands, seed),
        )


@dataclass(frozen=True)
class Scenario:
    """One physical experiment setup.

    Attributes
    ----------
    command:
        Corpus command name the attacker tries to inject.
    attacker_position:
        Attack rig location (array centroid).
    victim_position:
        Victim device location.
    room:
        Optional room (``None`` = free field); when set, positions must
        lie inside it.
    ambient_noise_spl:
        Background noise level at the victim, dB SPL.
    """

    command: str
    attacker_position: Position
    victim_position: Position
    room: Room | None = None
    ambient_noise_spl: float = 40.0

    def __post_init__(self) -> None:
        if self.command not in COMMAND_CORPUS:
            raise ExperimentError(
                f"unknown command {self.command!r}; available: "
                f"{sorted(COMMAND_CORPUS)}"
            )
        if self.room is not None:
            self.room.require_inside(self.attacker_position, "attacker")
            self.room.require_inside(self.victim_position, "victim")
        if self.ambient_noise_spl < 0 or self.ambient_noise_spl > 90:
            raise ExperimentError(
                f"ambient noise {self.ambient_noise_spl} dB SPL outside "
                "[0, 90]"
            )

    @property
    def distance_m(self) -> float:
        """Attacker-to-victim distance."""
        return self.attacker_position.distance_to(self.victim_position)

    def at_distance(self, distance_m: float) -> "Scenario":
        """A copy with the victim moved to ``distance_m`` along +x."""
        if distance_m <= 0:
            raise ExperimentError(
                f"distance must be positive, got {distance_m}"
            )
        return Scenario(
            command=self.command,
            attacker_position=self.attacker_position,
            victim_position=self.attacker_position.translated(
                distance_m, 0.0, 0.0
            ),
            room=self.room,
            ambient_noise_spl=self.ambient_noise_spl,
        )
