"""Structure-of-arrays fleet kernel: one group of streams per loop.

:func:`~repro.stream.fleet.drive_stream` advances one device through
its timeline with per-chunk Python work — ring push, frame energies,
segmenter branches, Welch segments — repeated for every stream. At
fleet scale that per-stream interpreter overhead dominates: the
arithmetic is identical across streams, only the data differs. This
module is the RVH/Harmonia-shaped rewrite of that hot loop: a whole
*group* of streams advances in lockstep, and each cycle's work runs
as ``(n_streams, ...)`` NumPy ops —

* chunk ingestion is one 2-D write into a shared ring
  (:class:`~repro.stream.chunker.ChunkedStreamBatch`) and one
  ``frame_rms_matrix`` reduction;
* the segmenter state machine advances all rows per frame with masked
  vector ops (:class:`~repro.stream.segmenter.OnlineSegmenterBatch`);
* Welch accumulation gathers every *due* segment across every open
  utterance into one stack and runs a single batched FFT
  (:func:`~repro.stream.features.welch_segment_psd`), folding rows
  back per accumulator in order;
* at group end, recognition batches all closed utterances through the
  anti-diagonal DTW slab
  (:meth:`~repro.speech.recognizer.KeywordRecognizer.recognize_many`)
  and detection batches the trace analyses by utterance length.

Per-stream *scalar* work survives only at boundary events — an
utterance closing (its samples are copied out and its Welch tail
segments finish in the scalar accumulator) and ring growth — exactly
the cheap-fast-path / expensive-rare-boundary split the online
classification literature prescribes.

The contract is the fleet's usual one, extended: every per-stream
digest is **bitwise identical** to :func:`drive_stream`'s for any
grouping of streams into kernel batches. Each vectorised stage is
row-wise bitwise equal to its scalar counterpart (batched FFT rows,
matrix frame RMS, elementwise float64 state updates, band-masked DTW
slabs), rows never exchange information, and the lockstep zero
padding of shorter timelines is masked out of every decision — the
kernel digest property in ``tests/stream/test_stream_kernel.py``
pins this over arbitrary stream counts and groupings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.features import features_from_analysis
from repro.defense.guard import guard_outcome
from repro.defense.traces import analyses_from_psd
from repro.dsp.framing import frame_count
from repro.dsp.signals import Signal, SignalBatch
from repro.errors import DefenseError, StreamError
from repro.obs.trace import current_tracer
from repro.sim.pipeline import StageProfile
from repro.speech.recognizer import KeywordRecognizer
from repro.stream.chunker import ChunkedStreamBatch
from repro.stream.features import WelchAccumulator, welch_segment_psd
from repro.stream.fleet import (
    FleetConfig,
    RawStreamRun,
    assemble_timeline,
)
from repro.stream.guard import UtteranceOutcome
from repro.stream.segmenter import (
    BatchClosed,
    BatchOpened,
    OnlineSegmenterBatch,
    SegmenterConfig,
)

#: Stage-profile mode tag for the streaming kernel's breakdown.
PROFILE_MODE = "stream"


@dataclass
class _Pending:
    """One closed utterance awaiting the batched decide phase."""

    start: int
    end: int
    emitted_at: int
    forced: bool
    samples: np.ndarray
    welch: WelchAccumulator
    unit: str


class _StageClock:
    """Accumulate per-stage wall time for one kernel invocation.

    With a tracer attached every ``start``/``stop`` window is also
    recorded as one span under ``parent_id`` — the per-cycle
    resolution the profile's aggregate totals throw away. Disabled
    (no profile, no tracer), both methods reduce to a predicate
    check.
    """

    def __init__(
        self,
        enabled: bool,
        tracer=None,
        parent_id: int | None = None,
    ) -> None:
        self.enabled = enabled or tracer is not None
        self.tracer = tracer
        self.parent_id = parent_id
        self.seconds: dict[str, float] = {}
        self._started = 0.0

    def start(self) -> None:
        if self.enabled:
            self._started = time.perf_counter()

    def stop(self, stage: str) -> None:
        if self.enabled:
            ended = time.perf_counter()
            elapsed = ended - self._started
            self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed
            if self.tracer is not None:
                self.tracer.record(
                    stage,
                    self._started,
                    ended,
                    parent_id=self.parent_id,
                )


def drive_stream_group(
    config: FleetConfig,
    detector: InaudibleVoiceDetector,
    segmenter_config: SegmenterConfig | None,
    indices: list[int],
    rate: float,
    recognizer: KeywordRecognizer,
    recordings_by_stream: list[list[Signal]],
    attack_by_stream: list[np.ndarray],
    seed_seqs: list[np.random.SeedSequence],
    profile: StageProfile | None = None,
) -> tuple[list[RawStreamRun], float]:
    """Drive a group of streams in lockstep; per-stream results are
    bitwise :func:`~repro.stream.fleet.drive_stream`'s.

    Parameters mirror ``drive_stream`` with the stream axis pluralised:
    ``indices`` are the global stream indices of the group, and entry
    ``b`` of the per-stream lists is that stream's utterance
    recordings, slot attack flags and seed sequence. ``profile``
    (optional) accumulates the kernel's per-stage wall time under
    mode ``"stream"``.

    Returns ``(runs, assemble_seconds)`` — the second element is the
    wall time spent synthesising the group's ambient timelines, which
    the fleet accounts as *prepare* (workload generation), not
    streaming wall: a deployment receives its audio, it does not draw
    it from a generator.
    """
    n_group = len(indices)
    if not (
        n_group
        == len(recordings_by_stream)
        == len(attack_by_stream)
        == len(seed_seqs)
    ):
        raise StreamError(
            "kernel group fields must be parallel, got lengths "
            f"{n_group}/{len(recordings_by_stream)}/"
            f"{len(attack_by_stream)}/{len(seed_seqs)}"
        )
    if not recognizer.commands:
        raise DefenseError(
            "the recogniser has no enrolled commands; enroll "
            "before installing the guard"
        )
    if rate < 8000.0:
        raise StreamError(
            "the guard needs at least an 8 kHz stream, got "
            f"{rate} Hz"
        )
    tracer = current_tracer()
    if tracer is not None:
        # The group span's id is needed *before* its children are
        # recorded; allocate it now, record the span itself at the
        # end with the id and parent pinned here.
        group_id: int | None = tracer.new_id()
        group_parent = tracer.current_parent()
        group_started = time.perf_counter()
    else:
        group_id = None
    clock = _StageClock(profile is not None, tracer, group_id)

    assemble_started = time.perf_counter()
    timelines = []
    units = []
    for recordings, seq in zip(recordings_by_stream, seed_seqs):
        rng = np.random.default_rng(seq)
        timelines.append(assemble_timeline(config, rate, recordings, rng))
        units.append(recordings[0].unit)
    assemble_seconds = time.perf_counter() - assemble_started
    if clock.enabled:
        clock.seconds["assemble"] = (
            clock.seconds.get("assemble", 0.0) + assemble_seconds
        )
    if tracer is not None:
        tracer.record(
            "assemble",
            assemble_started,
            assemble_started + assemble_seconds,
            parent_id=group_id,
        )
    clock.start()
    lens = np.array([t.shape[0] for t in timelines], dtype=np.int64)
    max_len = int(lens.max())
    chunk = max(1, int(round(config.chunk_s * rate)))
    seg_cfg = segmenter_config or SegmenterConfig()
    ring = ChunkedStreamBatch(
        n_group, rate, seg_cfg.frame_length_s, seg_cfg.hop_length_s
    )
    segmenter = OnlineSegmenterBatch(n_group, rate, seg_cfg)
    n_frames = np.array(
        [frame_count(int(n), ring.frame_len, ring.hop) for n in lens],
        dtype=np.int64,
    )
    clock.stop("assemble")

    # Per-row live-utterance state: (start_sample, WelchAccumulator).
    open_welch: list[WelchAccumulator | None] = [None] * n_group
    pending: list[list[_Pending]] = [[] for _ in range(n_group)]
    block = np.zeros((n_group, chunk), dtype=np.float64)
    lens_i = [int(n) for n in lens]
    head = 0
    while head < max_len:
        nxt = min(head + chunk, max_len)
        k = nxt - head

        # -- ingest: one lockstep push, one matrix frame-RMS --------
        clock.start()
        cycle = block[:, :k]
        for b in range(n_group):
            # Rows whose timeline covers the whole cycle (the common
            # case) overwrite their slot outright; only exhausted or
            # partial rows pay for zero padding.
            lb = lens_i[b]
            if lb >= nxt:
                cycle[b] = timelines[b][head:nxt]
            elif head < lb:
                cycle[b, : lb - head] = timelines[b][head:lb]
                cycle[b, lb - head :] = 0.0
            else:
                cycle[b] = 0.0
        ring.push_block(cycle)
        head = nxt
        first, energies = ring.pending_frame_energies()
        clock.stop("ingest")
        heads = np.minimum(lens, head)

        # -- segment: vectorised state machine over the new frames --
        clock.start()
        n_new = energies.shape[1]
        if n_new:
            frame_idx = first + np.arange(n_new)
            valid = frame_idx[np.newaxis, :] < n_frames[:, np.newaxis]
            events = segmenter.process_block(first, energies, valid)
        else:
            events = []
        clock.stop("segment")

        # -- boundary events: the per-stream scalar fallback ---------
        clock.start()
        for event in events:
            if isinstance(event, BatchOpened):
                for row in event.rows:
                    open_welch[int(row)] = WelchAccumulator(rate)
            elif isinstance(event, BatchClosed):
                for row, start, end_u, forced in zip(
                    event.rows,
                    event.start_samples,
                    event.end_samples,
                    event.forced,
                ):
                    row, start = int(row), int(start)
                    end = min(int(end_u), int(heads[row]))
                    welch = open_welch[row]
                    open_welch[row] = None
                    pending[row].append(
                        _Pending(
                            start=start,
                            end=end,
                            emitted_at=int(heads[row]),
                            forced=bool(forced),
                            samples=ring.read_row(row, start, end),
                            welch=welch,
                            unit=units[row],
                        )
                    )
        clock.stop("close")

        # -- welch: every due segment of the cycle in one FFT --------
        clock.start()
        open_mask = segmenter.in_utterance
        if open_mask.any():
            bounds = segmenter.commit_bounds(heads)
            starts = segmenter.utterance_starts
            gather_rows: list[int] = []
            gather_starts: list[int] = []
            owners: list[WelchAccumulator] = []
            for row in np.flatnonzero(open_mask):
                welch = open_welch[row]
                start = int(starts[row])
                committed = int(bounds[row]) - start
                for rel in welch.due_starts(committed):
                    gather_rows.append(int(row))
                    gather_starts.append(start + rel)
                    owners.append(welch)
            if owners:
                slab = ring.gather_rows(
                    np.asarray(gather_rows),
                    np.asarray(gather_starts),
                    owners[0].segment_length,
                )
                psd_rows = welch_segment_psd(
                    slab, owners[0].window_values, owners[0].scale
                )
                for welch, psd_row in zip(owners, psd_rows):
                    welch.fold(psd_row)
        clock.stop("welch")

        # -- release: retain open starts, the frame grid, lookback ---
        next_frame_start = ring.frames_emitted * ring.hop
        per_row_keep = np.where(
            open_mask,
            segmenter.utterance_starts,
            segmenter.lookback_samples(),
        )
        keep = min(next_frame_start, int(per_row_keep.min()))
        ring.release(max(ring.tail, keep))

    # -- flush: close still-open rows at their own stream ends -------
    clock.start()
    flush_event = segmenter.flush_open_rows(lens)
    if flush_event is not None:
        for row, start, end in zip(
            flush_event.rows,
            flush_event.start_samples,
            flush_event.end_samples,
        ):
            row, start, end = int(row), int(start), int(end)
            welch = open_welch[row]
            open_welch[row] = None
            pending[row].append(
                _Pending(
                    start=start,
                    end=end,
                    emitted_at=int(lens[row]),
                    forced=False,
                    samples=ring.read_row(row, start, end),
                    welch=welch,
                    unit=units[row],
                )
            )
    clock.stop("close")

    # -- recognize: all closed utterances through the DTW slab -------
    clock.start()
    flat = [(row, p) for row in range(n_group) for p in pending[row]]
    recognitions = recognizer.recognize_many(
        [Signal(p.samples, rate, p.unit) for _, p in flat]
    )
    clock.stop("recognize")

    # -- detect: batched trace analyses for *accepted* utterances ----
    # The guard consults the detector only when recognition accepts
    # (guard_outcome's laziness); computing the PSD of a rejected
    # utterance could even raise where the scalar path would not.
    clock.start()
    accepted = [
        i for i, result in enumerate(recognitions) if result.accepted
    ]
    finalized = {}
    for i in accepted:
        p = flat[i][1]
        finalized[i] = p.welch.finalize(p.samples, p.samples.shape[0])
    groups: dict[tuple[int, str], list[int]] = {}
    for i in accepted:
        p = flat[i][1]
        groups.setdefault((p.samples.shape[0], p.unit), []).append(i)
    detections = {}
    for (_, unit), members in groups.items():
        stack = np.stack([flat[i][1].samples for i in members])
        freqs = finalized[members[0]][0]
        psd = np.concatenate(
            [finalized[i][1] for i in members], axis=0
        )
        analyses = analyses_from_psd(
            SignalBatch(stack, rate, unit), freqs, psd
        )
        for i, analysis in zip(members, analyses):
            vector = features_from_analysis(
                analysis, subset=detector.feature_subset
            )
            detections[i] = detector.classify_features(vector)
    clock.stop("detect")

    outcomes: list[list[UtteranceOutcome]] = [[] for _ in range(n_group)]
    for i, (row, p) in enumerate(flat):
        detection = detections.get(i)
        outcome = guard_outcome(
            recognitions[i], lambda detection=detection: detection
        )
        outcomes[row].append(
            UtteranceOutcome(
                outcome=outcome,
                start_sample=p.start,
                end_sample=p.end,
                emitted_at_sample=p.emitted_at,
                forced=p.forced,
            )
        )

    if profile is not None:
        for stage, seconds in clock.seconds.items():
            profile.add(PROFILE_MODE, stage, seconds, n_group)

    if tracer is not None:
        group_ended = time.perf_counter()
        # Utterance spans are decision *markers*: zero wall width at
        # the decide instant, with the stream-time latency (and the
        # stream that produced them) in the attributes — that is what
        # the reporter's percentile section reads.
        for i, (row, p) in enumerate(flat):
            tracer.record(
                "utterance",
                group_ended,
                group_ended,
                parent_id=group_id,
                stream=int(indices[row]),
                latency_s=(p.emitted_at - p.end) / rate,
                accepted=bool(recognitions[i].accepted),
                forced=p.forced,
            )
        tracer.record(
            "stream-group",
            group_started,
            group_ended,
            parent_id=group_parent,
            span_id=group_id,
            streams=n_group,
        )

    return [
        RawStreamRun(
            index=int(indices[b]),
            is_attack=tuple(bool(flag) for flag in attack_by_stream[b]),
            duration_s=int(lens[b]) / rate,
            outcomes=outcomes[b],
        )
        for b in range(n_group)
    ], assemble_seconds
