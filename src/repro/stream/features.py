"""Stateful incremental defense-feature extraction.

The offline defense measures an utterance once it is complete:
:func:`repro.defense.traces.analyze_traces` runs a Welch PSD and band
envelopes over the whole recording. Online, the guard cannot wait —
an utterance arrives as chunks, and the expensive half of the
measurement (the Welch accumulation over acoustic-scale FFT segments)
would otherwise land as one lump of latency at utterance close.

:class:`WelchAccumulator` streams that half: it consumes exactly the
segment sequence :func:`repro.dsp.spectrum.welch_psd_matrix` would
walk — same segment starts, same window, same accumulation order —
as soon as each segment's samples are *committed* (guaranteed to lie
inside the eventual utterance). Because float addition order and the
per-segment arithmetic are identical, the finalized PSD is bitwise
equal to the offline estimate of the closed utterance, which is the
foundation of the streaming guard's parity guarantee.

:class:`StreamingTraceExtractor` wraps the accumulator with the
utterance sample buffer and finishes through
:func:`repro.defense.traces.analyses_from_psd` — the same band-power,
envelope and correlation arithmetic the offline path uses. The band
envelopes are zero-phase (non-causal) filters and are therefore
computed at close over the retained utterance, a few seconds of audio
per stream; the Welch work, the dominant cost, is already done by
then.

Commit semantics: ``feed`` may run ahead of the utterance's eventual
end (the segmenter only knows the end retroactively, after its
hangover), so segments are accumulated only up to ``commit(n)`` — a
monotone lower bound on the final length. ``finalize(length)`` then
processes the remaining whole segments below ``length`` and
assembles the analysis.
"""

from __future__ import annotations

import numpy as np

from repro.defense.traces import (
    TRACE_SEGMENT_SAMPLES,
    TRACE_WINDOW,
    TraceAnalysis,
    analyses_from_psd,
)
from repro.dsp import windows as win
from repro.dsp.signals import SignalBatch, Unit
from repro.dsp.spectrum import welch_psd_matrix
from repro.errors import StreamError


def welch_segment_psd(
    segments: np.ndarray, window_values: np.ndarray, scale: float
) -> np.ndarray:
    """Per-segment scaled periodograms of a ``(k, n_seg)`` stack.

    The per-segment arithmetic of :meth:`WelchAccumulator.advance` —
    window, rfft, squared magnitude, density scale — as one batched
    op. ``np.fft.rfft`` computes each row of a 2-D input with the
    same plan as a single-row transform, so row ``j`` is bitwise the
    scalar accumulator's contribution for that segment; the fleet
    kernel exploits this by gathering every due segment across a whole
    stream group into one stack and folding the rows back into each
    stream's accumulator in order.
    """
    spectrum = np.fft.rfft(segments * window_values, axis=-1)
    return np.square(np.abs(spectrum)) * scale


class WelchAccumulator:
    """Online Welch PSD, bitwise-matched to the offline estimator.

    Mirrors :func:`repro.dsp.spectrum.welch_psd_matrix` with
    ``segment_length = min(segment_length, n_samples)`` semantics:
    while the signal is at least one segment long, segments start at
    ``0, step, 2*step, ...`` and accumulate in that order; a signal
    shorter than one segment falls back to the matrix estimator's
    single padded FFT at :meth:`finalize`, by calling it.

    ``advance`` accumulates every segment that fits entirely below
    ``committed`` — the caller's promise that those samples are final.
    """

    def __init__(
        self,
        sample_rate: float,
        segment_length: int = TRACE_SEGMENT_SAMPLES,
        overlap: float = 0.5,
        window: str = TRACE_WINDOW,
    ) -> None:
        if segment_length < 2:
            raise StreamError(
                f"segment_length must be >= 2, got {segment_length}"
            )
        if not 0 <= overlap < 1:
            raise StreamError(
                f"overlap must be in [0, 1), got {overlap}"
            )
        self.sample_rate = float(sample_rate)
        self.segment_length = int(segment_length)
        self.overlap = float(overlap)
        self.window = window
        self.step = max(1, int(round(segment_length * (1 - overlap))))
        self._w = win.get_window(window, self.segment_length)
        self._scale = 1.0 / (
            self.sample_rate * np.sum(np.square(self._w))
        )
        self._acc = np.zeros((1, self.segment_length // 2 + 1))
        self._count = 0
        self._next_start = 0

    @property
    def segments_accumulated(self) -> int:
        """Segments folded into the running estimate so far."""
        return self._count

    @property
    def next_start(self) -> int:
        """Start offset of the next segment to be accumulated."""
        return self._next_start

    @property
    def window_values(self) -> np.ndarray:
        """The window applied to every segment (do not mutate)."""
        return self._w

    @property
    def scale(self) -> float:
        """The density scale applied to every periodogram."""
        return float(self._scale)

    def due_starts(self, committed: int) -> list[int]:
        """Start offsets of every whole segment below ``committed``
        not yet accumulated — what :meth:`advance` would consume, in
        order, without consuming them."""
        n_seg = self.segment_length
        starts: list[int] = []
        start = self._next_start
        while start + n_seg <= committed:
            starts.append(start)
            start += self.step
        return starts

    def fold(self, segment_psd: np.ndarray) -> None:
        """Fold one externally-computed segment periodogram.

        ``segment_psd`` must be :func:`welch_segment_psd` of the
        segment at :attr:`next_start` — the kernel batches the FFTs
        across streams and hands each accumulator its rows back in
        segment order, making this the exact addition :meth:`advance`
        would have performed.
        """
        self._acc += segment_psd
        self._count += 1
        self._next_start += self.step

    def advance(self, buffer: np.ndarray, committed: int) -> None:
        """Accumulate every whole segment below ``committed``.

        ``buffer`` is the utterance's contiguous sample prefix (at
        least ``committed`` samples long). Safe to call repeatedly
        with a growing bound; each segment is consumed exactly once,
        in offline order.
        """
        if committed > buffer.shape[0]:
            raise StreamError(
                f"committed {committed} beyond buffered "
                f"{buffer.shape[0]} samples"
            )
        n_seg = self.segment_length
        while self._next_start + n_seg <= committed:
            start = self._next_start
            segment = buffer[np.newaxis, start : start + n_seg]
            self.fold(welch_segment_psd(segment, self._w, self._scale))

    def finalize(
        self, buffer: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(frequencies, psd)`` of the closed ``length``-sample
        utterance, bitwise equal to the offline matrix estimator.

        Signals shorter than one segment delegate wholly to
        :func:`~repro.dsp.spectrum.welch_psd_matrix` (whose segment
        length collapses to the signal length); longer signals finish
        the remaining committed segments here and apply the same
        averaging and one-sided correction.
        """
        if length < 1:
            raise StreamError(
                f"cannot finalize an empty utterance (length {length})"
            )
        if length < self.segment_length:
            if self._count:
                raise StreamError(
                    f"{self._count} segments were committed but the "
                    f"utterance closed at {length} samples — commit() "
                    "overran the close boundary"
                )
            return welch_psd_matrix(
                buffer[np.newaxis, :length],
                self.sample_rate,
                segment_length=min(self.segment_length, length),
                overlap=self.overlap,
                window=self.window,
            )
        n_seg = self.segment_length
        if self._count and self._next_start - self.step + n_seg > length:
            raise StreamError(
                "an accumulated segment extends past the close "
                f"boundary ({length} samples) — commit() overran it"
            )
        self.advance(buffer, length)
        psd = self._acc / self._count
        # One-sided correction, exactly as the offline estimator.
        psd[..., 1:-1] *= 2.0 if n_seg % 2 == 0 else 1.0
        if n_seg % 2 == 1:
            psd[..., 1:] *= 2.0
        freqs = np.fft.rfftfreq(n_seg, d=1.0 / self.sample_rate)
        return freqs, psd


class StreamingTraceExtractor:
    """Per-utterance incremental trace analysis.

    One extractor lives for one utterance: the guard feeds it chunks
    as they arrive, commits the monotone in-utterance lower bound the
    segmenter can prove, and finalizes at close. The result is a
    :class:`~repro.defense.traces.TraceAnalysis` bitwise identical to
    ``analyze_traces(Signal(samples[:length], rate, unit))``.
    """

    def __init__(
        self, sample_rate: float, unit: str = Unit.DIGITAL
    ) -> None:
        if sample_rate < 8000.0:
            raise StreamError(
                "trace extraction needs at least an 8 kHz stream, got "
                f"{sample_rate} Hz"
            )
        self.sample_rate = float(sample_rate)
        self.unit = unit
        self._welch = WelchAccumulator(sample_rate)
        self._buf = np.empty(0, dtype=np.float64)
        self._n = 0
        self._committed = 0
        self._finalized = False

    @property
    def n_fed(self) -> int:
        """Samples fed so far."""
        return self._n

    @property
    def committed(self) -> int:
        """Samples committed as certainly in-utterance."""
        return self._committed

    def feed(self, samples: np.ndarray) -> None:
        """Append a chunk of candidate utterance samples."""
        self._require_open()
        chunk = np.asarray(samples, dtype=np.float64)
        if chunk.ndim != 1:
            raise StreamError(
                f"feed expects a 1-D chunk, got shape {chunk.shape}"
            )
        needed = self._n + chunk.size
        if needed > self._buf.shape[0]:
            grown = np.empty(
                max(needed, 2 * self._buf.shape[0], 4096),
                dtype=np.float64,
            )
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : needed] = chunk
        self._n = needed

    def commit(self, n_samples: int) -> None:
        """Promise that the first ``n_samples`` are in the utterance.

        Monotone; accumulating runs immediately, so the Welch work is
        spread across pushes instead of landing at close.
        """
        self._require_open()
        if n_samples > self._n:
            raise StreamError(
                f"cannot commit {n_samples} of {self._n} fed samples"
            )
        if n_samples <= self._committed:
            return
        self._committed = n_samples
        self._welch.advance(self._buf, n_samples)

    def waveform(self, length: int | None = None) -> np.ndarray:
        """Copy of the fed samples (prefix of ``length`` if given)."""
        length = self._n if length is None else length
        if not 0 <= length <= self._n:
            raise StreamError(
                f"waveform length {length} outside [0, {self._n}]"
            )
        return self._buf[:length].copy()

    def finalize(self, length: int | None = None) -> TraceAnalysis:
        """Close the utterance and assemble its trace analysis.

        ``length`` trims trailing samples that turned out to lie past
        the utterance's end (it must not cut below ``committed``).
        The extractor is spent afterwards.
        """
        self._require_open()
        length = self._n if length is None else length
        if not 0 < length <= self._n:
            raise StreamError(
                f"finalize length {length} outside (0, {self._n}]"
            )
        if length < self._committed:
            raise StreamError(
                f"finalize length {length} below committed "
                f"{self._committed}; commit() overran the close "
                "boundary"
            )
        self._finalized = True
        freqs, psd = self._welch.finalize(self._buf, length)
        batch = SignalBatch(
            self._buf[np.newaxis, :length], self.sample_rate, self.unit
        )
        return analyses_from_psd(batch, freqs, psd)[0]

    def _require_open(self) -> None:
        if self._finalized:
            raise StreamError(
                "this extractor was finalized; create a fresh one per "
                "utterance"
            )
