"""Concurrent device-fleet simulation over the streaming guard.

The ROADMAP's north star is a service in front of *millions* of
devices; the per-request fast path must therefore be independent and
conflict-free (the Harmonia lesson: near-linear scaling comes from
state that multiplexes without coordination). The streaming guard has
exactly that shape — all per-stream state lives in the stream's own
ring buffer, segmenter and extractor; the recogniser and detector are
immutable after enrollment/fit and shared read-only.

:class:`FleetSimulator` exercises it: ``n_streams`` simulated devices,
each an independent audio timeline (ambient lead-in, utterances,
ambient gaps) pushed chunk-by-chunk through its own
:class:`~repro.stream.guard.StreamingGuard`. The utterance recordings
are synthesised through the *batched*
:class:`~repro.sim.pipeline.TrialPipeline` — one transmission per
class, every stream's per-utterance variation riding the stacked
per-trial stages — with per-stream generators spawned from one
:class:`numpy.random.SeedSequence`, so the whole fleet is a pure
function of its config:

* verdicts, boundaries and stream-time latencies are bitwise
  identical for every ``workers`` value (threads change wall clock,
  never results — the determinism test pins this);
* wall-clock throughput is reported separately
  (:attr:`FleetReport.wall_seconds`), which is what
  ``benchmarks/bench_stream.py`` records in ``BENCH_stream.json``.

Within one simulator, streams are processed by a thread pool.
Threads, not processes, are the right model *inside* a core's worth
of work: the heavy per-chunk DSP is NumPy/SciPy work that releases
the GIL, and sharing the enrolled recogniser and fitted detector
read-only costs nothing, where per-process copies would dominate
start-up. To scale *across* cores, :mod:`repro.stream.shard`
partitions the fleet into per-process shards, each running this
module's stream loop over its own partition — which is why the loop
body (:func:`drive_stream`), the per-class synthesis
(:func:`synthesize_utterances`, emission-cached per process through
:mod:`repro.sim.engine`) and the result containers here are all
module-level and picklable.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.attack.attacker import SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.defense.dataset import GENUINE_REFERENCE_SPL
from repro.defense.detector import InaudibleVoiceDetector
from repro.dsp.signals import Signal
from repro.errors import StreamError
from repro.hardware.devices import horn_tweeter
from repro.obs.metrics import LatencyRecorder, current_metrics
from repro.obs.trace import current_tracer, maybe_span
from repro.sim.cache import stable_key
from repro.sim.engine import EmissionSpec, cached_voice
from repro.sim.pipeline import build_pipeline, level_stage
from repro.sim.spec import RIG_POSITION, get_scenario
from repro.speech.recognizer import KeywordRecognizer
from repro.stream.guard import StreamingGuard, UtteranceOutcome
from repro.stream.segmenter import SegmenterConfig


@dataclass(frozen=True)
class FleetConfig:
    """Recipe for one fleet run (a pure function of this config).

    Attributes
    ----------
    scenario:
        Registered environment the devices record in.
    n_streams:
        Concurrent simulated devices.
    utterances_per_stream:
        Utterances on each device's timeline.
    attack_fraction:
        Probability that an utterance is an inaudible-command attack
        (drawn deterministically from the master seed).
    command:
        Corpus command every utterance carries.
    distance_m:
        Source-to-device distance; ``None`` takes the scenario's
        default.
    chunk_s:
        Push granularity — the simulated driver's buffer size.
    lead_in_s, gap_s:
        Ambient-only audio before the first utterance and after each
        one. The lead-in seeds the segmenter's noise floor; the gap
        must exceed its close horizon or utterances merge.
    background_ratio:
        Inter-utterance background RMS as a fraction of the stream's
        mean utterance RMS. The default approximates the recordings'
        own ambient/self-noise floor (roughly 20 dB below
        conversational speech), which matters beyond realism: the
        recogniser's cepstral mean normalisation is computed over the
        segmented utterance, so background much *quieter* than the
        in-recording floor skews the cepstral mean and degrades DTW
        distances.
    seed:
        Master seed for the whole fleet.
    workers:
        Thread count for processing (per shard, when sharded);
        results are identical for every value.
    shards:
        Process-shard count for :class:`~repro.stream.shard.
        ShardedFleetSimulator`. :class:`FleetSimulator` itself is the
        single-shard loop and ignores this knob; results are bitwise
        identical for every value (the shard determinism suite and CI
        job pin it).
    vectorized:
        Drive streams through the structure-of-arrays kernel
        (:mod:`repro.stream.kernel`) instead of the per-stream scalar
        loop. Results are bitwise identical either way — the knob
        exists for the differential oracle and for benchmarking the
        scalar baseline.
    batch_streams:
        Streams per kernel lockstep group (vectorized mode). Any
        value produces the identical digest; it trades batched-op
        width against working-set memory.
    """

    scenario: str = "free_field"
    n_streams: int = 8
    utterances_per_stream: int = 1
    attack_fraction: float = 0.5
    command: str = "ok_google"
    distance_m: float | None = None
    chunk_s: float = 0.05
    lead_in_s: float = 0.4
    gap_s: float = 0.5
    background_ratio: float = 0.1
    seed: int = 0
    workers: int = 1
    shards: int = 1
    vectorized: bool = True
    batch_streams: int = 64

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise StreamError(
                f"n_streams must be >= 1, got {self.n_streams}"
            )
        if self.utterances_per_stream < 1:
            raise StreamError(
                "utterances_per_stream must be >= 1, got "
                f"{self.utterances_per_stream}"
            )
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise StreamError(
                "attack_fraction must be in [0, 1], got "
                f"{self.attack_fraction}"
            )
        if self.chunk_s <= 0:
            raise StreamError(
                f"chunk_s must be positive, got {self.chunk_s}"
            )
        if self.lead_in_s < 0 or self.gap_s < 0:
            raise StreamError("lead_in_s and gap_s must be >= 0")
        if not 0 < self.background_ratio < 1:
            raise StreamError(
                "background_ratio must be in (0, 1), got "
                f"{self.background_ratio}"
            )
        if self.workers < 1:
            raise StreamError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.shards < 1:
            raise StreamError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.batch_streams < 1:
            raise StreamError(
                f"batch_streams must be >= 1, got {self.batch_streams}"
            )
        get_scenario(self.scenario)  # fail at construction, not mid-run


@dataclass(frozen=True)
class UtteranceDigest:
    """Deterministic summary of one gated utterance's outcome."""

    start_sample: int
    end_sample: int
    emitted_at_sample: int
    accepted: bool
    command: str
    vetoed: bool
    executed_command: str | None
    score: float | None
    forced: bool

    @classmethod
    def of(cls, result: UtteranceOutcome) -> "UtteranceDigest":
        outcome = result.outcome
        return cls(
            start_sample=result.start_sample,
            end_sample=result.end_sample,
            emitted_at_sample=result.emitted_at_sample,
            accepted=outcome.recognition.accepted,
            command=outcome.recognition.command,
            vetoed=outcome.vetoed,
            executed_command=outcome.executed_command,
            score=(
                None
                if outcome.detection is None
                else outcome.detection.score
            ),
            forced=result.forced,
        )


@dataclass(frozen=True)
class StreamResult:
    """One device's deterministic outcome digest."""

    index: int
    is_attack: tuple[bool, ...]
    duration_s: float
    utterances: tuple[UtteranceDigest, ...]


@dataclass
class FleetReport:
    """What a fleet run produced and what it cost.

    Everything except the wall-clock fields is deterministic given
    the config; the determinism suite compares :meth:`digest` across
    worker counts and the golden S1 table renders only deterministic
    fields.
    """

    config: FleetConfig
    sample_rate: float
    streams: list[StreamResult] = field(repr=False)
    #: Workload-generation cost: utterance synthesis plus ambient
    #: timeline assembly. A deployment receives its audio, so neither
    #: belongs in the streaming throughput denominator.
    prepare_seconds: float = 0.0
    #: The streaming hot path: ingestion, segmentation, Welch
    #: accumulation and the decide phase (recognition + detection).
    wall_seconds: float = 0.0
    #: Per-shard streaming wall clock (empty when unsharded). The
    #: spread diagnoses load imbalance; the coordinator's
    #: ``wall_seconds`` stays the throughput denominator.
    shard_wall_seconds: tuple[float, ...] = ()

    @property
    def audio_seconds(self) -> float:
        """Total stream audio processed, in stream seconds."""
        return sum(s.duration_s for s in self.streams)

    @property
    def n_utterances(self) -> int:
        return sum(len(s.utterances) for s in self.streams)

    @property
    def n_vetoed(self) -> int:
        return sum(
            u.vetoed for s in self.streams for u in s.utterances
        )

    @property
    def n_executed(self) -> int:
        return sum(
            u.executed_command is not None
            for s in self.streams
            for u in s.utterances
        )

    @property
    def n_rejected(self) -> int:
        """Utterances the recogniser did not accept at all."""
        return sum(
            not u.accepted for s in self.streams for u in s.utterances
        )

    def latencies_s(self) -> list[float]:
        """Per-utterance detection latency, in stream seconds."""
        return [
            (u.emitted_at_sample - u.end_sample) / self.sample_rate
            for s in self.streams
            for u in s.utterances
        ]

    def latency_stats(self) -> LatencyRecorder:
        """The raw latency samples as an exact-quantile recorder —
        mean, max and p50/p90/p99/p99.9 from the per-utterance
        samples, not a sketch. What the S1 table's latency rows and
        ``--metrics-out`` report."""
        recorder = LatencyRecorder("fleet.latency_s")
        for latency in self.latencies_s():
            recorder.observe(latency)
        return recorder

    def record_metrics(self, registry) -> None:
        """Publish this report into a metrics registry."""
        registry.counter("fleet.streams").inc(len(self.streams))
        registry.counter("fleet.utterances").inc(self.n_utterances)
        registry.counter("fleet.vetoed").inc(self.n_vetoed)
        registry.counter("fleet.executed").inc(self.n_executed)
        registry.counter("fleet.rejected").inc(self.n_rejected)
        registry.gauge("fleet.audio_seconds").set(self.audio_seconds)
        registry.gauge("fleet.wall_seconds").set(self.wall_seconds)
        registry.gauge("fleet.prepare_seconds").set(
            self.prepare_seconds
        )
        recorder = registry.latency("fleet.latency_s")
        for latency in self.latencies_s():
            recorder.observe(latency)
        if self.shard_wall_seconds:
            shard_recorder = registry.latency("fleet.shard_wall_s")
            for wall in self.shard_wall_seconds:
                shard_recorder.observe(wall)

    @property
    def realtime_factor(self) -> float:
        """Stream-seconds processed per wall second — the number of
        live 1x device streams this machine sustains."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.audio_seconds / self.wall_seconds

    def digest(self) -> tuple:
        """Deterministic fingerprint for cross-worker comparisons."""
        return tuple(
            (s.index, s.is_attack, s.duration_s, s.utterances)
            for s in self.streams
        )

    def digest_hex(self) -> str:
        """The digest as a stable hex hash — what the S1 table prints
        and the CI shard-determinism job diffs byte-for-byte."""
        return stable_key(self.digest())


def attack_fleet_emission(command: str, voice_seed: int):
    """Inaudible-command emission for one fleet voice (cache builder).

    Module-level so :class:`~repro.sim.engine.EmissionSpec` pickles it
    by reference and each shard process materialises the multi-MB
    waveform at most once, whatever its task count.
    """
    voice = cached_voice(command, voice_seed)
    return SingleSpeakerAttacker(horn_tweeter(), RIG_POSITION).emit(
        voice
    )


def genuine_fleet_emission(command: str, voice_seed: int):
    """Audible-playback emission for one fleet voice (cache builder)."""
    voice = cached_voice(command, voice_seed)
    return AudiblePlaybackAttacker(
        RIG_POSITION, speech_spl_at_1m=GENUINE_REFERENCE_SPL
    ).emit(voice)


def synthesize_utterances(
    scenario_name: str,
    command: str,
    distance_m: float | None,
    rng_children: list[np.random.Generator],
    attack_mask: np.ndarray,
    voice_seed: int = 0,
) -> tuple[list[Signal], KeywordRecognizer]:
    """One device-rate recording per utterance slot, plus the device's
    enrolled recogniser.

    Slots are grouped by class (``attack_mask``) and executed through
    the *batched* trial pipeline — synthesis is two pipeline passes
    regardless of slot count, with per-slot generators keeping every
    stream's draws independent; each trial's outcome depends only on
    its own generator, so synthesising any *subset* of slots (a
    shard's partition) is bitwise identical to the full pass. The
    voice and both class emissions come from the engine's per-process
    cache (:func:`~repro.sim.engine.cached_voice`,
    :class:`~repro.sim.engine.EmissionSpec`), so a shard process
    builds each waveform once and reuses it across every task it
    executes. Shared by the fleet simulator, the shard workers and
    the S1 experiment's parity probes.
    """
    spec = get_scenario(scenario_name)
    scenario = spec.build(command, distance_m)
    device = spec.build_device()
    recordings: list[Signal | None] = [None] * len(rng_children)
    attack_slots = [
        k for k in range(len(rng_children)) if attack_mask[k]
    ]
    genuine_slots = [
        k for k in range(len(rng_children)) if not attack_mask[k]
    ]
    if attack_slots:
        emission = EmissionSpec(
            attack_fleet_emission, (command, voice_seed)
        )
        pipeline = build_pipeline(
            scenario, device.microphone, recognize=False
        )
        ctx = pipeline.context(list(emission.sources()))
        rows = pipeline.run_trials(
            ctx, [rng_children[k] for k in attack_slots]
        )
        for k, row in zip(attack_slots, rows):
            recordings[k] = row
    if genuine_slots:
        emission = EmissionSpec(
            genuine_fleet_emission, (command, voice_seed)
        )
        pipeline = build_pipeline(
            scenario,
            device.microphone,
            recognize=False,
            gain_stage=level_stage(55.0, 68.0, GENUINE_REFERENCE_SPL),
        )
        ctx = pipeline.context(list(emission.sources()))
        rows = pipeline.run_trials(
            ctx, [rng_children[k] for k in genuine_slots]
        )
        for k, row in zip(genuine_slots, rows):
            recordings[k] = row
    return recordings, device.recognizer


def fleet_seed_plan(
    config: FleetConfig,
) -> tuple[
    np.ndarray,
    list[np.random.SeedSequence],
    list[np.random.SeedSequence],
]:
    """The fleet's deterministic randomness layout.

    Returns ``(attack_mask, trial_seqs, stream_seqs)`` — the
    per-slot class assignment, one :class:`~numpy.random.SeedSequence`
    per utterance slot and one per stream — all derived from
    ``config.seed`` alone. This is the *single* statement of the
    fleet's seeding: :class:`FleetSimulator` and the sharded driver
    (:mod:`repro.stream.shard`) both consume it, which is what makes
    their digests bitwise comparable for any shard count.
    """
    n_slots = config.n_streams * config.utterances_per_stream
    root = np.random.SeedSequence(config.seed)
    assign_seq, trials_seq, streams_seq = root.spawn(3)
    attack_mask = (
        np.random.default_rng(assign_seq).random(n_slots)
        < config.attack_fraction
    )
    return (
        attack_mask,
        trials_seq.spawn(n_slots),
        streams_seq.spawn(config.n_streams),
    )


@dataclass
class RawStreamRun:
    """One stream's undigested outcome — the unit the commit queue
    drains.

    The driving thread produces this (cheap: references, no
    summarisation) and moves on to its next stream; converting the
    guard outcomes into the deterministic :class:`StreamResult`
    digest happens off the ingestion hot path (in the shard's commit
    queue, or inline in the unsharded simulator).
    """

    index: int
    is_attack: tuple[bool, ...]
    duration_s: float
    outcomes: list[UtteranceOutcome]

    def commit(self) -> StreamResult:
        return StreamResult(
            index=self.index,
            is_attack=self.is_attack,
            duration_s=self.duration_s,
            utterances=tuple(
                UtteranceDigest.of(outcome)
                for outcome in self.outcomes
            ),
        )


def assemble_timeline(
    config: FleetConfig,
    rate: float,
    recordings: list[Signal],
    rng: np.random.Generator,
) -> np.ndarray:
    """One device's full audio timeline: lead-in, utterances, gaps.

    Shared verbatim by the scalar loop (:func:`drive_stream`) and the
    vectorized kernel, so both paths consume the identical generator
    draws — the first link in their bitwise-parity chain.
    """
    mean_rms = float(
        np.mean([recording.rms() for recording in recordings])
    )
    background_rms = config.background_ratio * max(mean_rms, 1e-12)

    def ambient(duration_s: float) -> np.ndarray:
        n = int(round(duration_s * rate))
        return rng.normal(0.0, 1.0, n) * background_rms

    pieces = [ambient(config.lead_in_s)]
    for recording in recordings:
        pieces.append(recording.samples)
        pieces.append(ambient(config.gap_s))
    return np.concatenate(pieces)


def drive_stream(
    config: FleetConfig,
    detector: InaudibleVoiceDetector,
    segmenter_config: SegmenterConfig | None,
    index: int,
    rate: float,
    recognizer: KeywordRecognizer,
    recordings: list[Signal],
    attack_mask: np.ndarray,
    seed_seq: np.random.SeedSequence,
    timeline: np.ndarray | None = None,
) -> RawStreamRun:
    """One device's whole timeline through its own guard.

    Module-level (picklable by reference) and a pure function of its
    arguments, so the unsharded thread pool and the per-process shard
    workers execute the identical loop body. This is the scalar
    reference path; :func:`drive_streams` dispatches to it or to the
    structure-of-arrays kernel per ``config.vectorized``.

    ``timeline`` (optional) supplies a pre-assembled timeline —
    exactly ``assemble_timeline(config, rate, recordings, rng)`` for
    this stream's generator — so the dispatcher can account synthesis
    as prepare time; omitted, the stream assembles its own.
    """
    if timeline is None:
        rng = np.random.default_rng(seed_seq)
        timeline = assemble_timeline(config, rate, recordings, rng)
    samples = timeline
    guard = StreamingGuard(
        recognizer,
        detector,
        rate,
        unit=recordings[0].unit,
        gated=True,
        segmenter_config=segmenter_config,
    )
    chunk = max(1, int(round(config.chunk_s * rate)))
    tracer = current_tracer()
    stream_started = time.perf_counter() if tracer is not None else 0.0
    outcomes: list[UtteranceOutcome] = []
    for start in range(0, samples.shape[0], chunk):
        outcomes.extend(guard.push(samples[start : start + chunk]))
    outcomes.extend(guard.flush())
    if tracer is not None:
        ended = time.perf_counter()
        stream_span = tracer.record(
            "stream",
            stream_started,
            ended,
            stream=index,
            utterances=len(outcomes),
        )
        # Same marker shape as the kernel's decide phase: zero wall
        # width, stream-time latency in the attributes.
        for outcome in outcomes:
            tracer.record(
                "utterance",
                ended,
                ended,
                parent_id=stream_span.span_id,
                stream=index,
                latency_s=(
                    outcome.emitted_at_sample - outcome.end_sample
                )
                / rate,
                accepted=bool(outcome.outcome.recognition.accepted),
                forced=outcome.forced,
            )
    return RawStreamRun(
        index=index,
        is_attack=tuple(bool(flag) for flag in attack_mask),
        duration_s=samples.shape[0] / rate,
        outcomes=outcomes,
    )


def check_fleet_rate(recordings: list[Signal]) -> float:
    """The fleet's single device rate, or a :class:`StreamError`."""
    rate = recordings[0].sample_rate
    for recording in recordings:
        if recording.sample_rate != rate:
            raise StreamError(
                "all fleet recordings must share one device rate"
            )
    return rate


def drive_streams(
    config: FleetConfig,
    detector: InaudibleVoiceDetector,
    segmenter_config: SegmenterConfig | None,
    stream_indices,
    rate: float,
    recognizer: KeywordRecognizer,
    recordings: list[Signal],
    attack_mask: np.ndarray,
    stream_seqs,
    emit,
    profile=None,
) -> float:
    """Drive a partition of streams, scalar or vectorized.

    The single streaming dispatcher: the unsharded simulator and every
    shard worker (:func:`repro.stream.shard.run_shard`) route through
    it, so ``config.vectorized`` composes with sharding — each shard
    process runs its own kernel groups over its own partition.

    ``stream_indices[pos]`` is the *global* index of local position
    ``pos``; ``recordings``/``attack_mask`` are laid out per local
    slot (``pos * utterances_per_stream`` onward). Every finished
    stream's :class:`RawStreamRun` is handed to ``emit`` (a commit
    queue's ``put``, or a plain list append) — completion order may
    vary with threading, but each run's content never does.

    Returns the seconds spent *assembling* timelines (ambient
    synthesis — workload generation, identical draws on both paths),
    which callers subtract from their streaming wall clock and account
    as prepare time alongside utterance synthesis.
    """
    per = config.utterances_per_stream
    n_local = len(stream_indices)
    # The nesting stack is thread-local: capture the dispatcher's
    # parent here so pool threads attach their spans under it.
    tracer = current_tracer()
    dispatch_parent = (
        tracer.current_parent() if tracer is not None else None
    )

    if config.vectorized:
        from repro.stream import kernel  # deferred: kernel imports us

        group_bounds = list(
            range(0, n_local, config.batch_streams)
        )

        def drive_group(lo: int) -> float:
            hi = min(lo + config.batch_streams, n_local)
            positions = range(lo, hi)
            context = (
                tracer.attached(dispatch_parent)
                if tracer is not None
                else nullcontext()
            )
            with context:
                runs, assembled = kernel.drive_stream_group(
                    config,
                    detector,
                    segmenter_config,
                    [int(stream_indices[pos]) for pos in positions],
                    rate,
                    recognizer,
                    [
                        recordings[pos * per : (pos + 1) * per]
                        for pos in positions
                    ],
                    [
                        attack_mask[pos * per : (pos + 1) * per]
                        for pos in positions
                    ],
                    [stream_seqs[pos] for pos in positions],
                    profile=profile,
                )
            for run in runs:
                emit(run)
            return assembled

        if config.workers == 1 or len(group_bounds) == 1:
            return sum(drive_group(lo) for lo in group_bounds)
        with ThreadPoolExecutor(
            max_workers=config.workers
        ) as pool:
            return sum(pool.map(drive_group, group_bounds))

    def drive(pos: int) -> float:
        started = time.perf_counter()
        rng = np.random.default_rng(stream_seqs[pos])
        timeline = assemble_timeline(
            config,
            rate,
            recordings[pos * per : (pos + 1) * per],
            rng,
        )
        assembled = time.perf_counter() - started
        if tracer is not None:
            tracer.record(
                "assemble",
                started,
                started + assembled,
                parent_id=dispatch_parent,
                stream=int(stream_indices[pos]),
            )
        context = (
            tracer.attached(dispatch_parent)
            if tracer is not None
            else nullcontext()
        )
        with context:
            run = drive_stream(
                config,
                detector,
                segmenter_config,
                int(stream_indices[pos]),
                rate,
                recognizer,
                recordings[pos * per : (pos + 1) * per],
                attack_mask[pos * per : (pos + 1) * per],
                stream_seqs[pos],
                timeline=timeline,
            )
        emit(run)
        return assembled

    if config.workers == 1:
        return sum(drive(pos) for pos in range(n_local))
    with ThreadPoolExecutor(max_workers=config.workers) as pool:
        return sum(pool.map(drive, range(n_local)))


class FleetSimulator:
    """Run many concurrent device streams against one trained guard.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.defense.detector.InaudibleVoiceDetector`
        shared read-only by every stream's guard.
    config:
        The fleet recipe.
    segmenter_config:
        Optional gate tuning shared by every stream.
    """

    def __init__(
        self,
        detector: InaudibleVoiceDetector,
        config: FleetConfig,
        segmenter_config: SegmenterConfig | None = None,
    ) -> None:
        self.detector = detector
        self.config = config
        self.segmenter_config = segmenter_config

    # -- the run -------------------------------------------------------

    def run(self, profile=None) -> FleetReport:
        """Synthesise, stream and decide the whole fleet.

        ``profile`` (an optional
        :class:`~repro.sim.pipeline.StageProfile`) accumulates the
        vectorized kernel's per-stage wall time — how the streaming
        benchmark attributes ingestion vs segmentation vs Welch vs
        decide cost.
        """
        config = self.config
        with maybe_span(
            "fleet",
            streams=config.n_streams,
            vectorized=config.vectorized,
        ):
            attack_mask, trial_seqs, stream_seqs = fleet_seed_plan(
                config
            )
            trial_rngs = [
                np.random.default_rng(child) for child in trial_seqs
            ]

            prepare_started = time.perf_counter()
            with maybe_span("synthesize", slots=len(trial_rngs)):
                recordings, recognizer = synthesize_utterances(
                    config.scenario,
                    config.command,
                    config.distance_m,
                    trial_rngs,
                    attack_mask,
                    voice_seed=config.seed,
                )
            prepare_seconds = time.perf_counter() - prepare_started
            rate = check_fleet_rate(recordings)

            raw_runs: list[RawStreamRun] = []
            started = time.perf_counter()
            assembled = drive_streams(
                config,
                self.detector,
                self.segmenter_config,
                range(config.n_streams),
                rate,
                recognizer,
                recordings,
                attack_mask,
                stream_seqs,
                raw_runs.append,
                profile=profile,
            )
            results = [
                raw.commit()
                for raw in sorted(raw_runs, key=lambda raw: raw.index)
            ]
            # Timeline assembly is workload generation (a deployment
            # receives its audio); it counts as prepare, not
            # streaming.
            prepare_seconds += assembled
            wall_seconds = time.perf_counter() - started - assembled
            report = FleetReport(
                config=config,
                sample_rate=rate,
                streams=results,
                prepare_seconds=prepare_seconds,
                wall_seconds=wall_seconds,
            )
        registry = current_metrics()
        if registry is not None:
            report.record_metrics(registry)
        return report
