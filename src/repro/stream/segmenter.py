"""Online VAD-gated utterance segmentation.

The offline pipeline trims silence with a *global* statistic (the
95th-percentile frame energy of the whole recording, see
:func:`repro.speech.vad.voice_activity`); a live stream has no whole
recording. The online segmenter replaces the global reference with a
causal one — an exponential moving average of inactive-frame energies
(the noise floor) — and gates with hysteresis:

* **open** when ``open_frames`` consecutive frames exceed
  ``open_factor x floor``;
* while open, a frame is *voiced* when it exceeds the lower
  ``close_factor x floor`` (hysteresis keeps soft phoneme tails in,
  the same concern the offline threshold rationale documents);
* **close** once ``hangover_frames + close_frames`` frames pass with
  no voiced frame — the hangover bridges intra-word dips exactly like
  the offline VAD's, and the extra ``close_frames`` are the price of
  causality (the close decision *is* the guard's detection latency).

Utterance boundaries mirror :func:`~repro.speech.vad.trim_silence`:
``start = first_open_frame * hop - padding`` and
``end = last_voiced_frame * hop + frame_len + padding``.

The segmenter is a pure frame-level state machine: it consumes frame
energies (index + values) and emits :class:`UtteranceOpened` /
:class:`UtteranceClosed` events. It never touches samples — the
:class:`~repro.stream.guard.StreamingGuard` composes it with the ring
buffer and the incremental extractor. :meth:`commit_bound` is the
monotone in-utterance lower bound that drives the extractor's
incremental Welch accumulation: every sample below
``last_voiced * hop + frame_len + padding`` is inside the eventual
utterance whatever happens next, because ``last_voiced`` only grows
and the close formula is exactly that expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.framing import frame_params
from repro.errors import StreamError


@dataclass(frozen=True)
class SegmenterConfig:
    """Tuning of the online gate.

    Attributes
    ----------
    frame_length_s, hop_length_s:
        Analysis frame grid (defaults match the offline VAD).
    open_factor:
        A frame is *active* (may open an utterance) above
        ``open_factor x noise_floor``.
    close_factor:
        While open, a frame is *voiced* above
        ``close_factor x noise_floor`` (must be below
        ``open_factor`` — hysteresis).
    open_frames:
        Consecutive active frames required to open.
    hangover_frames:
        Unvoiced frames bridged inside an utterance (intra-word
        dips), matching the offline VAD default.
    close_frames:
        Additional unvoiced frames, beyond the hangover, before the
        close decision fires. ``(hangover_frames + close_frames) x
        hop`` is the deterministic component of detection latency.
    padding_s:
        Context kept on both sides of the voiced span. The default is
        *zero*, deliberately diverging from
        :func:`~repro.speech.vad.trim_silence`'s 50 ms: the detector
        is trained on pipeline recordings that carry no silence
        context, and padded boundaries hand it an utterance on/off
        step that makes the trace- and voice-band envelopes co-move —
        inflating the envelope-correlation features of *genuine*
        speech toward the attack class. Tight boundaries reproduce
        the training distribution; the recogniser re-trims internally
        (its own VAD), so recognition does not need the context
        either.
    floor_alpha:
        EMA coefficient of the noise-floor tracker (updated on
        inactive frames while no utterance is open).
    floor_min:
        Numeric floor of the tracker, so an all-zero lead-in cannot
        drive the thresholds to zero.
    max_utterance_s:
        Force-close bound; a stuck-open gate (e.g. a TV left on near
        the device) must not buffer unbounded audio.
    """

    frame_length_s: float = 0.02
    hop_length_s: float = 0.01
    open_factor: float = 4.0
    close_factor: float = 2.0
    open_frames: int = 2
    hangover_frames: int = 8
    close_frames: int = 15
    padding_s: float = 0.0
    floor_alpha: float = 0.05
    floor_min: float = 1e-8
    max_utterance_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.close_factor <= self.open_factor:
            raise StreamError(
                "need 0 < close_factor <= open_factor, got "
                f"{self.close_factor} and {self.open_factor}"
            )
        if self.open_frames < 1:
            raise StreamError(
                f"open_frames must be >= 1, got {self.open_frames}"
            )
        if self.hangover_frames < 0 or self.close_frames < 1:
            raise StreamError(
                "need hangover_frames >= 0 and close_frames >= 1, got "
                f"{self.hangover_frames} and {self.close_frames}"
            )
        if not 0 < self.floor_alpha <= 1:
            raise StreamError(
                f"floor_alpha must be in (0, 1], got {self.floor_alpha}"
            )
        if self.floor_min <= 0:
            raise StreamError(
                f"floor_min must be positive, got {self.floor_min}"
            )
        if self.padding_s < 0:
            raise StreamError(
                f"padding_s must be >= 0, got {self.padding_s}"
            )
        if self.max_utterance_s <= 0:
            raise StreamError(
                f"max_utterance_s must be positive, got "
                f"{self.max_utterance_s}"
            )


@dataclass(frozen=True)
class UtteranceOpened:
    """An utterance began; retain samples from ``start_sample`` on."""

    frame: int
    start_sample: int


@dataclass(frozen=True)
class UtteranceClosed:
    """An utterance ended.

    ``end_sample`` is the uncapped boundary formula (the guard caps
    it at the stream head); ``frame`` is the frame whose processing
    fired the decision; ``forced`` marks a ``max_utterance_s`` cut.
    """

    frame: int
    start_sample: int
    end_sample: int
    forced: bool


class OnlineSegmenter:
    """Causal utterance gate over a stream's frame energies."""

    def __init__(
        self,
        sample_rate: float,
        config: SegmenterConfig | None = None,
    ) -> None:
        self.config = config or SegmenterConfig()
        self.sample_rate = float(sample_rate)
        self.frame_len, self.hop = frame_params(
            sample_rate,
            self.config.frame_length_s,
            self.config.hop_length_s,
        )
        self.pad = int(round(self.config.padding_s * sample_rate))
        self.max_samples = int(
            round(self.config.max_utterance_s * sample_rate)
        )
        self._floor: float | None = None
        self._frames_seen = 0
        self._consecutive_active = 0
        self._open = False
        self._start = 0
        self._last_voiced = 0

    # -- state ---------------------------------------------------------

    @property
    def in_utterance(self) -> bool:
        """Whether an utterance is currently open."""
        return self._open

    @property
    def utterance_start(self) -> int:
        """Absolute start sample of the open utterance."""
        if not self._open:
            raise StreamError("no utterance is open")
        return self._start

    @property
    def noise_floor(self) -> float:
        """Current noise-floor estimate (after at least one frame)."""
        if self._floor is None:
            raise StreamError("no frames processed yet")
        return self._floor

    def commit_bound(self, head: int) -> int:
        """Samples certainly inside the open utterance, capped at
        ``head`` (what has actually been pushed)."""
        if not self._open:
            raise StreamError("no utterance is open")
        bound = self._last_voiced * self.hop + self.frame_len + self.pad
        bound = min(bound, self._start + self.max_samples, head)
        return max(bound, self._start)

    def lookback_sample(self) -> int:
        """Earliest sample a *future* utterance could start at.

        While closed, any utterance opening at a later frame ``f``
        starts no earlier than
        ``(f - open_frames + 1) * hop - pad``; the guard uses this to
        release ring-buffer history it can never need again.
        """
        earliest_open = self._frames_seen - self.config.open_frames + 1
        return max(0, earliest_open * self.hop - self.pad)

    # -- the state machine --------------------------------------------

    def process(
        self, first_frame: int, energies: np.ndarray
    ) -> list[UtteranceOpened | UtteranceClosed]:
        """Advance over newly-completed frames, emitting events.

        ``first_frame`` must equal the number of frames already
        processed — the chunker's contract — so the segmenter sees
        every frame exactly once, in order, whatever the push sizes.
        """
        if first_frame != self._frames_seen:
            raise StreamError(
                f"expected frame {self._frames_seen}, got "
                f"{first_frame}; frames must arrive exactly once, in "
                "order"
            )
        cfg = self.config
        events: list[UtteranceOpened | UtteranceClosed] = []
        for energy in np.asarray(energies, dtype=np.float64):
            f = self._frames_seen
            energy = float(energy)
            if self._floor is None:
                self._floor = max(energy, cfg.floor_min)
            if not self._open:
                if energy > cfg.open_factor * self._floor:
                    self._consecutive_active += 1
                else:
                    self._consecutive_active = 0
                    self._floor = max(
                        (1.0 - cfg.floor_alpha) * self._floor
                        + cfg.floor_alpha * energy,
                        cfg.floor_min,
                    )
                if self._consecutive_active >= cfg.open_frames:
                    open_first = f - cfg.open_frames + 1
                    self._open = True
                    self._start = max(0, open_first * self.hop - self.pad)
                    self._last_voiced = f
                    self._consecutive_active = 0
                    events.append(UtteranceOpened(f, self._start))
            else:
                if energy > cfg.close_factor * self._floor:
                    self._last_voiced = f
                quiet_for = f - self._last_voiced
                frame_end = f * self.hop + self.frame_len
                if frame_end - self._start >= self.max_samples:
                    events.append(self._close(f, forced=True))
                elif quiet_for >= cfg.hangover_frames + cfg.close_frames:
                    events.append(self._close(f, forced=False))
            self._frames_seen += 1
        return events

    def _close(self, frame: int, forced: bool) -> UtteranceClosed:
        if forced:
            end = self._start + self.max_samples
        else:
            end = (
                self._last_voiced * self.hop + self.frame_len + self.pad
            )
        start = self._start
        self._open = False
        self._consecutive_active = 0
        return UtteranceClosed(frame, start, end, forced)

    def flush(self, head: int) -> UtteranceClosed | None:
        """End of stream: close any open utterance at its natural
        boundary, capped at ``head`` (the samples actually pushed —
        mid-stream closes leave the cap to the guard, but at flush
        the boundary formula may reach past the stream's end).
        """
        if not self._open:
            return None
        event = self._close(self._frames_seen, forced=False)
        return UtteranceClosed(
            frame=event.frame,
            start_sample=event.start_sample,
            end_sample=min(event.end_sample, head),
            forced=event.forced,
        )
