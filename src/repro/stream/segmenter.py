"""Online VAD-gated utterance segmentation.

The offline pipeline trims silence with a *global* statistic (the
95th-percentile frame energy of the whole recording, see
:func:`repro.speech.vad.voice_activity`); a live stream has no whole
recording. The online segmenter replaces the global reference with a
causal one — an exponential moving average of inactive-frame energies
(the noise floor) — and gates with hysteresis:

* **open** when ``open_frames`` consecutive frames exceed
  ``open_factor x floor``;
* while open, a frame is *voiced* when it exceeds the lower
  ``close_factor x floor`` (hysteresis keeps soft phoneme tails in,
  the same concern the offline threshold rationale documents);
* **close** once ``hangover_frames + close_frames`` frames pass with
  no voiced frame — the hangover bridges intra-word dips exactly like
  the offline VAD's, and the extra ``close_frames`` are the price of
  causality (the close decision *is* the guard's detection latency).

Utterance boundaries mirror :func:`~repro.speech.vad.trim_silence`:
``start = first_open_frame * hop - padding`` and
``end = last_voiced_frame * hop + frame_len + padding``.

The segmenter is a pure frame-level state machine: it consumes frame
energies (index + values) and emits :class:`UtteranceOpened` /
:class:`UtteranceClosed` events. It never touches samples — the
:class:`~repro.stream.guard.StreamingGuard` composes it with the ring
buffer and the incremental extractor. :meth:`commit_bound` is the
monotone in-utterance lower bound that drives the extractor's
incremental Welch accumulation: every sample below
``last_voiced * hop + frame_len + padding`` is inside the eventual
utterance whatever happens next, because ``last_voiced`` only grows
and the close formula is exactly that expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.framing import frame_params
from repro.errors import StreamError


@dataclass(frozen=True)
class SegmenterConfig:
    """Tuning of the online gate.

    Attributes
    ----------
    frame_length_s, hop_length_s:
        Analysis frame grid (defaults match the offline VAD).
    open_factor:
        A frame is *active* (may open an utterance) above
        ``open_factor x noise_floor``.
    close_factor:
        While open, a frame is *voiced* above
        ``close_factor x noise_floor`` (must be below
        ``open_factor`` — hysteresis).
    open_frames:
        Consecutive active frames required to open.
    hangover_frames:
        Unvoiced frames bridged inside an utterance (intra-word
        dips), matching the offline VAD default.
    close_frames:
        Additional unvoiced frames, beyond the hangover, before the
        close decision fires. ``(hangover_frames + close_frames) x
        hop`` is the deterministic component of detection latency.
    padding_s:
        Context kept on both sides of the voiced span. The default is
        *zero*, deliberately diverging from
        :func:`~repro.speech.vad.trim_silence`'s 50 ms: the detector
        is trained on pipeline recordings that carry no silence
        context, and padded boundaries hand it an utterance on/off
        step that makes the trace- and voice-band envelopes co-move —
        inflating the envelope-correlation features of *genuine*
        speech toward the attack class. Tight boundaries reproduce
        the training distribution; the recogniser re-trims internally
        (its own VAD), so recognition does not need the context
        either.
    floor_alpha:
        EMA coefficient of the noise-floor tracker (updated on
        inactive frames while no utterance is open).
    floor_min:
        Numeric floor of the tracker, so an all-zero lead-in cannot
        drive the thresholds to zero.
    max_utterance_s:
        Force-close bound; a stuck-open gate (e.g. a TV left on near
        the device) must not buffer unbounded audio.
    """

    frame_length_s: float = 0.02
    hop_length_s: float = 0.01
    open_factor: float = 4.0
    close_factor: float = 2.0
    open_frames: int = 2
    hangover_frames: int = 8
    close_frames: int = 15
    padding_s: float = 0.0
    floor_alpha: float = 0.05
    floor_min: float = 1e-8
    max_utterance_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.close_factor <= self.open_factor:
            raise StreamError(
                "need 0 < close_factor <= open_factor, got "
                f"{self.close_factor} and {self.open_factor}"
            )
        if self.open_frames < 1:
            raise StreamError(
                f"open_frames must be >= 1, got {self.open_frames}"
            )
        if self.hangover_frames < 0 or self.close_frames < 1:
            raise StreamError(
                "need hangover_frames >= 0 and close_frames >= 1, got "
                f"{self.hangover_frames} and {self.close_frames}"
            )
        if not 0 < self.floor_alpha <= 1:
            raise StreamError(
                f"floor_alpha must be in (0, 1], got {self.floor_alpha}"
            )
        if self.floor_min <= 0:
            raise StreamError(
                f"floor_min must be positive, got {self.floor_min}"
            )
        if self.padding_s < 0:
            raise StreamError(
                f"padding_s must be >= 0, got {self.padding_s}"
            )
        if self.max_utterance_s <= 0:
            raise StreamError(
                f"max_utterance_s must be positive, got "
                f"{self.max_utterance_s}"
            )


@dataclass(frozen=True)
class UtteranceOpened:
    """An utterance began; retain samples from ``start_sample`` on."""

    frame: int
    start_sample: int


@dataclass(frozen=True)
class UtteranceClosed:
    """An utterance ended.

    ``end_sample`` is the uncapped boundary formula (the guard caps
    it at the stream head); ``frame`` is the frame whose processing
    fired the decision; ``forced`` marks a ``max_utterance_s`` cut.
    """

    frame: int
    start_sample: int
    end_sample: int
    forced: bool


class OnlineSegmenter:
    """Causal utterance gate over a stream's frame energies."""

    def __init__(
        self,
        sample_rate: float,
        config: SegmenterConfig | None = None,
    ) -> None:
        self.config = config or SegmenterConfig()
        self.sample_rate = float(sample_rate)
        self.frame_len, self.hop = frame_params(
            sample_rate,
            self.config.frame_length_s,
            self.config.hop_length_s,
        )
        self.pad = int(round(self.config.padding_s * sample_rate))
        self.max_samples = int(
            round(self.config.max_utterance_s * sample_rate)
        )
        self._floor: float | None = None
        self._frames_seen = 0
        self._consecutive_active = 0
        self._open = False
        self._start = 0
        self._last_voiced = 0

    # -- state ---------------------------------------------------------

    @property
    def in_utterance(self) -> bool:
        """Whether an utterance is currently open."""
        return self._open

    @property
    def utterance_start(self) -> int:
        """Absolute start sample of the open utterance."""
        if not self._open:
            raise StreamError("no utterance is open")
        return self._start

    @property
    def noise_floor(self) -> float:
        """Current noise-floor estimate (after at least one frame)."""
        if self._floor is None:
            raise StreamError("no frames processed yet")
        return self._floor

    def commit_bound(self, head: int) -> int:
        """Samples certainly inside the open utterance, capped at
        ``head`` (what has actually been pushed)."""
        if not self._open:
            raise StreamError("no utterance is open")
        bound = self._last_voiced * self.hop + self.frame_len + self.pad
        bound = min(bound, self._start + self.max_samples, head)
        return max(bound, self._start)

    def lookback_sample(self) -> int:
        """Earliest sample a *future* utterance could start at.

        While closed, any utterance opening at a later frame ``f``
        starts no earlier than
        ``(f - open_frames + 1) * hop - pad``; the guard uses this to
        release ring-buffer history it can never need again.
        """
        earliest_open = self._frames_seen - self.config.open_frames + 1
        return max(0, earliest_open * self.hop - self.pad)

    # -- the state machine --------------------------------------------

    def process(
        self, first_frame: int, energies: np.ndarray
    ) -> list[UtteranceOpened | UtteranceClosed]:
        """Advance over newly-completed frames, emitting events.

        ``first_frame`` must equal the number of frames already
        processed — the chunker's contract — so the segmenter sees
        every frame exactly once, in order, whatever the push sizes.
        """
        if first_frame != self._frames_seen:
            raise StreamError(
                f"expected frame {self._frames_seen}, got "
                f"{first_frame}; frames must arrive exactly once, in "
                "order"
            )
        cfg = self.config
        events: list[UtteranceOpened | UtteranceClosed] = []
        for energy in np.asarray(energies, dtype=np.float64):
            f = self._frames_seen
            energy = float(energy)
            if self._floor is None:
                self._floor = max(energy, cfg.floor_min)
            if not self._open:
                if energy > cfg.open_factor * self._floor:
                    self._consecutive_active += 1
                else:
                    self._consecutive_active = 0
                    self._floor = max(
                        (1.0 - cfg.floor_alpha) * self._floor
                        + cfg.floor_alpha * energy,
                        cfg.floor_min,
                    )
                if self._consecutive_active >= cfg.open_frames:
                    open_first = f - cfg.open_frames + 1
                    self._open = True
                    self._start = max(0, open_first * self.hop - self.pad)
                    self._last_voiced = f
                    self._consecutive_active = 0
                    events.append(UtteranceOpened(f, self._start))
            else:
                if energy > cfg.close_factor * self._floor:
                    self._last_voiced = f
                quiet_for = f - self._last_voiced
                frame_end = f * self.hop + self.frame_len
                if frame_end - self._start >= self.max_samples:
                    events.append(self._close(f, forced=True))
                elif quiet_for >= cfg.hangover_frames + cfg.close_frames:
                    events.append(self._close(f, forced=False))
            self._frames_seen += 1
        return events

    def _close(self, frame: int, forced: bool) -> UtteranceClosed:
        if forced:
            end = self._start + self.max_samples
        else:
            end = (
                self._last_voiced * self.hop + self.frame_len + self.pad
            )
        start = self._start
        self._open = False
        self._consecutive_active = 0
        return UtteranceClosed(frame, start, end, forced)

    def flush(self, head: int) -> UtteranceClosed | None:
        """End of stream: close any open utterance at its natural
        boundary, capped at ``head`` (the samples actually pushed —
        mid-stream closes leave the cap to the guard, but at flush
        the boundary formula may reach past the stream's end).
        """
        if not self._open:
            return None
        event = self._close(self._frames_seen, forced=False)
        return UtteranceClosed(
            frame=event.frame,
            start_sample=event.start_sample,
            end_sample=min(event.end_sample, head),
            forced=event.forced,
        )


@dataclass(frozen=True)
class BatchOpened:
    """Utterances began on ``rows`` at (per-row) frame ``frame``.

    All rows opening during the same lockstep cycle share the frame
    index and therefore the start-sample formula, so ``start_sample``
    is one scalar — identical to what each row's scalar segmenter
    would have emitted.
    """

    frame: int
    rows: np.ndarray
    start_sample: int


@dataclass(frozen=True)
class BatchClosed:
    """Utterances ended on ``rows`` at frame ``frame``.

    ``end_samples`` carries the per-row uncapped boundary formula and
    ``forced`` the per-row ``max_utterance_s`` flags — elementwise the
    fields of the scalar :class:`UtteranceClosed` events.
    """

    frame: int
    rows: np.ndarray
    start_samples: np.ndarray
    end_samples: np.ndarray
    forced: np.ndarray


class OnlineSegmenterBatch:
    """Structure-of-arrays :class:`OnlineSegmenter` over many streams.

    The scalar state machine is one Python branch per (stream, frame);
    this batch form keeps every per-stream scalar as one slot of a
    ``(n_streams,)`` array and advances all streams through a frame
    with a handful of masked vector ops. Per row it is *bitwise* the
    scalar machine: the EMA update, the threshold comparisons and the
    boundary formulas are the same float64 elementwise operations the
    scalar code performs on Python floats, applied in the same
    in-frame order (open-state snapshot first, so a row opening at
    frame ``f`` never runs the close branch at ``f``, and vice versa).

    Rows fall out of lockstep only by *length*: the kernel zero-pads
    shorter timelines, and the per-frame ``valid`` mask (row still has
    real frames) freezes a finished row's state exactly where its
    scalar counterpart stopped.
    """

    def __init__(
        self,
        n_streams: int,
        sample_rate: float,
        config: SegmenterConfig | None = None,
    ) -> None:
        if n_streams < 1:
            raise StreamError(
                f"n_streams must be >= 1, got {n_streams}"
            )
        self.config = config or SegmenterConfig()
        self.n_streams = int(n_streams)
        self.sample_rate = float(sample_rate)
        self.frame_len, self.hop = frame_params(
            sample_rate,
            self.config.frame_length_s,
            self.config.hop_length_s,
        )
        self.pad = int(round(self.config.padding_s * sample_rate))
        self.max_samples = int(
            round(self.config.max_utterance_s * sample_rate)
        )
        n = self.n_streams
        self._floor = np.zeros(n, dtype=np.float64)
        self._seen = np.zeros(n, dtype=bool)
        self._frames_seen = np.zeros(n, dtype=np.int64)
        self._consecutive = np.zeros(n, dtype=np.int64)
        self._open = np.zeros(n, dtype=bool)
        self._start = np.zeros(n, dtype=np.int64)
        self._last_voiced = np.zeros(n, dtype=np.int64)
        self._frames_done = 0  # global lockstep frame counter

    # -- state ---------------------------------------------------------

    @property
    def in_utterance(self) -> np.ndarray:
        """Boolean mask of rows with an open utterance (a copy)."""
        return self._open.copy()

    @property
    def utterance_starts(self) -> np.ndarray:
        """Per-row absolute start samples (valid where open)."""
        return self._start.copy()

    def commit_bounds(self, heads: np.ndarray) -> np.ndarray:
        """Per-row in-utterance commit bounds, elementwise the scalar
        :meth:`OnlineSegmenter.commit_bound` formula.

        ``heads`` is each row's true stream head (its timeline length
        capped at the lockstep head). Values are meaningful only where
        :attr:`in_utterance` — the kernel masks by the open rows.
        """
        bound = self._last_voiced * self.hop + self.frame_len + self.pad
        bound = np.minimum(bound, self._start + self.max_samples)
        bound = np.minimum(bound, np.asarray(heads, dtype=np.int64))
        return np.maximum(bound, self._start)

    def lookback_samples(self) -> np.ndarray:
        """Per-row earliest start of any *future* utterance,
        elementwise :meth:`OnlineSegmenter.lookback_sample`."""
        earliest = self._frames_seen - self.config.open_frames + 1
        return np.maximum(0, earliest * self.hop - self.pad)

    # -- the state machine --------------------------------------------

    def process_block(
        self,
        first_frame: int,
        energies: np.ndarray,
        valid: np.ndarray,
    ) -> list[BatchOpened | BatchClosed]:
        """Advance all rows over a block of lockstep frames.

        ``energies`` is ``(n_streams, n_new)`` (from the batched ring);
        ``valid[i, j]`` marks whether lockstep frame ``first_frame + j``
        is a *real* frame of row ``i`` (frames over a finished row's
        zero padding are skipped, freezing that row's state). Because
        every row starts at frame 0 and rows only ever *stop* being
        valid, a valid row's private frame counter always equals the
        lockstep frame index — which is why rows opening together
        share one start-sample value.
        """
        if first_frame != self._frames_done:
            raise StreamError(
                f"expected frame {self._frames_done}, got "
                f"{first_frame}; frames must arrive exactly once, in "
                "order"
            )
        energies = np.asarray(energies, dtype=np.float64)
        valid = np.asarray(valid, dtype=bool)
        if energies.shape != valid.shape or energies.shape[0] != self.n_streams:
            raise StreamError(
                f"energies {energies.shape} / valid {valid.shape} must "
                f"both be ({self.n_streams}, n_new)"
            )
        cfg = self.config
        events: list[BatchOpened | BatchClosed] = []
        for j in range(energies.shape[1]):
            f = first_frame + j
            e = energies[:, j]
            v = valid[:, j]
            if not v.any():
                self._frames_done += 1
                continue
            # First real frame of a row seeds its noise floor.
            newly = v & ~self._seen
            if newly.any():
                self._floor[newly] = np.maximum(e[newly], cfg.floor_min)
                self._seen |= newly
            # Snapshot the open state *at frame entry*: a row opening
            # this frame must not also run the close branch, and a row
            # closing this frame must not run the open branch.
            inut = v & self._open
            gated = v & ~self._open
            if gated.any():
                active = e > cfg.open_factor * self._floor
                inc = gated & active
                dec = gated & ~active
                self._consecutive[inc] += 1
                self._consecutive[dec] = 0
                if dec.any():
                    self._floor[dec] = np.maximum(
                        (1.0 - cfg.floor_alpha) * self._floor[dec]
                        + cfg.floor_alpha * e[dec],
                        cfg.floor_min,
                    )
                opening = gated & (self._consecutive >= cfg.open_frames)
                if opening.any():
                    open_first = f - cfg.open_frames + 1
                    start = max(0, open_first * self.hop - self.pad)
                    self._open |= opening
                    self._start[opening] = start
                    self._last_voiced[opening] = f
                    self._consecutive[opening] = 0
                    events.append(
                        BatchOpened(f, np.flatnonzero(opening), start)
                    )
            if inut.any():
                voiced = inut & (e > cfg.close_factor * self._floor)
                self._last_voiced[voiced] = f
                frame_end = f * self.hop + self.frame_len
                forced = inut & (
                    frame_end - self._start >= self.max_samples
                )
                natural = (
                    inut
                    & ~forced
                    & (
                        f - self._last_voiced
                        >= cfg.hangover_frames + cfg.close_frames
                    )
                )
                closing = forced | natural
                if closing.any():
                    rows = np.flatnonzero(closing)
                    ends = np.where(
                        forced[rows],
                        self._start[rows] + self.max_samples,
                        self._last_voiced[rows] * self.hop
                        + self.frame_len
                        + self.pad,
                    )
                    events.append(
                        BatchClosed(
                            f,
                            rows,
                            self._start[rows].copy(),
                            ends,
                            forced[rows].copy(),
                        )
                    )
                    self._open[closing] = False
                    self._consecutive[closing] = 0
            self._frames_seen[v] += 1
            self._frames_done += 1
        return events

    def flush_open_rows(self, heads: np.ndarray) -> BatchClosed | None:
        """End of stream: close every still-open row naturally.

        Mirrors :meth:`OnlineSegmenter.flush` per row — the boundary
        formula capped at that row's own head, fired at that row's own
        frame count (rows whose timelines ended early froze at their
        scalar counterpart's frame count). Rows closing at different
        frames are folded into one event; the kernel orders flush
        outcomes per row, so the shared ``frame`` field is reported as
        each row's own count via ``frames_seen_of``.
        """
        if not self._open.any():
            return None
        rows = np.flatnonzero(self._open)
        heads = np.asarray(heads, dtype=np.int64)
        ends = np.minimum(
            self._last_voiced[rows] * self.hop + self.frame_len + self.pad,
            heads[rows],
        )
        event = BatchClosed(
            int(self._frames_done),
            rows,
            self._start[rows].copy(),
            ends,
            np.zeros(len(rows), dtype=bool),
        )
        self._open[rows] = False
        self._consecutive[rows] = 0
        return event

    def frames_seen_of(self, row: int) -> int:
        """Row ``row``'s private frame count (== its scalar
        segmenter's ``_frames_seen``)."""
        return int(self._frames_seen[row])
