"""Process-sharded fleet driver: the fleet scaled across cores.

:class:`~repro.stream.fleet.FleetSimulator` multiplexes one core's
worth of device streams over a thread pool; this module is the layer
above it, borrowing the NSO concurrency-model playbook (SNIPPETS.md
§1) the way Harmonia partitions replicated reads:

* **Independent shards.** The fleet's streams are partitioned into
  per-process shards (:func:`plan_shards`); each shard synthesises
  its own slice of utterance recordings through the batched trial
  pipeline and runs the *same* stream loop
  (:func:`~repro.stream.fleet.drive_stream`) over its partition.
  Nothing coordinates on the hot path — per-stream state lives in the
  stream's own guard, the recogniser/detector are shard-local copies,
  and the multi-MB emissions come from the engine's per-process cache
  (:mod:`repro.sim.engine`), built once per shard process however
  many tasks it executes.
* **Commit queue.** Inside each shard, driving threads hand every
  finished stream's raw outcomes to a :class:`CommitQueue` — a
  drainer thread that converts guard outcomes into deterministic
  digests off the ingestion hot loop, the commit-queue idiom that
  keeps slow result materialisation out of the critical path. The
  coordinator drains shard results the same way, folding them into a
  :class:`ShardAccumulator` as each future completes.
* **Determinism.** All randomness is laid out by
  :func:`~repro.stream.fleet.fleet_seed_plan` *before* any
  scheduling, and each stream's computation is a pure function of its
  own :class:`~numpy.random.SeedSequence` and utterance slots — so
  the merged fleet digest is bitwise identical to the unsharded
  simulator for every ``shards`` × ``workers`` combination (pinned by
  a hypothesis property over arbitrary partitions and the CI
  shard-determinism job).

Throughput accounting: :attr:`FleetReport.wall_seconds` for a sharded
run is the *slowest shard's streaming wall clock* — the steady-state
critical path, and the denominator of
:attr:`~repro.stream.fleet.FleetReport.realtime_factor`; per-shard
walls are kept in :attr:`~repro.stream.fleet.FleetReport.
shard_wall_seconds` so load imbalance is visible.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.defense.detector import InaudibleVoiceDetector
from repro.errors import StreamError
from repro.obs.metrics import current_metrics
from repro.obs.trace import (
    Span,
    Tracer,
    activate as activate_tracer,
    current_tracer,
    maybe_span,
)
from repro.sim.engine import partition_evenly
from repro.stream.fleet import (
    FleetConfig,
    FleetReport,
    StreamResult,
    check_fleet_rate,
    drive_streams,
    fleet_seed_plan,
    synthesize_utterances,
)
from repro.stream.segmenter import SegmenterConfig

__all__ = [
    "CommitQueue",
    "ShardAccumulator",
    "ShardResult",
    "ShardTask",
    "ShardedFleetSimulator",
    "plan_shards",
    "run_shard",
]


_CLOSE = object()


class CommitQueue:
    """Drain slow result materialisation off an ingestion hot path.

    Producers (stream-driving threads) :meth:`put` raw items and
    return to their next unit of work immediately; a single drainer
    thread applies ``commit`` to each item in arrival order.
    :meth:`close` waits for the backlog, then returns the committed
    results (and re-raises the first commit error, if any — after the
    queue has fully drained, so producers can never block on a dead
    consumer).
    """

    def __init__(self, commit: Callable[[Any], Any]) -> None:
        self._commit = commit
        self._queue: queue.Queue = queue.Queue()
        self._committed: list[Any] = []
        self._error: BaseException | None = None
        self._closed = False
        self._drainer = threading.Thread(
            target=self._drain, daemon=True
        )
        self._drainer.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            if self._error is not None:
                continue  # keep consuming so close() never hangs
            try:
                self._committed.append(self._commit(item))
            except BaseException as error:  # re-raised in close()
                self._error = error

    def put(self, item: Any) -> None:
        """Enqueue one raw item for committing (non-blocking)."""
        if self._closed:
            raise StreamError("cannot put into a closed CommitQueue")
        self._queue.put(item)

    def close(self) -> list[Any]:
        """Drain the backlog and return the committed results."""
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSE)
            self._drainer.join()
        if self._error is not None:
            raise self._error
        return self._committed


@dataclass(frozen=True)
class ShardTask:
    """One shard's picklable work unit.

    Carries *recipes*, not waveforms: per-stream
    :class:`~numpy.random.SeedSequence` children and per-slot class
    flags. The executing process re-derives generators and
    synthesises its own recordings (through the per-process emission
    cache), so the pickle cost per shard is the detector plus a few
    seed sequences — never audio.
    """

    config: FleetConfig
    shard_index: int
    stream_indices: tuple[int, ...]
    stream_seqs: tuple[np.random.SeedSequence, ...]
    #: Per stream, one SeedSequence per utterance slot.
    slot_seqs: tuple[tuple[np.random.SeedSequence, ...], ...]
    #: Per stream, one is-attack flag per utterance slot.
    slot_attacks: tuple[tuple[bool, ...], ...]
    detector: InaudibleVoiceDetector
    segmenter_config: SegmenterConfig | None
    #: Coordinator-side tracing request. Pool workers cannot see the
    #: coordinator's ambient tracer, so the flag travels with the
    #: task; a traced shard returns its spans in the result for the
    #: coordinator to adopt. Never affects stream outcomes.
    trace: bool = False

    def __post_init__(self) -> None:
        lengths = {
            len(self.stream_indices),
            len(self.stream_seqs),
            len(self.slot_seqs),
            len(self.slot_attacks),
        }
        if lengths != {len(self.stream_indices)}:
            raise StreamError(
                "shard task stream fields must be parallel: got "
                f"lengths {sorted(lengths)}"
            )
        if not self.stream_indices:
            raise StreamError("a shard needs at least one stream")


@dataclass
class ShardResult:
    """One shard's merged-ready outcome slice."""

    shard_index: int
    sample_rate: float
    streams: list[StreamResult]
    prepare_seconds: float
    wall_seconds: float
    #: The shard's trace (empty unless the task asked for one); the
    #: coordinator re-bases these into its own trace with fresh,
    #: non-overlapping span ids.
    spans: list[Span] = field(default_factory=list)


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard: synthesise its slice, stream every device.

    Module-level so the process pool pickles it by reference; also
    called inline by the single-shard degenerate case and the
    hypothesis partition property, so every shard count exercises the
    identical code path. With ``task.trace`` set the whole shard runs
    under a fresh local tracer — a ``shard`` root span with the
    synthesis, kernel-cycle and utterance spans nested below — and
    ships its spans home in the result.
    """
    if not task.trace:
        return _run_shard_body(task)
    local = Tracer()
    with activate_tracer(local):
        with local.span(
            "shard",
            shard=task.shard_index,
            streams=len(task.stream_indices),
        ):
            result = _run_shard_body(task)
    result.spans = local.spans
    return result


def _run_shard_body(task: ShardTask) -> ShardResult:
    config = task.config
    rng_children = [
        np.random.default_rng(seq)
        for stream in task.slot_seqs
        for seq in stream
    ]
    attack_mask = np.array(
        [flag for stream in task.slot_attacks for flag in stream],
        dtype=bool,
    )
    prepare_started = time.perf_counter()
    with maybe_span("synthesize", slots=len(rng_children)):
        recordings, recognizer = synthesize_utterances(
            config.scenario,
            config.command,
            config.distance_m,
            rng_children,
            attack_mask,
            voice_seed=config.seed,
        )
    prepare_seconds = time.perf_counter() - prepare_started
    rate = check_fleet_rate(recordings)

    commits = CommitQueue(lambda raw: raw.commit())

    started = time.perf_counter()
    assembled = drive_streams(
        config,
        task.detector,
        task.segmenter_config,
        task.stream_indices,
        rate,
        recognizer,
        recordings,
        attack_mask,
        task.stream_seqs,
        commits.put,
    )
    streams = sorted(commits.close(), key=lambda s: s.index)
    # Timeline assembly is workload generation, accounted as prepare
    # (same split as the unsharded simulator).
    wall_seconds = time.perf_counter() - started - assembled
    return ShardResult(
        shard_index=task.shard_index,
        sample_rate=rate,
        streams=streams,
        prepare_seconds=prepare_seconds + assembled,
        wall_seconds=wall_seconds,
    )


class ShardAccumulator:
    """Mergeable fleet accumulator: shard slices in, one report out.

    Order-insensitive (shards arrive as they finish) and validating:
    a duplicate stream index fails at :meth:`add`, a missing one at
    :meth:`report` — a shard can never be silently dropped or double
    counted.
    """

    def __init__(self, n_streams: int) -> None:
        self.n_streams = n_streams
        self._streams: dict[int, StreamResult] = {}
        self._rate: float | None = None
        self._prepare: list[float] = []
        self._walls: dict[int, float] = {}

    def add(self, result: ShardResult) -> None:
        """Fold one shard's slice in (any completion order)."""
        if self._rate is None:
            self._rate = result.sample_rate
        elif result.sample_rate != self._rate:
            raise StreamError(
                "shards disagree on the device rate: "
                f"{result.sample_rate} vs {self._rate}"
            )
        for stream in result.streams:
            if not 0 <= stream.index < self.n_streams:
                raise StreamError(
                    f"shard {result.shard_index} produced stream "
                    f"{stream.index}, outside the fleet's "
                    f"{self.n_streams} streams"
                )
            if stream.index in self._streams:
                raise StreamError(
                    f"stream {stream.index} produced by two shards — "
                    "the partition overlaps"
                )
            self._streams[stream.index] = stream
        self._prepare.append(result.prepare_seconds)
        self._walls[result.shard_index] = result.wall_seconds

    def report(
        self, config: FleetConfig, wall_seconds: float | None = None
    ) -> FleetReport:
        """The merged fleet report, in stream-index order.

        ``wall_seconds`` defaults to the slowest shard's streaming
        wall — the steady-state critical path.
        """
        missing = [
            index
            for index in range(self.n_streams)
            if index not in self._streams
        ]
        if missing:
            raise StreamError(
                f"streams {missing} missing — the shard partition "
                "does not cover the fleet"
            )
        shard_walls = tuple(
            self._walls[index] for index in sorted(self._walls)
        )
        return FleetReport(
            config=config,
            sample_rate=self._rate,
            streams=[
                self._streams[index]
                for index in range(self.n_streams)
            ],
            prepare_seconds=max(self._prepare, default=0.0),
            wall_seconds=(
                max(shard_walls, default=0.0)
                if wall_seconds is None
                else wall_seconds
            ),
            shard_wall_seconds=shard_walls,
        )


def plan_shards(
    detector: InaudibleVoiceDetector,
    config: FleetConfig,
    segmenter_config: SegmenterConfig | None = None,
    partitions: Sequence[Sequence[int]] | None = None,
    trace: bool = False,
) -> list[ShardTask]:
    """Deterministic shard tasks for one fleet config.

    By default streams are split into ``config.shards`` contiguous,
    near-equal partitions (:func:`~repro.sim.engine.partition_evenly`
    — a pure function of the counts, never of worker scheduling).
    ``partitions`` overrides the layout with any disjoint cover of
    the stream indices, which is how the hypothesis property asserts
    that *every* partition merges to the same digest.
    """
    attack_mask, trial_seqs, stream_seqs = fleet_seed_plan(config)
    per = config.utterances_per_stream
    if partitions is None:
        partitions = partition_evenly(
            list(range(config.n_streams)), config.shards
        )
    tasks = []
    for shard_index, indices in enumerate(partitions):
        indices = tuple(int(i) for i in indices)
        tasks.append(
            ShardTask(
                config=config,
                shard_index=shard_index,
                stream_indices=indices,
                stream_seqs=tuple(stream_seqs[i] for i in indices),
                slot_seqs=tuple(
                    tuple(trial_seqs[i * per : (i + 1) * per])
                    for i in indices
                ),
                slot_attacks=tuple(
                    tuple(
                        bool(flag)
                        for flag in attack_mask[i * per : (i + 1) * per]
                    )
                    for i in indices
                ),
                detector=detector,
                segmenter_config=segmenter_config,
                trace=trace,
            )
        )
    return tasks


class ShardedFleetSimulator:
    """Run the fleet partitioned across processes.

    Parameters
    ----------
    detector:
        A fitted detector; pickled once per shard, shared read-only
        by that shard's streams.
    config:
        The fleet recipe. ``config.shards`` is the process count;
        ``config.workers`` the thread count inside each shard.
    segmenter_config:
        Optional gate tuning shared by every stream.

    ``shards=1`` runs the single shard in-process (no executor, no
    pickling — the degenerate case, same numbers), and is bitwise
    identical to :class:`~repro.stream.fleet.FleetSimulator` for the
    same config.
    """

    def __init__(
        self,
        detector: InaudibleVoiceDetector,
        config: FleetConfig,
        segmenter_config: SegmenterConfig | None = None,
    ) -> None:
        self.detector = detector
        self.config = config
        self.segmenter_config = segmenter_config

    def run(self) -> FleetReport:
        """Plan, fan out, drain and merge the whole fleet."""
        config = self.config
        tracer = current_tracer()
        tasks = plan_shards(
            self.detector,
            config,
            self.segmenter_config,
            trace=tracer is not None,
        )
        accumulator = ShardAccumulator(config.n_streams)

        def fold(result: ShardResult, parent_id: int | None) -> None:
            accumulator.add(result)
            if tracer is not None and result.spans:
                tracer.adopt(result.spans, parent_id=parent_id)
                result.spans = []

        with maybe_span(
            "sharded-fleet",
            shards=len(tasks),
            streams=config.n_streams,
        ) as fleet_span:
            if len(tasks) == 1:
                fold(run_shard(tasks[0]), fleet_span)
            else:
                max_workers = min(len(tasks), os.cpu_count() or 1)
                with ProcessPoolExecutor(
                    max_workers=max_workers
                ) as pool:
                    futures = [
                        pool.submit(run_shard, task)
                        for task in tasks
                    ]
                    # Coordinator-side commit draining: fold each
                    # shard in as it finishes rather than barriering
                    # on the full list.
                    for future in as_completed(futures):
                        fold(future.result(), fleet_span)
            report = accumulator.report(config)
        registry = current_metrics()
        if registry is not None:
            report.record_metrics(registry)
        return report
