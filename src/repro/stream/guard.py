"""The online guarded assistant: chunks in, vetoed utterances out.

:class:`StreamingGuard` is the deployment the paper describes — the
defense sitting *in front of* a live assistant — realised over this
repository's offline components. It composes the ring buffer
(:class:`~repro.stream.chunker.ChunkedStream`), the causal gate
(:class:`~repro.stream.segmenter.OnlineSegmenter`) and the
incremental extractor
(:class:`~repro.stream.features.StreamingTraceExtractor`), and
decides through the *same*
:func:`repro.defense.guard.guard_outcome` policy as the offline
:class:`~repro.defense.guard.GuardedVoiceAssistant`.

Parity contract: for a given sample sequence forming one utterance,
the emitted :class:`~repro.defense.guard.GuardedOutcome` — verdict,
score and features — is bitwise identical to the offline assistant
processing the same samples as one
:class:`~repro.dsp.signals.Signal`, for **any** partition of those
samples into push chunks. The recogniser runs once on the closed
utterance (DTW is inherently utterance-level); the detector's Welch
accumulation happens online as chunks arrive, through
:class:`~repro.stream.features.WelchAccumulator`'s bitwise-matched
segment walk, so close-time work is only the envelope filters.

Two gating modes:

* **gated** (default) — the online segmenter delimits utterances;
  :meth:`push` returns the utterances closed by that chunk, each with
  its deterministic, sample-denominated detection latency.
* **gateless** (``gated=False``) — the caller delimits utterances
  (:meth:`end_utterance`), which is how the parity suites and the S1
  experiment compare a chunked stream against the offline guard on
  identical sample spans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.features import features_from_analysis
from repro.defense.guard import GuardedOutcome, guard_outcome
from repro.dsp.signals import Signal, Unit
from repro.errors import DefenseError, StreamError
from repro.speech.recognizer import KeywordRecognizer
from repro.stream.chunker import ChunkedStream
from repro.stream.features import StreamingTraceExtractor
from repro.stream.segmenter import (
    OnlineSegmenter,
    SegmenterConfig,
    UtteranceClosed,
    UtteranceOpened,
)


@dataclass(frozen=True)
class UtteranceOutcome:
    """One gated utterance's verdict, with its stream bookkeeping.

    Attributes
    ----------
    outcome:
        The guard's decision, shaped exactly like the offline
        assistant's.
    start_sample, end_sample:
        Absolute utterance boundaries in the stream.
    emitted_at_sample:
        Stream head when the verdict was emitted. The gap to
        ``end_sample`` is the detection latency in *stream time* —
        deterministic for a given chunking, unlike wall clock.
    forced:
        Whether the segmenter force-closed at ``max_utterance_s``.
    """

    outcome: GuardedOutcome
    start_sample: int
    end_sample: int
    emitted_at_sample: int
    forced: bool

    def latency_s(self, sample_rate: float) -> float:
        """Detection latency in stream seconds (audio time)."""
        return (self.emitted_at_sample - self.end_sample) / sample_rate


class StreamingGuard:
    """Online counterpart of the offline guarded voice assistant.

    Parameters
    ----------
    recognizer:
        An enrolled :class:`~repro.speech.recognizer.KeywordRecognizer`.
    detector:
        A trained
        :class:`~repro.defense.detector.InaudibleVoiceDetector`.
    sample_rate:
        Device rate of the incoming stream.
    unit:
        Unit of the incoming samples (device recordings are digital).
    gated:
        ``True`` installs the online segmenter; ``False`` leaves
        utterance delimitation to the caller (:meth:`end_utterance`).
    segmenter_config:
        Gate tuning (gated mode only).
    """

    def __init__(
        self,
        recognizer: KeywordRecognizer,
        detector: InaudibleVoiceDetector,
        sample_rate: float,
        unit: str = Unit.DIGITAL,
        gated: bool = True,
        segmenter_config: SegmenterConfig | None = None,
    ) -> None:
        if not recognizer.commands:
            raise DefenseError(
                "the recogniser has no enrolled commands; enroll "
                "before installing the guard"
            )
        if sample_rate < 8000.0:
            raise StreamError(
                "the guard needs at least an 8 kHz stream, got "
                f"{sample_rate} Hz"
            )
        self.recognizer = recognizer
        self.detector = detector
        self.sample_rate = float(sample_rate)
        self.unit = unit
        self.gated = bool(gated)
        self._extractor: StreamingTraceExtractor | None = None
        if self.gated:
            config = segmenter_config or SegmenterConfig()
            self._stream = ChunkedStream(
                sample_rate,
                config.frame_length_s,
                config.hop_length_s,
            )
            self._segmenter = OnlineSegmenter(sample_rate, config)
            self._fed = 0
        elif segmenter_config is not None:
            raise StreamError(
                "segmenter_config is meaningless with gated=False"
            )

    # -- gated mode ----------------------------------------------------

    def push(self, chunk: np.ndarray) -> list[UtteranceOutcome]:
        """Feed a chunk; returns the utterances it closed (gated), or
        an empty list (gateless — call :meth:`end_utterance`)."""
        if not self.gated:
            self._feed_gateless(chunk)
            return []
        head = self._stream.push(chunk)
        first, energies = self._stream.pending_frame_energies()
        events = self._segmenter.process(first, energies)
        outcomes: list[UtteranceOutcome] = []
        for event in events:
            if isinstance(event, UtteranceOpened):
                self._extractor = StreamingTraceExtractor(
                    self.sample_rate, self.unit
                )
                self._fed = event.start_sample
            elif isinstance(event, UtteranceClosed):
                outcomes.append(self._close(event, head))
        if self._segmenter.in_utterance:
            # Spread the Welch work across pushes: feed everything
            # buffered, commit the segmenter's proven lower bound.
            if self._fed < head:
                start = self._segmenter.utterance_start
                self._extractor.feed(self._stream.read(self._fed, head))
                self._fed = head
                self._extractor.commit(
                    self._segmenter.commit_bound(head) - start
                )
        self._release(head)
        return outcomes

    def flush(self) -> list[UtteranceOutcome]:
        """End of stream: close and decide any open utterance."""
        if not self.gated:
            raise StreamError(
                "flush() is for gated streams; gateless callers use "
                "end_utterance()"
            )
        head = self._stream.head
        event = self._segmenter.flush(head)
        outcomes = []
        if event is not None:
            outcomes.append(self._close(event, head))
        self._release(head)
        return outcomes

    def _close(
        self, event: UtteranceClosed, head: int
    ) -> UtteranceOutcome:
        end = min(event.end_sample, head)
        if self._fed < end:
            self._extractor.feed(self._stream.read(self._fed, end))
            self._fed = end
        extractor = self._extractor
        self._extractor = None
        outcome = self._decide(extractor, end - event.start_sample)
        return UtteranceOutcome(
            outcome=outcome,
            start_sample=event.start_sample,
            end_sample=end,
            emitted_at_sample=head,
            forced=event.forced,
        )

    def _release(self, head: int) -> None:
        next_frame_start = self._stream.frames_emitted * self._stream.hop
        if self._segmenter.in_utterance:
            keep_from = min(next_frame_start, self._fed)
        else:
            keep_from = min(
                next_frame_start, self._segmenter.lookback_sample()
            )
        self._stream.release(max(self._stream.tail, keep_from))

    # -- gateless mode -------------------------------------------------

    def _feed_gateless(self, chunk: np.ndarray) -> None:
        if self._extractor is None:
            self._extractor = StreamingTraceExtractor(
                self.sample_rate, self.unit
            )
        self._extractor.feed(chunk)
        # Caller-delimited utterances: everything pushed so far is in
        # the utterance, so the Welch accumulation may run eagerly.
        self._extractor.commit(self._extractor.n_fed)

    def end_utterance(self) -> GuardedOutcome:
        """Close the caller-delimited utterance and decide it.

        Bitwise identical to the offline assistant's ``process`` of
        the concatenated pushed samples, whatever the chunking.
        """
        if self.gated:
            raise StreamError(
                "end_utterance() is for gateless streams; gated "
                "streams close through their segmenter (or flush())"
            )
        if self._extractor is None or self._extractor.n_fed == 0:
            raise StreamError(
                "no samples pushed since the last utterance"
            )
        extractor = self._extractor
        self._extractor = None
        return self._decide(extractor, extractor.n_fed)

    # -- the shared decision path -------------------------------------

    def _decide(
        self, extractor: StreamingTraceExtractor, length: int
    ) -> GuardedOutcome:
        recording = Signal(
            extractor.waveform(length), self.sample_rate, self.unit
        )
        recognition = self.recognizer.recognize(recording)

        def detect():
            vector = features_from_analysis(
                extractor.finalize(length),
                subset=self.detector.feature_subset,
            )
            return self.detector.classify_features(vector)

        return guard_outcome(recognition, detect)

    def process_recording(
        self, recording: Signal, chunk_samples: int
    ) -> GuardedOutcome:
        """Stream one recording through in fixed-size chunks.

        Gateless convenience used by the parity suites, the S1
        experiment and the CI differential: pushes ``recording`` in
        ``chunk_samples`` pieces and closes — the result must equal
        ``GuardedVoiceAssistant.process(recording)`` bitwise.
        """
        if self.gated:
            raise StreamError(
                "process_recording() needs a gateless guard "
                "(gated=False)"
            )
        if chunk_samples < 1:
            raise StreamError(
                f"chunk_samples must be >= 1, got {chunk_samples}"
            )
        if recording.sample_rate != self.sample_rate:
            raise StreamError(
                f"recording rate {recording.sample_rate} Hz does not "
                f"match the stream rate {self.sample_rate} Hz"
            )
        if recording.unit != self.unit:
            raise StreamError(
                f"recording unit {recording.unit!r} does not match "
                f"the stream unit {self.unit!r}"
            )
        samples = recording.samples
        for start in range(0, samples.shape[0], chunk_samples):
            self.push(samples[start : start + chunk_samples])
        return self.end_utterance()
