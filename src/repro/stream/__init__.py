"""Online streaming: the defense as it would actually deploy.

Every other execution path in this repository is offline batch — a
complete recording in, a verdict out. This package is the online
counterpart: audio arrives as arbitrary-sized chunks, utterances are
delimited causally, and the defense's features accumulate
incrementally so the verdict lands a bounded, deterministic time
after the speech ends.

``chunker``
    :class:`~repro.stream.chunker.ChunkedStream`, the
    absolute-indexed ring buffer and its frame grid (shared with the
    offline VAD through :mod:`repro.dsp.framing`).
``segmenter``
    :class:`~repro.stream.segmenter.OnlineSegmenter`, the causal
    VAD gate with hysteresis and a noise-floor tracker.
``features``
    :class:`~repro.stream.features.WelchAccumulator` and
    :class:`~repro.stream.features.StreamingTraceExtractor` —
    incremental defense features, bitwise-matched to the offline
    estimators at utterance close.
``guard``
    :class:`~repro.stream.guard.StreamingGuard`, the online guarded
    assistant (same :class:`~repro.defense.guard.GuardedOutcome`, same
    decision policy as the offline one).
``fleet``
    :class:`~repro.stream.fleet.FleetSimulator`, hundreds of
    concurrent device streams multiplexed over the batched trial
    pipeline, with per-stream ``SeedSequence`` randomness and
    worker-count-independent results.
``shard``
    :class:`~repro.stream.shard.ShardedFleetSimulator`, the fleet
    partitioned into per-process shards with commit-queue result
    draining — digests bitwise identical to the unsharded simulator
    for every shard × worker count.
"""

from repro.stream.chunker import ChunkedStream
from repro.stream.features import (
    StreamingTraceExtractor,
    WelchAccumulator,
)
from repro.stream.fleet import (
    FleetConfig,
    FleetReport,
    FleetSimulator,
    StreamResult,
    UtteranceDigest,
    synthesize_utterances,
)
from repro.stream.guard import StreamingGuard, UtteranceOutcome
from repro.stream.shard import (
    CommitQueue,
    ShardAccumulator,
    ShardedFleetSimulator,
    ShardResult,
    ShardTask,
    plan_shards,
    run_shard,
)
from repro.stream.segmenter import (
    OnlineSegmenter,
    SegmenterConfig,
    UtteranceClosed,
    UtteranceOpened,
)

__all__ = [
    "ChunkedStream",
    "WelchAccumulator",
    "StreamingTraceExtractor",
    "OnlineSegmenter",
    "SegmenterConfig",
    "UtteranceOpened",
    "UtteranceClosed",
    "StreamingGuard",
    "UtteranceOutcome",
    "FleetConfig",
    "FleetReport",
    "FleetSimulator",
    "StreamResult",
    "UtteranceDigest",
    "synthesize_utterances",
    "CommitQueue",
    "ShardAccumulator",
    "ShardResult",
    "ShardTask",
    "ShardedFleetSimulator",
    "plan_shards",
    "run_shard",
]
