"""The ring-buffer front door of the streaming subsystem.

A live device hands audio to the guard as it arrives — in whatever
chunk sizes its driver produces, never aligned to analysis frames.
:class:`ChunkedStream` absorbs that: arbitrary-sized pushes land in a
power-of-two ring buffer addressed by *absolute* sample index, and the
consumers (the online segmenter, the utterance extractor) read back
absolute ranges and explicitly release what they no longer need.

Two properties matter for the subsystem's bitwise-parity guarantee:

* Sample values are stored and read back exactly — the buffer never
  resamples, scales or windows, so any partition of a recording into
  pushes reconstructs the identical ``float64`` array.
* Frame bookkeeping delegates to :mod:`repro.dsp.framing`, the same
  arithmetic the offline VAD uses, so the online frame grid is the
  offline frame grid.

The buffer grows (doubling) rather than silently dropping samples when
a consumer falls behind; a deployment that wants hard memory bounds
releases aggressively, which the segmenter does.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.framing import (
    frame_count,
    frame_params,
    frame_rms,
    frame_rms_matrix,
)
from repro.errors import StreamError

#: Initial ring capacity in frames (grows on demand).
_MIN_CAPACITY_FRAMES = 8


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power <<= 1
    return power


class ChunkedStream:
    """Absolute-indexed ring buffer over a device's sample stream.

    Parameters
    ----------
    sample_rate:
        The device rate of the incoming audio.
    frame_length_s, hop_length_s:
        The analysis frame grid (defaults match the offline VAD).

    Notes
    -----
    ``head`` is the total number of samples ever pushed; ``tail`` is
    the oldest absolute index still retained. ``read(start, end)``
    returns a fresh contiguous copy of ``[start, end)``; ``release``
    advances ``tail``. :meth:`pending_frame_energies` walks the frame
    grid over newly-complete frames — the hot per-push path of the
    fleet simulator, one vectorised RMS over the new frames.
    """

    def __init__(
        self,
        sample_rate: float,
        frame_length_s: float = 0.02,
        hop_length_s: float = 0.01,
    ) -> None:
        if sample_rate <= 0:
            raise StreamError(
                f"sample_rate must be positive, got {sample_rate}"
            )
        self.sample_rate = float(sample_rate)
        self.frame_len, self.hop = frame_params(
            sample_rate, frame_length_s, hop_length_s
        )
        capacity = _next_pow2(_MIN_CAPACITY_FRAMES * self.frame_len)
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._head = 0  # total samples pushed
        self._tail = 0  # oldest retained absolute index
        self._rebase = 0  # absolute index mapped to ring slot 0
        self._frames_emitted = 0  # frames handed out so far

    # -- introspection -------------------------------------------------

    @property
    def head(self) -> int:
        """Total samples pushed so far (absolute end of stream)."""
        return self._head

    @property
    def tail(self) -> int:
        """Oldest absolute sample index still readable."""
        return self._tail

    @property
    def capacity(self) -> int:
        """Current ring size in samples (power of two, grows)."""
        return int(self._buf.shape[0])

    @property
    def frames_emitted(self) -> int:
        """Frames already returned by :meth:`pending_frame_energies`."""
        return self._frames_emitted

    # -- writing -------------------------------------------------------

    def push(self, samples: np.ndarray) -> int:
        """Append a chunk of samples; returns the new ``head``.

        Chunks of any size are accepted, including empty ones. The
        ring doubles when retained + incoming would not fit, so a push
        never overwrites unreleased samples.
        """
        chunk = np.asarray(samples, dtype=np.float64)
        if chunk.ndim != 1:
            raise StreamError(
                f"push expects a 1-D chunk, got shape {chunk.shape}"
            )
        if chunk.size == 0:
            return self._head
        if not np.all(np.isfinite(chunk)):
            raise StreamError("stream samples must be finite")
        needed = (self._head - self._tail) + chunk.size
        if needed > self.capacity:
            self._grow(needed)
        start = self._index(self._head)
        first = min(chunk.size, self.capacity - start)
        self._buf[start : start + first] = chunk[:first]
        if first < chunk.size:
            self._buf[: chunk.size - first] = chunk[first:]
        self._head += chunk.size
        return self._head

    def _grow(self, needed: int) -> None:
        fresh = np.zeros(_next_pow2(needed), dtype=np.float64)
        retained = self._head - self._tail
        if retained:
            fresh[:retained] = self._linearized(self._tail, self._head)
        # Re-anchor the address space: the old tail now lives at ring
        # slot 0 of the larger buffer.
        self._buf = fresh
        self._rebase = self._tail

    # -- reading -------------------------------------------------------

    def _index(self, absolute: int) -> int:
        return (absolute - self._rebase) & (self.capacity - 1)

    def _linearized(self, start: int, end: int) -> np.ndarray:
        """Contiguous copy of retained ``[start, end)``."""
        n = end - start
        out = np.empty(n, dtype=np.float64)
        i = self._index(start)
        first = min(n, self.capacity - i)
        out[:first] = self._buf[i : i + first]
        if first < n:
            out[first:] = self._buf[: n - first]
        return out

    def read(self, start: int, end: int) -> np.ndarray:
        """Copy of absolute sample range ``[start, end)``.

        Raises :class:`~repro.errors.StreamError` when the range runs
        outside the retained window — silently returning zeros there
        would corrupt an utterance without any signal to the caller.
        """
        if start > end:
            raise StreamError(
                f"read range inverted: [{start}, {end})"
            )
        if start < self._tail or end > self._head:
            raise StreamError(
                f"read [{start}, {end}) outside retained window "
                f"[{self._tail}, {self._head})"
            )
        return self._linearized(start, end)

    def release(self, up_to: int) -> None:
        """Allow samples below ``up_to`` to be overwritten."""
        if up_to > self._head:
            raise StreamError(
                f"cannot release beyond head ({up_to} > {self._head})"
            )
        self._tail = max(self._tail, up_to)

    # -- frame grid ----------------------------------------------------

    def pending_frame_energies(self) -> tuple[int, np.ndarray]:
        """RMS energies of frames completed since the last call.

        Returns ``(first_frame_index, energies)``; the energies are
        computed by :func:`repro.dsp.framing.frame_rms` over the
        buffered samples, so frame ``i`` here equals frame ``i`` of
        the offline :func:`repro.speech.vad.frame_energies` of the
        same stream bitwise. Frames are never re-emitted; the caller
        must not have released past the next frame's start.
        """
        total = frame_count(self._head, self.frame_len, self.hop)
        first = self._frames_emitted
        if total <= first:
            return first, np.empty(0, dtype=np.float64)
        start = first * self.hop
        if start < self._tail:
            raise StreamError(
                f"frame {first} starts at released sample {start} "
                f"(tail {self._tail}); release() ran ahead of the "
                "frame grid"
            )
        span = self._linearized(start, self._head)
        energies = frame_rms(span, self.frame_len, self.hop)
        self._frames_emitted = total
        return first, energies


class ChunkedStreamBatch:
    """One ring buffer shared by a whole group of lockstep streams.

    The structure-of-arrays counterpart of :class:`ChunkedStream` for
    the fleet kernel (:mod:`repro.stream.kernel`): ``n_streams`` rows
    advance with one global ``head`` — every cycle pushes the same
    number of samples to every row (shorter timelines are zero-padded
    by the kernel and masked at the frame level) — so the ring is a
    single ``(n_streams, capacity)`` array and a push is one 2-D
    write instead of ``n_streams`` scalar ones.

    Addressing, growth and the frame grid are :class:`ChunkedStream`'s
    exactly: absolute sample indexing modulo a power-of-two capacity,
    doubling growth that re-anchors ``tail`` to ring slot 0, and
    :meth:`pending_frame_energies` delegating to the shared
    :mod:`repro.dsp.framing` arithmetic — per row bitwise identical
    to the scalar ring (pinned by the kernel unit tests).
    """

    def __init__(
        self,
        n_streams: int,
        sample_rate: float,
        frame_length_s: float = 0.02,
        hop_length_s: float = 0.01,
    ) -> None:
        if n_streams < 1:
            raise StreamError(
                f"n_streams must be >= 1, got {n_streams}"
            )
        if sample_rate <= 0:
            raise StreamError(
                f"sample_rate must be positive, got {sample_rate}"
            )
        self.n_streams = int(n_streams)
        self.sample_rate = float(sample_rate)
        self.frame_len, self.hop = frame_params(
            sample_rate, frame_length_s, hop_length_s
        )
        capacity = _next_pow2(_MIN_CAPACITY_FRAMES * self.frame_len)
        self._buf = np.zeros(
            (self.n_streams, capacity), dtype=np.float64
        )
        self._head = 0
        self._tail = 0
        self._rebase = 0
        self._frames_emitted = 0

    # -- introspection -------------------------------------------------

    @property
    def head(self) -> int:
        """Total samples pushed per row so far."""
        return self._head

    @property
    def tail(self) -> int:
        """Oldest absolute sample index still readable."""
        return self._tail

    @property
    def capacity(self) -> int:
        """Ring size in samples per row (power of two, grows)."""
        return int(self._buf.shape[1])

    @property
    def frames_emitted(self) -> int:
        """Frames already returned by :meth:`pending_frame_energies`."""
        return self._frames_emitted

    # -- writing -------------------------------------------------------

    def push_block(self, block: np.ndarray) -> int:
        """Append one ``(n_streams, k)`` cycle block; returns ``head``.

        Every row advances by ``k`` samples — the kernel's lockstep
        ingestion contract. The ring doubles when retained + incoming
        would not fit, so a push never overwrites unreleased samples.
        """
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self.n_streams:
            raise StreamError(
                f"push_block expects ({self.n_streams}, k), got "
                f"shape {block.shape}"
            )
        k = block.shape[1]
        if k == 0:
            return self._head
        if not np.all(np.isfinite(block)):
            raise StreamError("stream samples must be finite")
        needed = (self._head - self._tail) + k
        if needed > self.capacity:
            self._grow(needed)
        start = self._index(self._head)
        first = min(k, self.capacity - start)
        self._buf[:, start : start + first] = block[:, :first]
        if first < k:
            self._buf[:, : k - first] = block[:, first:]
        self._head += k
        return self._head

    def _grow(self, needed: int) -> None:
        fresh = np.zeros(
            (self.n_streams, _next_pow2(needed)), dtype=np.float64
        )
        retained = self._head - self._tail
        if retained:
            fresh[:, :retained] = self._linearized_rows(
                self._tail, self._head
            )
        self._buf = fresh
        self._rebase = self._tail

    # -- reading -------------------------------------------------------

    def _index(self, absolute: int) -> int:
        return (absolute - self._rebase) & (self.capacity - 1)

    def _linearized_rows(self, start: int, end: int) -> np.ndarray:
        """Contiguous ``(n_streams, end - start)`` copy of the span."""
        n = end - start
        out = np.empty((self.n_streams, n), dtype=np.float64)
        i = self._index(start)
        first = min(n, self.capacity - i)
        out[:, :first] = self._buf[:, i : i + first]
        if first < n:
            out[:, first:] = self._buf[:, : n - first]
        return out

    def _check_span(self, start: int, end: int) -> None:
        if start > end:
            raise StreamError(
                f"read range inverted: [{start}, {end})"
            )
        if start < self._tail or end > self._head:
            raise StreamError(
                f"read [{start}, {end}) outside retained window "
                f"[{self._tail}, {self._head})"
            )

    def read_row(self, row: int, start: int, end: int) -> np.ndarray:
        """Copy of one row's absolute sample range ``[start, end)``."""
        if not 0 <= row < self.n_streams:
            raise StreamError(
                f"row {row} outside [0, {self.n_streams})"
            )
        self._check_span(start, end)
        n = end - start
        out = np.empty(n, dtype=np.float64)
        i = self._index(start)
        first = min(n, self.capacity - i)
        out[:first] = self._buf[row, i : i + first]
        if first < n:
            out[first:] = self._buf[row, : n - first]
        return out

    def gather_rows(
        self, rows: np.ndarray, starts: np.ndarray, length: int
    ) -> np.ndarray:
        """``(len(rows), length)`` stack of per-row absolute windows.

        The kernel's Welch-segment gather: window ``j`` is
        ``read_row(rows[j], starts[j], starts[j] + length)``, stacked
        so one batched FFT covers every due segment of the cycle.
        """
        out = np.empty((len(rows), length), dtype=np.float64)
        for j, (row, start) in enumerate(zip(rows, starts)):
            out[j] = self.read_row(int(row), int(start), int(start) + length)
        return out

    def release(self, up_to: int) -> None:
        """Allow samples below ``up_to`` to be overwritten (all rows)."""
        if up_to > self._head:
            raise StreamError(
                f"cannot release beyond head ({up_to} > {self._head})"
            )
        self._tail = max(self._tail, up_to)

    # -- frame grid ----------------------------------------------------

    def pending_frame_energies(self) -> tuple[int, np.ndarray]:
        """RMS energies of frames completed since the last call.

        Returns ``(first_frame_index, energies)`` with ``energies`` of
        shape ``(n_streams, n_new)`` — row ``i`` bitwise identical to
        the scalar ring's :meth:`ChunkedStream.pending_frame_energies`
        for the same row's samples, via the shared
        :func:`repro.dsp.framing.frame_rms_matrix` reduction.
        """
        total = frame_count(self._head, self.frame_len, self.hop)
        first = self._frames_emitted
        if total <= first:
            return first, np.empty(
                (self.n_streams, 0), dtype=np.float64
            )
        start = first * self.hop
        if start < self._tail:
            raise StreamError(
                f"frame {first} starts at released sample {start} "
                f"(tail {self._tail}); release() ran ahead of the "
                "frame grid"
            )
        i = self._index(start)
        n = self._head - start
        if i + n <= self.capacity:
            # Unwrapped span: frame straight off the ring storage (the
            # windowed view materialises a fresh contiguous array
            # inside the reduction either way, so the energies are
            # bitwise the linearized copy's).
            span = self._buf[:, i : i + n]
        else:
            span = self._linearized_rows(start, self._head)
        energies = frame_rms_matrix(span, self.frame_len, self.hop)
        self._frames_emitted = total
        return first, energies
