"""Structural tests for every reproduction experiment.

Each experiment runs once in quick mode (via the session-scoped
``experiment_tables`` fixture shared with the golden-trace and
batch-equivalence suites) and its table is checked for the *shape*
properties the paper reports — these are the assertions that make the
reproduction claims executable.
"""

import json

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.__main__ import build_parser, main


@pytest.fixture(scope="module")
def tables(experiment_tables):
    """The session-wide quick-mode tables (seed 0)."""
    return experiment_tables


class TestHarness:
    def test_registry_complete(self):
        expected = {
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
            "S1", "T1", "T2", "T3", "A1", "A2", "A3",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_every_table_renders(self, tables):
        for name, table in tables.items():
            text = table.render()
            assert name in text.split(":")[0]
            assert len(table.rows) >= 1


class TestF1:
    def test_attack_waveform_is_ultrasonic(self, tables):
        table = tables["F1"]
        attack_row = [r for r in table.rows if "attack" in r[0]][0]
        # voice band at least 60 dB below the ultrasonic content.
        assert attack_row[1] < attack_row[3] - 60

    def test_recording_recovers_voice_band(self, tables):
        table = tables["F1"]
        recording_row = [r for r in table.rows if "recording" in r[0]][0]
        assert recording_row[1] > -6.0  # voice band dominates


class TestF2:
    def test_leakage_monotone_in_power(self, tables):
        margins = tables["F2"].column("margin dB")
        assert margins == sorted(margins)

    def test_full_power_is_audible(self, tables):
        assert tables["F2"].column("audible")[-1] is True


class TestF3:
    def test_full_drive_beats_capped(self, tables):
        table = tables["F3"]
        full = table.column("full drive")
        capped = table.column("inaudible drive")
        assert sum(full) >= sum(capped)

    def test_capped_fails_beyond_arms_length(self, tables):
        table = tables["F3"]
        far_rows = [
            row for row in table.rows if row[0] >= 2.0
        ]
        assert all(row[2] <= 0.5 for row in far_rows)


class TestF4:
    def test_array_extends_range_over_capped_single(self, tables):
        table = tables["F4"]
        single = [r for r in table.rows if "single" in r[1]][0][2]
        arrays = [r[2] for r in table.rows if r[1] == "split array"]
        assert max(arrays) > single


class TestF5:
    def test_narrower_chunks_leak_less(self, tables):
        margins = tables["F5"].column("worst margin dB")
        assert margins[-1] < margins[0]

    def test_no_chunk_audible_at_moderate_splits(self, tables):
        table = tables["F5"]
        for row in table.rows:
            if row[0] >= 8:
                assert row[3] == 0


class TestF7:
    def test_trace_power_separates_classes(self, tables):
        table = tables["F7"]
        for row in table.rows:
            if row[1] == "trace_power_db":
                genuine, attacked, d_prime = row[2], row[3], row[4]
                assert attacked > genuine + 5.0
                assert d_prime > 1.0


class TestF8:
    def test_auc_near_paper_claim(self, tables):
        for auc in tables["F8"].column("AUC"):
            assert auc > 0.9


class TestF9:
    def test_detection_survives_depth_reduction(self, tables):
        table = tables["F9"]
        assert table.column("detection rate")[0] == 1.0


class TestT1:
    def test_range_grows_with_power(self, tables):
        phone = tables["T1"].column("phone range m")
        assert phone[-1] >= phone[0]

    def test_phone_outranges_echo(self, tables):
        table = tables["T1"]
        phone = table.column("phone range m")
        echo = table.column("echo range m")
        assert sum(phone) >= sum(echo)


class TestT2:
    def test_array_attack_succeeds_at_paper_positions(self, tables):
        table = tables["T2"]
        array_rows = [r for r in table.rows if r[3] == "split array"]
        assert all(row[4] >= 0.6 for row in array_rows)


class TestT3:
    def test_random_split_accuracy_high(self, tables):
        table = tables["T3"]
        random_rows = [r for r in table.rows if r[0] == "random"]
        assert all(row[2] >= 0.85 for row in random_rows)


class TestA1:
    def test_carrier_separation_removes_leakage(self, tables):
        table = tables["A1"]
        for row in table.rows:
            separate, mixed = row[1], row[2]
            assert separate < mixed - 10.0


class TestA2:
    def test_waterfill_at_least_uniform(self, tables):
        table = tables["A2"]
        by_strategy = {}
        for row in table.rows:
            by_strategy.setdefault(row[0], {})[row[1]] = row[2]
        for ranges in by_strategy.values():
            assert ranges["waterfill"] >= ranges["uniform"] - 0.5


class TestA3:
    def test_power_features_dominant(self, tables):
        table = tables["A3"]
        auc = {row[0]: row[1] for row in table.rows}
        assert auc["power only"] >= auc["correlation only"]
        assert auc["all features"] >= 0.9


class TestS1:
    def test_every_parity_probe_is_bitwise(self, tables):
        table = tables["S1"]
        parity_rows = [
            row for row in table.rows if row[0] in ("attack", "genuine")
        ]
        assert len(parity_rows) >= 6
        assert all(row[4] == "yes" for row in parity_rows)

    def test_parity_verdicts_separate_classes(self, tables):
        table = tables["S1"]
        for row in table.rows:
            if row[0] == "attack":
                assert row[2] == "veto"

    def test_fleet_latency_is_bounded(self, tables):
        table = tables["S1"]
        fleet_rows = [
            row for row in table.rows if str(row[0]).startswith("fleet")
        ]
        assert fleet_rows
        # Stream-time detection latency: positive, under a second.
        assert all(0.0 < row[5] < 1000.0 for row in fleet_rows)


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["F1"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["ZZ"]) == 2

    def test_parser_flags(self):
        args = build_parser().parse_args(["F2", "--full", "--seed", "7"])
        assert args.full and args.seed == 7
        assert args.jobs is None  # default: engine picks cpu count

    def test_parser_jobs_flag(self):
        args = build_parser().parse_args(["T2", "--jobs", "4"])
        assert args.jobs == 4

    def test_parser_no_batch_flag(self):
        args = build_parser().parse_args(["T2", "--no-batch"])
        assert args.no_batch is True
        assert build_parser().parse_args(["T2"]).no_batch is False

    def test_invalid_jobs_is_a_clean_cli_error(self, capsys):
        assert main(["F1", "--jobs", "0"]) == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_parser_scenario_flag(self):
        args = build_parser().parse_args(
            ["T2", "--scenario", "living_room"]
        )
        assert args.scenario == "living_room"
        assert build_parser().parse_args(["T2"]).scenario == "free_field"

    def test_unknown_scenario_is_a_clean_cli_error(self, capsys):
        # No longer a parser-level choices= rejection: the name is
        # resolved up front in main() so random:<seed> fuzz names
        # stay valid, and typos still fail before any experiment.
        assert main(["T2", "--scenario", "underwater"]) == 2
        err = capsys.readouterr().err
        assert "underwater" in err
        assert "random:<seed>" in err

    def test_every_experiment_is_scenario_capable(self):
        """The skip-list era is over: all 15 accept ``scenario``."""
        import inspect

        for name, module in ALL_EXPERIMENTS.items():
            parameters = inspect.signature(module.run).parameters
            assert "scenario" in parameters, name

    def test_scenario_on_every_experiment_cli(self, capsys):
        # F1 is the cheapest full-chain experiment; the same kwarg
        # plumbing serves all 15 (pinned by the signature test above).
        assert main(["F1", "--scenario", "living_room"]) == 0
        out = capsys.readouterr().out
        assert "scenario: living_room" in out

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        """--trace/--metrics-out write artifacts and leave stdout
        byte-identical to the uninstrumented run (zero digest
        drift, checked here on the cheapest engine-backed
        experiment and by CI's observability job on S1)."""
        from repro.obs.trace import read_trace

        assert main(["F3", "--jobs", "1"]) == 0
        untraced = capsys.readouterr().out
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "F3", "--jobs", "1",
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == untraced
        assert "trace:" in captured.err
        spans = read_trace(trace_path)
        experiment = [s for s in spans if s.name == "experiment"]
        assert experiment[0].attrs["experiment"] == "F3"
        # Engine fan-out appears in both collectors: trial-batch
        # spans adopted under the experiment, and engine counters.
        assert any(s.name == "trial-batch" for s in spans)
        payload = json.loads(metrics_path.read_text())
        assert payload["metrics"]["engine.trials"]["value"] > 0

    def test_list_scenarios_flag(self, capsys):
        from repro.sim.spec import scenario_names

        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert "anechoic baseline" in out  # one-line descriptions

    def test_missing_experiment_is_a_clean_error(self, capsys):
        assert main([]) == 2
        assert "experiment ID" in capsys.readouterr().err
