"""End-to-end integration tests: the paper's storyline, executed.

Each test here is one sentence of the paper:

1. An inaudible ultrasound emission injects a recognised command.
2. A linear microphone is immune — the attack *is* the nonlinearity.
3. A single speaker capped to inaudibility loses its range.
4. The split array attacks from further away under the same cap.
5. The defense detects attacked recordings and passes genuine ones.
"""

import numpy as np
import pytest

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.hardware.devices import (
    horn_tweeter,
    ideal_linear_microphone,
    ultrasonic_piezo_element,
)
from repro.psychoacoustics.audibility import evaluate_audibility
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice

ORIGIN = Position(0.0, 2.0, 1.0)


@pytest.fixture(scope="module")
def device():
    return VictimDevice.phone(seed=61)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        command="ok_google",
        attacker_position=ORIGIN,
        victim_position=Position(2.0, 2.0, 1.0),
    )


class TestAttackStoryline:
    @pytest.fixture(scope="class")
    def array_emission(self, ok_google_voice):
        array = grid_array(24, ORIGIN, ultrasonic_piezo_element)
        return LongRangeAttacker(array).emit(ok_google_voice)

    def test_inaudible_emission_injects_command(
        self, scenario, device, array_emission, rng
    ):
        # The wave arriving at the victim has no audible content...
        channel = AcousticChannel(room=None, ambient_noise_spl=None)
        arrived = channel.receive(
            list(array_emission.sources), scenario.victim_position
        )
        spectrum = np.fft.rfft(arrived.samples)
        freqs = np.fft.rfftfreq(
            arrived.n_samples, d=1.0 / arrived.sample_rate
        )
        spectrum[freqs > 18000.0] = 0.0
        audible_part = arrived.replace(
            samples=np.fft.irfft(spectrum, n=arrived.n_samples)
        )
        # The per-element constraint is enforced at the bystander; the
        # *summed* leakage of N inaudible elements can sit within a
        # couple of dB of the threshold-in-quiet. Anything inside a
        # +-3 dB band of that threshold is far below the masking floor
        # of a 40 dB SPL room (the evaluation's quietest condition) —
        # band SPLs here are around 0 dB SPL vs ~25 dB of in-band
        # room noise.
        report = evaluate_audibility(audible_part)
        assert report.margin_db < 3.0
        # ...yet the device recognises the command.
        runner = ScenarioRunner(scenario, device)
        outcomes = runner.run_trials(
            list(array_emission.sources), 3, rng
        )
        assert sum(o.success for o in outcomes) >= 2

    def test_linear_microphone_is_immune(
        self, scenario, device, attack_emission, rng
    ):
        linear_device = VictimDevice(
            name="linear",
            microphone=ideal_linear_microphone(),
            recognizer=device.recognizer,
        )
        runner = ScenarioRunner(scenario, linear_device)
        outcomes = runner.run_trials(list(attack_emission.sources), 3, rng)
        assert sum(o.success for o in outcomes) == 0

    def test_inaudibility_cap_kills_single_speaker_range(
        self, scenario, device, ok_google_voice, rng
    ):
        attacker = SingleSpeakerAttacker(horn_tweeter(), ORIGIN)
        emission = attacker.emit_inaudibly(ok_google_voice)
        runner = ScenarioRunner(scenario.at_distance(2.0), device)
        outcomes = runner.run_trials(list(emission.sources), 3, rng)
        assert sum(o.success for o in outcomes) == 0

    def test_split_array_succeeds_where_single_fails(
        self, scenario, device, ok_google_voice, rng
    ):
        array = grid_array(24, ORIGIN, ultrasonic_piezo_element)
        attacker = LongRangeAttacker(array)
        emission = attacker.emit(ok_google_voice)
        # Same inaudibility rule as the capped single speaker...
        for source in emission.sources:
            assert evaluate_audibility(
                source.pressure_at_1m
            ).margin_db < 3.0
        # ...but the command lands at 4 m.
        runner = ScenarioRunner(scenario.at_distance(4.0), device)
        outcomes = runner.run_trials(list(emission.sources), 3, rng)
        assert sum(o.success for o in outcomes) >= 2


class TestDefenseStoryline:
    @pytest.fixture(scope="class")
    def detector(self):
        config = DatasetConfig(
            commands=("ok_google", "alexa"),
            distances_m=(1.0, 2.0),
            n_trials=3,
            attacker_kind="single_full",
            seed=71,
        )
        return InaudibleVoiceDetector().fit(build_dataset(config))

    def test_detects_attacked_recording(
        self, detector, attack_recording
    ):
        assert detector.classify(attack_recording).is_attack

    def test_passes_genuine_recording(self, detector, rng):
        from repro.speech.commands import synthesize_command

        voice = synthesize_command("take_a_picture", rng)  # unseen cmd
        playback = AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=64.0)
        channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
        recording = (
            VictimDevice.phone(seed=3).microphone.record(
                channel.receive(
                    list(playback.emit(voice).sources),
                    Position(1.5, 2.0, 1.0),
                    rng,
                ),
                rng,
            )
        )
        assert not detector.classify(recording).is_attack

    def test_detects_long_range_attack_too(self, rng):
        # Trained on the matching attacker family (a deployed defense
        # would train on array attacks as well as single-speaker ones).
        config = DatasetConfig(
            commands=("ok_google", "alexa"),
            distances_m=(1.0, 2.0),
            n_trials=3,
            attacker_kind="long_range",
            n_array_speakers=16,
            seed=73,
        )
        detector = InaudibleVoiceDetector().fit(build_dataset(config))
        from repro.speech.commands import synthesize_command

        voice = synthesize_command("alexa", rng)
        array = grid_array(16, ORIGIN, ultrasonic_piezo_element)
        emission = LongRangeAttacker(array).emit(voice)
        channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
        recording = VictimDevice.phone(seed=4).microphone.record(
            channel.receive(
                list(emission.sources), Position(3.0, 2.0, 1.0), rng
            ),
            rng,
        )
        assert detector.classify(recording).is_attack
