"""Shared hypothesis strategies for the whole test suite.

One home for the generators that used to be duplicated per test file:
random waveforms and waveform batches (the batched-vs-scalar
equivalence properties), spatial geometry (positions, rooms,
positions constrained inside a room) and realistic sample rates.
Import from here (the ``tests/`` directory is on ``sys.path`` via the
root ``conftest.py``) rather than redefining per file::

    from strategies import rooms, interior_positions, signals
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.acoustics.geometry import Position, Room
from repro.dsp.signals import Signal, SignalBatch
from repro.sim.fuzz import generate_scenario

#: Bounded finite sample values — wide enough to exercise scaling,
#: narrow enough that squared sums stay finite.
finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)

#: Realistic device/simulation sample rates (exact-ratio resampling
#: pairs among them).
sample_rates = st.sampled_from(
    [8000.0, 16000.0, 44100.0, 48000.0, 96000.0, 192000.0]
)

# -- batched-vs-scalar equivalence dimensions --------------------------
#: Random batch shapes, amplitudes and (realistic) rates, per the
#: equivalence contract of the vectorized trial kernel.
batch_rows = st.integers(min_value=1, max_value=4)
batch_samples = st.integers(min_value=128, max_value=512)
batch_amplitudes = st.floats(min_value=1e-3, max_value=1e3)
batch_rates = st.sampled_from([8000.0, 16000.0, 48000.0, 192000.0])
batch_seeds = st.integers(min_value=0, max_value=2**31)


def random_batch(
    seed: int, rows: int, samples: int, amplitude: float
) -> np.ndarray:
    """A reproducible ``(rows, samples)`` Gaussian sample matrix."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, samples)) * amplitude


# -- waveform containers ----------------------------------------------
@st.composite
def signals(
    draw,
    min_samples: int = 1,
    max_samples: int = 64,
    unit: str | None = None,
):
    """A :class:`Signal` with bounded finite samples and a real rate."""
    samples = draw(
        st.lists(finite_floats, min_size=min_samples, max_size=max_samples)
    )
    rate = draw(sample_rates)
    if unit is None:
        return Signal(samples, rate)
    return Signal(samples, rate, unit)


@st.composite
def signal_batches(
    draw,
    min_rows: int = 1,
    max_rows: int = 4,
    min_samples: int = 8,
    max_samples: int = 128,
):
    """A :class:`SignalBatch` of reproducible Gaussian rows."""
    seed = draw(batch_seeds)
    rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    samples = draw(
        st.integers(min_value=min_samples, max_value=max_samples)
    )
    amplitude = draw(batch_amplitudes)
    rate = draw(batch_rates)
    return SignalBatch(random_batch(seed, rows, samples, amplitude), rate)


# -- streaming ---------------------------------------------------------
@st.composite
def chunk_partitions(draw, n_samples: int, max_parts: int = 8):
    """A partition of ``n_samples`` into positive chunk lengths.

    Drives the streaming parity properties: any way of cutting one
    recording into pushes must reconstruct it exactly, so the
    streaming guard's verdict must match the offline one bitwise.
    Includes degenerate cuts (everything in one push, many tiny
    pushes) through the size bounds.
    """
    if n_samples < 1:
        raise ValueError("chunk_partitions needs n_samples >= 1")
    sizes = []
    remaining = n_samples
    parts = draw(st.integers(min_value=1, max_value=max_parts))
    for _ in range(parts - 1):
        if remaining <= 1:
            break
        cut = draw(st.integers(min_value=1, max_value=remaining - 1))
        sizes.append(cut)
        remaining -= cut
    sizes.append(remaining)
    return sizes


@st.composite
def index_partitions(draw, n: int, max_parts: int = 4):
    """A partition of ``range(n)`` into 1..``max_parts`` disjoint,
    non-empty groups — arbitrary membership *and* arbitrary order
    inside each group.

    Drives the sharded-fleet property: any way of assigning streams
    to shards (contiguous or not, sorted or not) must merge to the
    same fleet digest as the unsharded simulator.
    """
    if n < 1:
        raise ValueError("index_partitions needs n >= 1")
    order = draw(st.permutations(list(range(n))))
    sizes = draw(chunk_partitions(n, max_parts=min(max_parts, n)))
    groups, start = [], 0
    for size in sizes:
        groups.append(order[start : start + size])
        start += size
    return groups


# -- scenario fuzzing --------------------------------------------------
#: Seeds of the generative scenario grammar (``repro.sim.fuzz``). The
#: CLI accepts exactly these integers as ``--scenario random:<seed>``,
#: so any falsifying seed hypothesis prints is replayable verbatim
#: from the command line.
fuzz_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def generated_specs(draw):
    """A :class:`ScenarioSpec` drawn through the CLI's own grammar.

    Hypothesis and ``--scenario random:<seed>`` share one generator:
    the strategy draws a seed and maps it through
    :func:`repro.sim.fuzz.generate_scenario`, so shrinking happens in
    seed space and every counterexample names a reproducible scenario.
    """
    return generate_scenario(draw(fuzz_seeds))


# -- geometry ----------------------------------------------------------
#: Coordinates kept within a plausible scene so distances and
#: propagation losses stay well-conditioned.
coordinates = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def positions(draw):
    """An arbitrary finite :class:`Position`."""
    return Position(draw(coordinates), draw(coordinates), draw(coordinates))


@st.composite
def rooms(draw):
    """A plausible rectangular :class:`Room` with valid absorption."""
    return Room(
        length_m=draw(st.floats(min_value=2.0, max_value=12.0)),
        width_m=draw(st.floats(min_value=2.0, max_value=8.0)),
        height_m=draw(st.floats(min_value=2.0, max_value=4.0)),
        wall_absorption=draw(st.floats(min_value=0.05, max_value=0.95)),
    )


@st.composite
def interior_positions(draw, room: Room, margin: float = 0.05):
    """A :class:`Position` strictly inside ``room``.

    ``margin`` keeps draws off the walls so image-source distances
    never degenerate to zero.
    """
    def axis(span: float):
        return st.floats(
            min_value=margin * span, max_value=(1.0 - margin) * span
        )

    return Position(
        draw(axis(room.length_m)),
        draw(axis(room.width_m)),
        draw(axis(room.height_m)),
    )
