"""Unit tests for trace analysis and the feature layer."""

import numpy as np
import pytest

from repro.defense.features import (
    FEATURE_NAMES,
    feature_matrix,
    feature_vector,
    features_from_analysis,
)
from repro.defense.traces import analyze_traces, band_envelope
from repro.dsp.signals import Signal, tone, white_noise
from repro.errors import DefenseError


class TestBandEnvelope:
    def test_envelope_tracks_amplitude(self):
        rate = 16000.0
        carrier = tone(1000.0, 1.0, rate)
        ramp = np.linspace(0.2, 1.0, carrier.n_samples)
        shaped = carrier.replace(samples=carrier.samples * ramp)
        envelope = band_envelope(shaped, 800.0, 1200.0)
        assert envelope[-1] > 2 * envelope[0]

    def test_too_short_signal_rejected(self):
        with pytest.raises(DefenseError):
            band_envelope(tone(100.0, 0.01, 16000.0), 50.0, 80.0)


class TestAnalyzeTraces:
    def test_synthetic_attack_signature(self, rng):
        # Construct the defining signature by hand: a voice-band tone
        # whose envelope also appears as a sub-50 Hz component.
        rate = 16000.0
        envelope_hz = 3.0
        t = np.arange(int(rate)) / rate
        envelope = 0.5 * (1 + np.sin(2 * np.pi * envelope_hz * t))
        voice = np.sin(2 * np.pi * 800.0 * t) * envelope
        trace = 0.2 * np.sin(2 * np.pi * 30.0 * t) * envelope
        noise = rng.normal(0, 1e-4, t.size)
        attacked = Signal(voice + trace + noise, rate)
        clean = Signal(voice + noise, rate)
        a_attacked = analyze_traces(attacked)
        a_clean = analyze_traces(clean)
        assert a_attacked.trace_power_db > a_clean.trace_power_db + 10
        assert (
            a_attacked.envelope_correlation
            > a_clean.envelope_correlation
        )

    def test_noise_has_low_correlation(self, rng):
        recording = white_noise(1.0, 16000.0, rng, rms_level=0.1)
        analysis = analyze_traces(recording)
        assert analysis.envelope_correlation < 0.5

    def test_low_rate_rejected(self, rng):
        with pytest.raises(DefenseError):
            analyze_traces(white_noise(1.0, 4000.0, rng))

    def test_real_attack_vs_genuine(self, attack_recording, rng):
        from repro.acoustics.channel import AcousticChannel
        from repro.acoustics.geometry import Position
        from repro.attack.baselines import AudiblePlaybackAttacker
        from repro.hardware.devices import android_phone_microphone
        from repro.speech.commands import synthesize_command

        voice = synthesize_command("ok_google", rng)
        playback = AudiblePlaybackAttacker(
            Position(0, 2, 1), speech_spl_at_1m=62.0
        )
        channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
        genuine = android_phone_microphone().record(
            channel.receive(
                list(playback.emit(voice).sources),
                Position(2, 2, 1),
                rng,
            ),
            rng,
        )
        trace_attack = analyze_traces(attack_recording)
        trace_genuine = analyze_traces(genuine)
        assert (
            trace_attack.trace_power_db
            > trace_genuine.trace_power_db + 6
        )


class TestFeatureVector:
    def test_full_vector_order(self, rng):
        recording = white_noise(1.0, 16000.0, rng, rms_level=0.1)
        vector = feature_vector(recording)
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_subset_selection(self, rng):
        recording = white_noise(1.0, 16000.0, rng, rms_level=0.1)
        full = feature_vector(recording)
        subset = feature_vector(
            recording, subset=("trace_to_voice_db", "voice_power_db")
        )
        assert subset[0] == full[1]
        assert subset[1] == full[4]

    def test_unknown_subset_rejected(self, rng):
        recording = white_noise(1.0, 16000.0, rng, rms_level=0.1)
        with pytest.raises(DefenseError):
            feature_vector(recording, subset=("blah",))

    def test_features_from_analysis_consistent(self, rng):
        recording = white_noise(1.0, 16000.0, rng, rms_level=0.1)
        analysis = analyze_traces(recording)
        assert np.allclose(
            features_from_analysis(analysis), feature_vector(recording)
        )


class TestBatchedFeatureEquivalence:
    """feature_matrix must be bitwise feature_vector, however grouped.

    build_dataset (and through it every defense experiment) relies on
    this equality; it is pinned here, not just in the benchmark.
    """

    def _recordings(self, rng):
        return [
            white_noise(1.0, 16000.0, rng)
            + tone(440.0, 1.0, 16000.0, amplitude=0.2)
            for _ in range(3)
        ] + [white_noise(0.5, 48000.0, rng)]

    def test_matrix_rows_bitwise_equal_vectors(self, rng):
        recordings = self._recordings(rng)
        matrix = feature_matrix(recordings)
        stacked = np.stack([feature_vector(r) for r in recordings])
        assert np.array_equal(matrix, stacked)

    def test_subset_selection_matches(self, rng):
        recordings = self._recordings(rng)[:2]
        subset = ("trace_power_db", "voice_power_db")
        matrix = feature_matrix(recordings, subset=subset)
        stacked = np.stack(
            [feature_vector(r, subset=subset) for r in recordings]
        )
        assert np.array_equal(matrix, stacked)

    def test_empty_input_rejected(self):
        with pytest.raises(DefenseError):
            feature_matrix([])
