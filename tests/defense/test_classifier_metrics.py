"""Unit tests for the from-scratch classifiers and detection metrics."""

import numpy as np
import pytest

from repro.defense.classifier import (
    LinearSvm,
    LogisticRegression,
    StandardScaler,
)
from repro.defense.metrics import (
    auc,
    confusion_matrix,
    roc_curve,
)
from repro.errors import DefenseError


def _separable_data(n=100, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    negatives = rng.normal(loc=-gap / 2, scale=0.5, size=(n, 3))
    positives = rng.normal(loc=+gap / 2, scale=0.5, size=(n, 3))
    x = np.vstack([negatives, positives])
    y = np.array([0] * n + [1] * n)
    return x, y


class TestStandardScaler:
    def test_transform_standardizes(self):
        x, _ = _separable_data()
        z = StandardScaler().fit_transform(x)
        assert np.allclose(np.mean(z, axis=0), 0.0, atol=1e-9)
        assert np.allclose(np.std(z, axis=0), 1.0, atol=1e-9)

    def test_constant_feature_handled(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_use_before_fit_rejected(self):
        with pytest.raises(DefenseError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_dimension_mismatch_rejected(self):
        scaler = StandardScaler().fit(np.ones((4, 3)))
        with pytest.raises(DefenseError):
            scaler.transform(np.ones((4, 2)))


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        x, y = _separable_data()
        z = StandardScaler().fit_transform(x)
        model = LogisticRegression().fit(z, y)
        assert np.mean(model.predict(z) == y) > 0.97

    def test_scores_are_probabilities(self):
        x, y = _separable_data()
        z = StandardScaler().fit_transform(x)
        scores = LogisticRegression().fit(z, y).decision_scores(z)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(DefenseError):
            LogisticRegression().predict(np.ones((1, 3)))

    def test_single_class_training_rejected(self):
        x = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(DefenseError):
            LogisticRegression().fit(x, np.zeros(10))

    def test_non_binary_labels_rejected(self):
        x = np.random.default_rng(0).normal(size=(4, 2))
        with pytest.raises(DefenseError):
            LogisticRegression().fit(x, np.array([0, 1, 2, 1]))

    def test_deterministic(self):
        x, y = _separable_data()
        a = LogisticRegression().fit(x, y)
        b = LogisticRegression().fit(x, y)
        assert np.allclose(a.weights_, b.weights_)


class TestLinearSvm:
    def test_separable_data_high_accuracy(self):
        x, y = _separable_data()
        z = StandardScaler().fit_transform(x)
        model = LinearSvm().fit(z, y)
        assert np.mean(model.predict(z) == y) > 0.97

    def test_deterministic_given_seed(self):
        x, y = _separable_data()
        a = LinearSvm(seed=3).fit(x, y)
        b = LinearSvm(seed=3).fit(x, y)
        assert np.allclose(a.weights_, b.weights_)

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(DefenseError):
            LinearSvm(regularization=0.0)


class TestRoc:
    def test_perfect_separation_auc_one(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 4000)
        scores = rng.uniform(size=4000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores_auc_zero(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(labels, scores) == pytest.approx(0.0)

    def test_curve_endpoints(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.2, 0.6, 0.4, 0.8])
        roc = roc_curve(labels, scores)
        assert roc.false_positive_rates[0] == 0.0
        assert roc.true_positive_rates[-1] == 1.0

    def test_tpr_at_fpr(self):
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        scores = np.array(
            [0.1, 0.2, 0.3, 0.9, 0.6, 0.7, 0.8, 0.95]
        )
        roc = roc_curve(labels, scores)
        assert roc.tpr_at_fpr(0.0) == pytest.approx(0.25)
        assert roc.tpr_at_fpr(0.3) == pytest.approx(1.0)

    def test_single_class_rejected(self):
        with pytest.raises(DefenseError):
            roc_curve(np.array([1, 1]), np.array([0.5, 0.6]))


class TestConfusionMatrix:
    def test_counts_and_rates(self):
        labels = np.array([1, 1, 1, 0, 0, 0])
        preds = np.array([1, 1, 0, 0, 0, 1])
        cm = confusion_matrix(labels, preds)
        assert cm.true_positives == 2
        assert cm.false_negatives == 1
        assert cm.false_positives == 1
        assert cm.true_negatives == 2
        assert cm.accuracy == pytest.approx(4 / 6)
        assert cm.true_positive_rate == pytest.approx(2 / 3)
        assert cm.false_positive_rate == pytest.approx(1 / 3)
        assert cm.precision == pytest.approx(2 / 3)
        assert 0 < cm.f1() < 1

    def test_empty_rejected(self):
        with pytest.raises(DefenseError):
            confusion_matrix(np.array([]), np.array([]))
