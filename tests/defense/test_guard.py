"""Tests for the guarded voice assistant — the deployed defense."""

import numpy as np
import pytest

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.defense.dataset import DatasetConfig, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.defense.guard import GuardedVoiceAssistant
from repro.hardware.devices import android_phone_microphone
from repro.speech.commands import synthesize_command
from repro.speech.recognizer import KeywordRecognizer
from repro.errors import DefenseError

ORIGIN = Position(0.0, 2.0, 1.0)


@pytest.fixture(scope="module")
def assistant(enrolled_recognizer):
    config = DatasetConfig(
        commands=("ok_google", "alexa"),
        distances_m=(1.0, 2.0),
        n_trials=3,
        attacker_kind="single_full",
        seed=91,
    )
    detector = InaudibleVoiceDetector().fit(build_dataset(config))
    return GuardedVoiceAssistant(enrolled_recognizer, detector)


@pytest.fixture(scope="module")
def genuine_recording():
    rng = np.random.default_rng(17)
    voice = synthesize_command("alexa", rng)
    playback = AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=63.0)
    channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
    arrived = channel.receive(
        list(playback.emit(voice).sources), Position(1.5, 2.0, 1.0), rng
    )
    return android_phone_microphone().record(arrived, rng)


class TestGuardedAssistant:
    def test_executes_genuine_command(self, assistant, genuine_recording):
        outcome = assistant.process(genuine_recording)
        assert outcome.executed_command == "alexa"
        assert not outcome.vetoed
        assert outcome.detection is not None

    def test_vetoes_injected_command(self, assistant, attack_recording):
        # The recording that *fools the recogniser* (see the attack
        # integration tests) is blocked by the guard.
        outcome = assistant.process(attack_recording)
        assert outcome.recognition.accepted
        assert outcome.vetoed
        assert outcome.executed_command is None

    def test_attack_succeeds_metric(
        self, assistant, attack_recording, genuine_recording
    ):
        assert not assistant.attack_succeeds(
            attack_recording, "ok_google"
        )
        assert assistant.attack_succeeds(genuine_recording, "alexa")

    def test_unrecognised_audio_skips_the_guard(self, assistant, rng):
        from repro.dsp.signals import white_noise

        noise = white_noise(0.8, 48000.0, rng, rms_level=0.05)
        outcome = assistant.process(noise)
        assert outcome.executed_command is None
        assert outcome.detection is None
        assert not outcome.vetoed

    def test_empty_recognizer_rejected(self):
        detector = InaudibleVoiceDetector()
        with pytest.raises(DefenseError):
            GuardedVoiceAssistant(KeywordRecognizer(), detector)
