"""Unit tests for dataset generation and the end-to-end detector."""

import numpy as np
import pytest

from repro.defense.dataset import DatasetConfig, LabeledDataset, build_dataset
from repro.defense.detector import InaudibleVoiceDetector
from repro.errors import DefenseError


@pytest.fixture(scope="module")
def small_dataset():
    config = DatasetConfig(
        commands=("alexa",),
        distances_m=(1.0,),
        n_trials=4,
        attacker_kind="single_full",
        seed=21,
    )
    return build_dataset(config)


class TestDatasetConfig:
    def test_unknown_command_rejected(self):
        with pytest.raises(DefenseError):
            DatasetConfig(commands=("definitely_not_real",))

    def test_bad_distance_rejected(self):
        with pytest.raises(DefenseError):
            DatasetConfig(distances_m=(0.0,))

    def test_unknown_attacker_rejected(self):
        with pytest.raises(DefenseError):
            DatasetConfig(attacker_kind="quantum")

    def test_unknown_device_rejected(self):
        with pytest.raises(DefenseError):
            DatasetConfig(device="toaster")


class TestBuildDataset:
    def test_balanced_classes(self, small_dataset):
        assert small_dataset.n_samples == 8
        assert int(np.sum(small_dataset.labels)) == 4

    def test_metadata_matches_rows(self, small_dataset):
        kinds = {meta["kind"] for meta in small_dataset.metadata}
        assert kinds == {"genuine", "single_full"}

    def test_deterministic(self):
        config = DatasetConfig(
            commands=("alexa",), distances_m=(1.0,), n_trials=2, seed=5
        )
        a = build_dataset(config)
        b = build_dataset(config)
        assert np.allclose(a.features, b.features)

    def test_classes_actually_separate(self, small_dataset):
        genuine = small_dataset.features[small_dataset.labels == 0]
        attacked = small_dataset.features[small_dataset.labels == 1]
        # Trace power (feature 0) separates by several dB.
        assert np.mean(attacked[:, 0]) > np.mean(genuine[:, 0]) + 5.0


class TestSplitFilter:
    def test_split_partition(self, small_dataset, rng):
        train, test = small_dataset.split(0.5, rng)
        assert train.n_samples + test.n_samples == small_dataset.n_samples

    def test_bad_fraction_rejected(self, small_dataset, rng):
        with pytest.raises(DefenseError):
            small_dataset.split(1.5, rng)

    def test_filter_by_metadata(self, small_dataset):
        genuine_only = small_dataset.filter(
            lambda meta: meta["kind"] == "genuine"
        )
        assert np.all(genuine_only.labels == 0)

    def test_empty_filter_rejected(self, small_dataset):
        with pytest.raises(DefenseError):
            small_dataset.filter(lambda meta: False)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(DefenseError):
            LabeledDataset(
                features=np.ones((3, 2)),
                labels=np.ones(2),
                metadata=[{}, {}, {}],
            )


class TestDetector:
    def test_fit_and_classify(self, small_dataset, attack_recording):
        detector = InaudibleVoiceDetector().fit(small_dataset)
        verdict = detector.classify(attack_recording)
        assert verdict.is_attack
        assert verdict.score > 0.5

    def test_evaluate_accuracy_high(self, small_dataset):
        detector = InaudibleVoiceDetector().fit(small_dataset)
        cm = detector.evaluate(small_dataset)
        assert cm.accuracy >= 0.9

    def test_svm_variant(self, small_dataset):
        detector = InaudibleVoiceDetector(model="svm").fit(small_dataset)
        cm = detector.evaluate(small_dataset)
        assert cm.accuracy >= 0.9

    def test_unknown_model_rejected(self):
        with pytest.raises(DefenseError):
            InaudibleVoiceDetector(model="forest")

    def test_use_before_fit_rejected(self, attack_recording):
        with pytest.raises(DefenseError):
            InaudibleVoiceDetector().classify(attack_recording)

    def test_subset_detector_requires_matching_dataset(
        self, small_dataset
    ):
        detector = InaudibleVoiceDetector(
            feature_subset=("trace_power_db",)
        )
        with pytest.raises(DefenseError):
            detector.fit(small_dataset)
