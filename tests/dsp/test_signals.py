"""Unit tests for the Signal container and waveform factories."""

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import signal_batches, signals
from repro.dsp.signals import (
    Signal,
    Unit,
    chirp,
    mix,
    multi_tone,
    silence,
    tone,
    white_noise,
)
from repro.errors import SampleRateError, SignalDomainError


class TestSignalConstruction:
    def test_basic_properties(self):
        s = Signal([0.0, 1.0, 0.0, -1.0], 4.0)
        assert s.n_samples == 4
        assert s.duration == pytest.approx(1.0)
        assert s.nyquist == pytest.approx(2.0)
        assert s.unit == Unit.DIGITAL

    def test_samples_are_copied_and_read_only(self):
        source = np.array([1.0, 2.0])
        s = Signal(source, 10.0)
        source[0] = 99.0
        assert s.samples[0] == 1.0
        with pytest.raises(ValueError):
            s.samples[0] = 5.0

    def test_rejects_2d_arrays(self):
        with pytest.raises(SignalDomainError):
            Signal(np.zeros((2, 2)), 10.0)

    def test_rejects_nan_samples(self):
        with pytest.raises(SignalDomainError):
            Signal([0.0, np.nan], 10.0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(SampleRateError):
            Signal([0.0], 0.0)
        with pytest.raises(SampleRateError):
            Signal([0.0], -48000.0)

    def test_rejects_unknown_unit(self):
        with pytest.raises(SignalDomainError):
            Signal([0.0], 10.0, unit="furlongs")


class TestSignalStatistics:
    def test_rms_of_sine(self):
        s = tone(10.0, 1.0, 1000.0, amplitude=2.0)
        assert s.rms() == pytest.approx(2.0 / np.sqrt(2.0), rel=1e-3)

    def test_peak(self):
        s = Signal([0.5, -3.0, 1.0], 10.0)
        assert s.peak() == 3.0

    def test_energy_is_sum_of_squares(self):
        s = Signal([1.0, 2.0], 10.0)
        assert s.energy() == pytest.approx(5.0)

    def test_empty_signal_statistics(self):
        s = Signal([], 10.0)
        assert s.rms() == 0.0
        assert s.peak() == 0.0


class TestSignalArithmetic:
    def test_add_pads_shorter_operand(self):
        a = Signal([1.0, 1.0, 1.0], 10.0)
        b = Signal([1.0], 10.0)
        total = a + b
        assert total.n_samples == 3
        assert list(total.samples) == [2.0, 1.0, 1.0]

    def test_add_rejects_rate_mismatch(self):
        a = Signal([1.0], 10.0)
        b = Signal([1.0], 20.0)
        with pytest.raises(SampleRateError):
            a + b

    def test_add_rejects_unit_mismatch(self):
        a = Signal([1.0], 10.0, Unit.PASCAL)
        b = Signal([1.0], 10.0, Unit.VOLT)
        with pytest.raises(SignalDomainError):
            a + b

    def test_scalar_multiplication(self):
        s = Signal([1.0, -2.0], 10.0) * 3.0
        assert list(s.samples) == [3.0, -6.0]

    def test_pointwise_product_truncates_to_shorter(self):
        a = Signal([2.0, 2.0, 2.0], 10.0)
        b = Signal([3.0, 4.0], 10.0)
        product = a * b
        assert list(product.samples) == [6.0, 8.0]

    def test_negation(self):
        s = -Signal([1.0, -2.0], 10.0)
        assert list(s.samples) == [-1.0, 2.0]

    def test_equality(self):
        a = Signal([1.0, 2.0], 10.0)
        assert a == Signal([1.0, 2.0], 10.0)
        assert a != Signal([1.0, 2.0], 20.0)


class TestSignalShaping:
    def test_scaled_to_peak(self):
        s = Signal([0.5, -0.25], 10.0).scaled_to_peak(2.0)
        assert s.peak() == pytest.approx(2.0)

    def test_scaled_to_peak_of_silence_is_noop(self):
        s = Signal([0.0, 0.0], 10.0).scaled_to_peak(1.0)
        assert s.peak() == 0.0

    def test_scaled_to_rms(self):
        s = tone(5.0, 1.0, 100.0).scaled_to_rms(3.0)
        assert s.rms() == pytest.approx(3.0, rel=1e-6)

    def test_slice_time(self):
        s = Signal(np.arange(10.0), 10.0)
        part = s.slice_time(0.2, 0.5)
        assert list(part.samples) == [2.0, 3.0, 4.0]

    def test_padded(self):
        s = Signal([1.0], 10.0).padded(2, 3)
        assert list(s.samples) == [0.0, 0.0, 1.0, 0.0, 0.0, 0.0]

    def test_padded_to_shorter_raises(self):
        with pytest.raises(SignalDomainError):
            Signal([1.0, 2.0], 10.0).padded_to(1)

    def test_delayed_integer_samples(self):
        s = Signal([1.0, 2.0], 10.0).delayed(0.2)
        assert list(s.samples[:2]) == [0.0, 0.0]
        assert s.samples[2] == pytest.approx(1.0)

    def test_delayed_fractional_interpolates(self):
        s = Signal([0.0, 1.0, 0.0], 10.0).delayed(0.05)
        # Half-sample delay: the peak spreads between samples 1 and 2.
        assert 0.0 < s.samples[1] < 1.0

    def test_faded_edges_attenuate(self):
        s = tone(10.0, 1.0, 1000.0).faded(0.1)
        assert abs(s.samples[0]) < 1e-9
        assert abs(s.samples[-1]) < 1e-9

    def test_fade_longer_than_half_raises(self):
        with pytest.raises(SignalDomainError):
            tone(10.0, 0.1, 1000.0).faded(0.06)

    def test_concat(self):
        a = Signal([1.0], 10.0)
        b = Signal([2.0], 10.0)
        assert list(a.concat(b).samples) == [1.0, 2.0]


class TestFactories:
    def test_tone_frequency_is_dominant(self):
        from repro.dsp.spectrum import dominant_frequency

        s = tone(440.0, 0.5, 48000.0)
        assert dominant_frequency(s) == pytest.approx(440.0, abs=5.0)

    def test_tone_above_nyquist_raises(self):
        with pytest.raises(SignalDomainError):
            tone(600.0, 1.0, 1000.0)

    def test_multi_tone_contains_components(self):
        from repro.dsp.spectrum import welch_psd

        s = multi_tone([(100.0, 1.0), (300.0, 0.5)], 1.0, 4000.0)
        psd = welch_psd(s)
        assert psd.band_power(90, 110) > psd.band_power(190, 210)
        assert psd.band_power(290, 310) > psd.band_power(190, 210)

    def test_multi_tone_empty_raises(self):
        with pytest.raises(SignalDomainError):
            multi_tone([], 1.0, 4000.0)

    def test_chirp_endpoints_validated(self):
        with pytest.raises(SignalDomainError):
            chirp(10.0, 5000.0, 1.0, 8000.0)

    def test_white_noise_rms(self, rng):
        s = white_noise(2.0, 8000.0, rng, rms_level=0.5)
        assert s.rms() == pytest.approx(0.5, rel=0.05)

    def test_white_noise_requires_rng(self, rng):
        s1 = white_noise(0.1, 1000.0, np.random.default_rng(1))
        s2 = white_noise(0.1, 1000.0, np.random.default_rng(1))
        assert s1 == s2

    def test_silence(self):
        s = silence(0.5, 100.0)
        assert s.n_samples == 50
        assert s.rms() == 0.0

    def test_mix_sums_and_pads(self):
        a = tone(10.0, 0.2, 1000.0)
        b = tone(10.0, 0.1, 1000.0)
        total = mix([a, b])
        assert total.n_samples == a.n_samples
        assert total.samples[0] == pytest.approx(2.0)

    def test_mix_empty_raises(self):
        with pytest.raises(SignalDomainError):
            mix([])


class TestSignalBatchProperties:
    """Container invariants driven by the suite-wide strategies."""

    @given(batch=signal_batches())
    @settings(max_examples=25, deadline=None)
    def test_from_signals_round_trips_rows(self, batch):
        from repro.dsp.signals import SignalBatch

        rebuilt = SignalBatch.from_signals(batch.signals())
        assert np.array_equal(rebuilt.samples, batch.samples)
        assert rebuilt.sample_rate == batch.sample_rate
        assert rebuilt.unit == batch.unit

    @given(signal=signals())
    @settings(max_examples=25, deadline=None)
    def test_scaled_to_peak_hits_target_or_stays_silent(self, signal):
        scaled = signal.scaled_to_peak(1.0)
        if signal.peak() == 0.0:
            assert scaled.peak() == 0.0
        else:
            assert scaled.peak() == pytest.approx(1.0)

    @given(signal=signals(min_samples=2))
    @settings(max_examples=25, deadline=None)
    def test_mix_with_silence_is_identity(self, signal):
        from repro.dsp.signals import silence

        quiet = silence(0.0, signal.sample_rate, unit=signal.unit)
        assert np.array_equal(
            mix([signal, quiet]).samples, signal.samples
        )


class TestSignalBatchAdopt:
    """The no-copy constructor keeps every container invariant."""

    def _fresh(self):
        return np.zeros((2, 8), dtype=np.float64)

    def test_adopts_conforming_array_without_copy(self):
        from repro.dsp.signals import SignalBatch

        arr = self._fresh()
        batch = SignalBatch.adopt(arr, 8000.0)
        assert batch.samples is arr

    def test_result_is_read_only(self):
        from repro.dsp.signals import SignalBatch

        batch = SignalBatch.adopt(self._fresh(), 8000.0)
        with pytest.raises(ValueError):
            batch.samples[0, 0] = 1.0

    def test_preserves_float32(self):
        from repro.dsp.signals import SignalBatch

        arr = np.zeros((2, 8), dtype=np.float32)
        batch = SignalBatch.adopt(arr, 8000.0)
        assert batch.samples is arr
        assert batch.samples.dtype == np.float32

    def test_falls_back_to_copy_for_views(self):
        from repro.dsp.signals import SignalBatch

        backing = np.zeros((4, 8), dtype=np.float64)
        view = backing[:2]
        batch = SignalBatch.adopt(view, 8000.0)
        assert batch.samples is not view
        backing[0, 0] = 9.0  # mutating the source must not leak in
        assert batch.samples[0, 0] == 0.0

    def test_falls_back_to_copy_for_lists_and_dtypes(self):
        from repro.dsp.signals import SignalBatch

        from_list = SignalBatch.adopt([[0.0, 1.0]], 8000.0)
        assert isinstance(from_list.samples, np.ndarray)
        ints = np.zeros((2, 4), dtype=np.int32)
        from_ints = SignalBatch.adopt(ints, 8000.0)
        assert from_ints.samples.dtype == np.float64

    def test_same_validation_as_constructor(self):
        from repro.dsp.signals import SignalBatch

        with pytest.raises(SignalDomainError):
            SignalBatch.adopt(np.zeros(8), 8000.0)
        with pytest.raises(SignalDomainError):
            SignalBatch.adopt(np.zeros((0, 8)), 8000.0)
        bad = self._fresh()
        bad[1, 3] = np.inf
        with pytest.raises(SignalDomainError):
            SignalBatch.adopt(bad, 8000.0)
        with pytest.raises(SampleRateError):
            SignalBatch.adopt(self._fresh(), 0.0)
