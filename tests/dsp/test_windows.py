"""Unit tests for window functions."""

import numpy as np
import pytest

from repro.dsp.windows import (
    blackman,
    coherent_gain,
    get_window,
    hamming,
    hann,
    noise_gain,
    rectangular,
)
from repro.errors import SignalDomainError


class TestWindowShapes:
    @pytest.mark.parametrize(
        "factory", [rectangular, hann, hamming, blackman]
    )
    def test_length_and_bounds(self, factory):
        w = factory(64)
        assert w.shape == (64,)
        assert np.all(w <= 1.0 + 1e-12)
        assert np.all(w >= -1e-12)

    @pytest.mark.parametrize("factory", [hann, hamming, blackman])
    def test_symmetry(self, factory):
        w = factory(65)
        assert np.allclose(w, w[::-1])

    def test_hann_endpoints_zero(self):
        w = hann(32)
        assert w[0] == pytest.approx(0.0, abs=1e-12)
        assert w[-1] == pytest.approx(0.0, abs=1e-12)

    def test_hamming_endpoints_nonzero(self):
        assert hamming(32)[0] == pytest.approx(0.08, abs=0.01)

    def test_single_sample_window(self):
        for factory in (rectangular, hann, hamming, blackman):
            assert factory(1)[0] == 1.0

    def test_invalid_length_rejected(self):
        with pytest.raises(SignalDomainError):
            hann(0)


class TestLookup:
    def test_get_window_by_name(self):
        assert np.allclose(get_window("hann", 16), hann(16))

    def test_unknown_name_lists_options(self):
        with pytest.raises(SignalDomainError) as excinfo:
            get_window("kaiser", 16)
        assert "hann" in str(excinfo.value)


class TestGains:
    def test_rectangular_gains_are_unity(self):
        w = rectangular(128)
        assert coherent_gain(w) == pytest.approx(1.0)
        assert noise_gain(w) == pytest.approx(1.0)

    def test_hann_coherent_gain(self):
        assert coherent_gain(hann(4096)) == pytest.approx(0.5, abs=0.01)
