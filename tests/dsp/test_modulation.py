"""Unit tests for AM modulation and demodulation."""

import numpy as np
import pytest

from repro.dsp.measures import residual_snr_db
from repro.dsp.modulation import (
    am_demodulate_envelope,
    am_demodulate_square_law,
    am_modulate,
    coherent_demodulate,
    dsb_sc_modulate,
)
from repro.dsp.signals import tone
from repro.dsp.spectrum import band_power, welch_psd
from repro.errors import ModulationError

RATE = 192000.0


@pytest.fixture()
def message():
    return tone(1000.0, 0.3, RATE)


class TestAmModulate:
    def test_spectrum_moves_to_sidebands(self, message):
        out = am_modulate(message, 40000.0, bandwidth_hz=2000.0)
        psd = welch_psd(out, segment_length=16384)
        assert psd.band_power(38500, 39500) > 1e-4   # lower sideband
        assert psd.band_power(40500, 41500) > 1e-4   # upper sideband
        assert psd.band_power(39900, 40100) > 1e-2   # carrier
        assert psd.band_power(500, 1500) < 1e-8      # no baseband left

    def test_peak_is_carrier_plus_depth(self, message):
        out = am_modulate(
            message, 40000.0, modulation_depth=0.5, bandwidth_hz=2000.0
        )
        assert out.peak() == pytest.approx(1.5, rel=0.01)

    def test_depth_out_of_range_rejected(self, message):
        with pytest.raises(ModulationError):
            am_modulate(message, 40000.0, modulation_depth=1.5)
        with pytest.raises(ModulationError):
            am_modulate(message, 40000.0, modulation_depth=0.0)

    def test_sideband_above_nyquist_rejected(self, message):
        with pytest.raises(ModulationError):
            am_modulate(message, 95500.0, bandwidth_hz=2000.0)

    def test_sideband_touching_dc_rejected(self, message):
        with pytest.raises(ModulationError):
            am_modulate(message, 1500.0, bandwidth_hz=2000.0)


class TestDsbSc:
    def test_carrier_suppressed(self, message):
        out = dsb_sc_modulate(message, 40000.0, bandwidth_hz=2000.0)
        psd = welch_psd(out, segment_length=32768)
        carrier = psd.band_power(39950, 40050)
        sideband = psd.band_power(40900, 41100)
        assert carrier < sideband * 0.05

    def test_invalid_amplitude_rejected(self, message):
        with pytest.raises(ModulationError):
            dsb_sc_modulate(message, 40000.0, amplitude=0.0)


class TestDemodulation:
    def test_envelope_detector_recovers_message(self, message):
        modulated = am_modulate(
            message, 40000.0, modulation_depth=0.8, bandwidth_hz=2000.0
        )
        recovered = am_demodulate_envelope(modulated, cutoff_hz=4000.0)
        trimmed_ref = message.slice_time(0.05, 0.25)
        trimmed_out = recovered.slice_time(0.05, 0.25)
        assert residual_snr_db(trimmed_ref, trimmed_out) > 20.0

    def test_square_law_recovers_message(self, message):
        modulated = am_modulate(
            message, 40000.0, modulation_depth=0.5, bandwidth_hz=2000.0
        )
        recovered = am_demodulate_square_law(modulated, cutoff_hz=4000.0)
        trimmed_ref = message.slice_time(0.05, 0.25)
        trimmed_out = recovered.slice_time(0.05, 0.25)
        assert residual_snr_db(trimmed_ref, trimmed_out) > 15.0

    def test_square_law_of_dsb_sc_does_not_recover(self, message):
        # Without the carrier, the quadratic term yields m^2, not m:
        # the recovered band holds the 2 kHz doubled tone, not 1 kHz.
        modulated = dsb_sc_modulate(message, 40000.0, bandwidth_hz=2000.0)
        recovered = am_demodulate_square_law(modulated, cutoff_hz=4000.0)
        assert band_power(recovered, 1900, 2100) > 10 * band_power(
            recovered, 900, 1100
        )

    def test_coherent_demodulation_of_dsb_sc(self, message):
        modulated = dsb_sc_modulate(message, 40000.0, bandwidth_hz=2000.0)
        recovered = coherent_demodulate(
            modulated, 40000.0, cutoff_hz=4000.0
        )
        trimmed_ref = message.slice_time(0.05, 0.25)
        trimmed_out = recovered.slice_time(0.05, 0.25)
        assert residual_snr_db(trimmed_ref, trimmed_out) > 20.0

    def test_coherent_demodulation_bad_carrier_rejected(self, message):
        modulated = dsb_sc_modulate(message, 40000.0, bandwidth_hz=2000.0)
        with pytest.raises(ModulationError):
            coherent_demodulate(modulated, 0.0)

    def test_intermodulation_two_tone_difference(self):
        # The paper's core equation: squaring 25 kHz + 30 kHz produces
        # the 5 kHz difference tone.
        s = tone(25000.0, 0.2, RATE) + tone(30000.0, 0.2, RATE)
        squared = s.replace(samples=np.square(s.samples))
        psd = welch_psd(squared, segment_length=16384)
        assert psd.band_power(4800, 5200) > 0.01
