"""Unit tests for sample-rate conversion."""

import pytest

from repro.dsp.resample import rational_ratio, resample, upsample_to
from repro.dsp.signals import Unit, tone
from repro.dsp.spectrum import dominant_frequency
from repro.errors import SampleRateError


class TestRationalRatio:
    def test_common_audio_pairs(self):
        assert rational_ratio(48000.0, 44100.0) == (160, 147)
        assert rational_ratio(192000.0, 48000.0) == (4, 1)
        assert rational_ratio(16000.0, 48000.0) == (1, 3)

    def test_identity(self):
        assert rational_ratio(48000.0, 48000.0) == (1, 1)

    def test_pathological_ratio_rejected(self):
        with pytest.raises(SampleRateError):
            rational_ratio(48000.0, 48001.3)

    def test_non_positive_rates_rejected(self):
        with pytest.raises(SampleRateError):
            rational_ratio(0.0, 48000.0)


class TestResample:
    def test_tone_survives_upsampling(self):
        s = tone(1000.0, 0.5, 16000.0)
        up = resample(s, 48000.0)
        assert up.sample_rate == 48000.0
        assert dominant_frequency(up) == pytest.approx(1000.0, abs=10.0)

    def test_tone_survives_downsampling(self):
        s = tone(1000.0, 0.5, 48000.0)
        down = resample(s, 16000.0)
        assert dominant_frequency(down) == pytest.approx(1000.0, abs=10.0)

    def test_amplitude_preserved(self):
        s = tone(1000.0, 0.5, 16000.0)
        up = resample(s, 48000.0)
        assert up.rms() == pytest.approx(s.rms(), rel=0.02)

    def test_downsampling_removes_high_content(self):
        from repro.dsp.signals import multi_tone
        from repro.dsp.spectrum import band_power

        s = multi_tone([(1000.0, 1.0), (20000.0, 1.0)], 0.5, 48000.0)
        down = resample(s, 16000.0)
        # 20 kHz cannot exist at a 16 kHz rate; it must be filtered,
        # not aliased to 4 kHz.
        assert band_power(down, 3500, 4500) < 1e-4

    def test_identity_resample_is_copy(self):
        s = tone(100.0, 0.1, 8000.0)
        out = resample(s, 8000.0)
        assert out == s

    def test_unit_preserved(self):
        s = tone(100.0, 0.1, 8000.0, unit=Unit.PASCAL)
        assert resample(s, 16000.0).unit == Unit.PASCAL

    def test_length_scales_with_ratio(self):
        s = tone(100.0, 1.0, 8000.0)
        up = resample(s, 16000.0)
        assert up.n_samples == pytest.approx(2 * s.n_samples, abs=2)


class TestUpsampleTo:
    def test_refuses_downsampling(self):
        s = tone(100.0, 0.1, 48000.0)
        with pytest.raises(SampleRateError):
            upsample_to(s, 16000.0)

    def test_upsamples(self):
        s = tone(100.0, 0.1, 48000.0)
        assert upsample_to(s, 192000.0).sample_rate == 192000.0
