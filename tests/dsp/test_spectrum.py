"""Unit tests for spectral estimation."""

import numpy as np
import pytest

from repro.dsp.signals import multi_tone, tone, white_noise
from repro.dsp.spectrum import (
    band_power,
    band_rms,
    dominant_frequency,
    power_spectrum,
    spectrogram,
    welch_psd,
)
from repro.errors import SignalDomainError


class TestWelchPsd:
    def test_parseval_total_power(self, rng):
        s = white_noise(2.0, 8000.0, rng, rms_level=1.0)
        psd = welch_psd(s)
        assert psd.total_power() == pytest.approx(1.0, rel=0.1)

    def test_tone_power_in_band(self):
        s = tone(1000.0, 2.0, 16000.0, amplitude=1.0)
        psd = welch_psd(s)
        # Mean-square of a unit sine is 0.5.
        assert psd.band_power(900, 1100) == pytest.approx(0.5, rel=0.05)

    def test_peak_frequency(self):
        s = tone(440.0, 1.0, 8000.0)
        assert welch_psd(s).peak_frequency() == pytest.approx(440.0, abs=4)

    def test_white_noise_is_flat(self, rng):
        s = white_noise(4.0, 8000.0, rng, rms_level=1.0)
        psd = welch_psd(s)
        low = psd.band_power(100, 1100)
        high = psd.band_power(2100, 3100)
        assert low == pytest.approx(high, rel=0.2)

    def test_empty_signal_rejected(self):
        from repro.dsp.signals import Signal

        with pytest.raises(SignalDomainError):
            welch_psd(Signal([], 8000.0))

    def test_short_signal_still_estimates(self):
        s = tone(100.0, 0.01, 8000.0)
        psd = welch_psd(s, segment_length=4096)
        assert psd.total_power() > 0

    def test_invalid_overlap_rejected(self):
        s = tone(100.0, 1.0, 8000.0)
        with pytest.raises(SignalDomainError):
            welch_psd(s, overlap=1.0)

    def test_band_power_inverted_edges_rejected(self):
        s = tone(100.0, 1.0, 8000.0)
        with pytest.raises(SignalDomainError):
            welch_psd(s).band_power(200.0, 100.0)


class TestPowerSpectrum:
    def test_resolves_close_tones(self):
        s = multi_tone([(1000.0, 1.0), (1010.0, 1.0)], 2.0, 16000.0)
        psd = power_spectrum(s)
        assert psd.bin_width < 1.0
        assert psd.band_power(995, 1005) > 0.1
        assert psd.band_power(1005, 1015) > 0.1


class TestSpectrogram:
    def test_shapes_consistent(self):
        s = tone(1000.0, 1.0, 16000.0)
        spec = spectrogram(s, frame_length=512, overlap=0.5)
        assert spec.power.shape == (
            len(spec.frequencies),
            len(spec.times),
        )

    def test_chirp_energy_moves(self):
        from repro.dsp.signals import chirp

        s = chirp(500.0, 4000.0, 1.0, 16000.0)
        spec = spectrogram(s, frame_length=1024)
        early = spec.band_trajectory(400, 1000)
        late = spec.band_trajectory(3000, 4500)
        n = len(spec.times)
        assert np.mean(early[: n // 4]) > np.mean(early[-n // 4 :])
        assert np.mean(late[-n // 4 :]) > np.mean(late[: n // 4])

    def test_signal_shorter_than_frame_rejected(self):
        s = tone(100.0, 0.01, 8000.0)
        with pytest.raises(SignalDomainError):
            spectrogram(s, frame_length=1024)


class TestConvenience:
    def test_band_rms_matches_time_domain(self):
        s = tone(1000.0, 2.0, 16000.0, amplitude=2.0)
        assert band_rms(s, 900, 1100) == pytest.approx(s.rms(), rel=0.05)

    def test_dominant_frequency(self):
        s = multi_tone([(100.0, 0.2), (2000.0, 1.0)], 1.0, 16000.0)
        assert dominant_frequency(s) == pytest.approx(2000.0, abs=10)


class TestOneSidedParity:
    """Even- and odd-length FFTs fold negative frequencies correctly.

    An odd FFT has no Nyquist bin, so everything but DC doubles; an
    even FFT keeps DC *and* Nyquist single. Getting either case wrong
    shows up as a Parseval violation, so the checks here are energy
    conservation at odd segment and frame lengths.
    """

    def test_correction_even_keeps_dc_and_nyquist_single(self):
        from repro.dsp.spectrum import _one_sided_correction

        power = np.ones(5)
        out = _one_sided_correction(power, n_fft=8)
        assert np.array_equal(out, [1.0, 2.0, 2.0, 2.0, 1.0])

    def test_correction_odd_doubles_all_but_dc(self):
        from repro.dsp.spectrum import _one_sided_correction

        power = np.ones(5)
        out = _one_sided_correction(power, n_fft=9)
        assert np.array_equal(out, [1.0, 2.0, 2.0, 2.0, 2.0])

    def test_parseval_odd_segment_length(self, rng):
        s = white_noise(2.0, 8000.0, rng, rms_level=1.0)
        psd = welch_psd(s, segment_length=1001)
        assert psd.total_power() == pytest.approx(1.0, rel=0.1)

    def test_parseval_odd_full_signal(self, rng):
        from repro.dsp.signals import Signal

        s = white_noise(1.0, 8000.0, rng, rms_level=1.0)
        odd = Signal(s.samples[:7999], s.sample_rate, s.unit)
        assert odd.n_samples % 2 == 1
        # One rectangular-windowed segment covering the whole signal:
        # Parseval is exact, so a wrong odd-length fold (double-counted
        # or dropped top bin) cannot hide in estimator variance.
        psd = power_spectrum(odd, window="rectangular")
        assert psd.total_power() == pytest.approx(
            float(np.mean(odd.samples**2)), rel=1e-9
        )

    def test_spectrogram_odd_frame_conserves_energy(self, rng):
        s = white_noise(2.0, 8000.0, rng, rms_level=1.0)
        spec = spectrogram(s, frame_length=513, overlap=0.5)
        bin_width = float(spec.frequencies[1] - spec.frequencies[0])
        per_frame = np.sum(spec.power, axis=0) * bin_width
        assert np.mean(per_frame) == pytest.approx(1.0, rel=0.1)


class TestDegenerateBinWidth:
    """Single-bin spectra integrate to zero, consistently everywhere."""

    def test_power_spectrum_bin_width_zero(self):
        from repro.dsp.spectrum import PowerSpectrum

        single = PowerSpectrum(
            frequencies=np.array([0.0]), psd=np.array([3.0])
        )
        assert single.bin_width == 0.0
        assert single.total_power() == 0.0
        assert single.band_power(0.0, 10.0) == 0.0

    def test_band_trajectory_single_bin_is_zero(self):
        from repro.dsp.spectrum import Spectrogram

        spec = Spectrogram(
            times=np.array([0.0, 0.5]),
            frequencies=np.array([0.0]),
            power=np.ones((1, 2)),
        )
        assert np.array_equal(
            spec.band_trajectory(0.0, 10.0), [0.0, 0.0]
        )
