"""Unit tests for filter design and application."""

import numpy as np
import pytest

from repro.dsp.filters import (
    FilterSpec,
    band_pass,
    band_stop,
    fir_band_pass,
    fir_low_pass,
    fir_low_pass_taps,
    high_pass,
    low_pass,
)
from repro.dsp.signals import multi_tone, tone
from repro.dsp.spectrum import band_power
from repro.errors import FilterDesignError


@pytest.fixture()
def two_tone():
    """100 Hz + 3 kHz test signal at 16 kHz."""
    return multi_tone([(100.0, 1.0), (3000.0, 1.0)], 1.0, 16000.0)


class TestIirFilters:
    def test_low_pass_keeps_low_removes_high(self, two_tone):
        out = low_pass(two_tone, 1000.0)
        assert band_power(out, 80, 120) > 0.1
        assert band_power(out, 2900, 3100) < 1e-6

    def test_high_pass_keeps_high_removes_low(self, two_tone):
        out = high_pass(two_tone, 1000.0)
        assert band_power(out, 2900, 3100) > 0.1
        assert band_power(out, 80, 120) < 1e-6

    def test_band_pass_keeps_only_band(self):
        s = multi_tone(
            [(100.0, 1.0), (1000.0, 1.0), (5000.0, 1.0)], 1.0, 16000.0
        )
        out = band_pass(s, 500.0, 2000.0)
        assert band_power(out, 900, 1100) > 0.1
        assert band_power(out, 80, 120) < 1e-6
        assert band_power(out, 4900, 5100) < 1e-6

    def test_band_stop_notches_band(self, two_tone):
        out = band_stop(two_tone, 2000.0, 4000.0)
        assert band_power(out, 80, 120) > 0.1
        assert band_power(out, 2900, 3100) < 1e-6

    def test_zero_phase_no_delay(self):
        s = tone(100.0, 0.5, 16000.0)
        out = low_pass(s, 1000.0)
        # Zero-phase filtering: peak positions unchanged.
        lag = np.argmax(np.correlate(out.samples, s.samples, "full")) - (
            s.n_samples - 1
        )
        assert abs(lag) <= 1

    def test_cutoff_at_nyquist_raises(self, two_tone):
        with pytest.raises(FilterDesignError):
            low_pass(two_tone, 8000.0)

    def test_cutoff_at_zero_raises(self, two_tone):
        with pytest.raises(FilterDesignError):
            high_pass(two_tone, 0.0)

    def test_inverted_band_raises(self, two_tone):
        with pytest.raises(FilterDesignError):
            band_pass(two_tone, 2000.0, 500.0)

    def test_too_short_signal_raises(self):
        s = tone(100.0, 0.002, 16000.0)
        with pytest.raises(FilterDesignError):
            low_pass(s, 1000.0)


class TestFilterSpec:
    def test_spec_dispatch(self, two_tone):
        spec = FilterSpec(kind="lowpass", high_hz=1000.0)
        out = spec.apply(two_tone)
        assert band_power(out, 2900, 3100) < 1e-6

    def test_unknown_kind_rejected(self):
        with pytest.raises(FilterDesignError):
            FilterSpec(kind="sideways")

    def test_bad_order_rejected(self):
        with pytest.raises(FilterDesignError):
            FilterSpec(kind="lowpass", high_hz=100.0, order=0)


class TestFirFilters:
    def test_fir_low_pass_removes_high(self, two_tone):
        out = fir_low_pass(two_tone, 1000.0, n_taps=255)
        assert band_power(out, 2900, 3100) < 1e-4

    def test_fir_band_pass(self):
        s = multi_tone(
            [(100.0, 1.0), (1000.0, 1.0), (5000.0, 1.0)], 1.0, 16000.0
        )
        out = fir_band_pass(s, 500.0, 2000.0, n_taps=255)
        assert band_power(out, 900, 1100) > 0.1
        assert band_power(out, 80, 120) < 1e-3

    def test_fir_delay_compensated(self):
        s = tone(200.0, 0.5, 16000.0)
        out = fir_low_pass(s, 1000.0, n_taps=101)
        assert out.n_samples == s.n_samples
        lag = np.argmax(np.correlate(out.samples, s.samples, "full")) - (
            s.n_samples - 1
        )
        assert abs(lag) <= 1

    def test_even_taps_rejected(self):
        with pytest.raises(FilterDesignError):
            fir_low_pass_taps(1000.0, 16000.0, n_taps=100)

    def test_preserves_unit_and_rate(self, two_tone):
        out = low_pass(two_tone, 1000.0)
        assert out.sample_rate == two_tone.sample_rate
        assert out.unit == two_tone.unit


class TestSosFiltfiltArray:
    """The hoisted-zi 2-D branch is bitwise scipy ``sosfiltfilt``.

    The batch path hoists the per-call initial-condition solve and the
    pad-length computation out of the row loop; these tests pin the
    claim that the hoist changes *nothing* numerically — every row of
    the 2-D result equals the per-row scipy reference to the bit,
    across filter orders (including order 1, which trims ``ntaps``)
    and odd/even lengths.
    """

    @pytest.mark.parametrize(
        "design",
        [
            ("lowpass", dict(N=8, Wn=0.2)),
            ("highpass", dict(N=1, Wn=0.1)),
            ("bandpass", dict(N=6, Wn=(0.1, 0.4))),
            ("bandstop", dict(N=4, Wn=(0.2, 0.3))),
        ],
    )
    @pytest.mark.parametrize("n_samples", [777, 9600, 9601])
    def test_bitwise_vs_scipy_per_row(self, design, n_samples):
        from scipy import signal as sp_signal

        from repro.dsp.filters import sos_filtfilt_array

        btype, kwargs = design
        sos = sp_signal.butter(
            btype=btype, output="sos", **kwargs
        )
        rng = np.random.default_rng(5)
        x = rng.normal(size=(3, n_samples))
        got = sos_filtfilt_array(x, sos)
        for index in range(x.shape[0]):
            want = sp_signal.sosfiltfilt(sos, x[index])
            assert np.array_equal(got[index], want)

    def test_float32_matches_old_store_cast(self):
        # scipy computes in float64 regardless of input dtype; the
        # float32 contract is float64 math stored back into float32 —
        # exactly what per-row sosfiltfilt-then-astype produces.
        from scipy import signal as sp_signal

        from repro.dsp.filters import sos_filtfilt_array

        sos = sp_signal.butter(4, 0.25, output="sos")
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 1024)).astype(np.float32)
        got = sos_filtfilt_array(x, sos)
        assert got.dtype == np.float32
        for index in range(x.shape[0]):
            want = sp_signal.sosfiltfilt(sos, x[index]).astype(
                np.float32
            )
            assert np.array_equal(got[index], want)

    def test_one_dimensional_input_delegates(self):
        from scipy import signal as sp_signal

        from repro.dsp.filters import sos_filtfilt_array

        sos = sp_signal.butter(4, 0.25, output="sos")
        rng = np.random.default_rng(7)
        x = rng.normal(size=512)
        assert np.array_equal(
            sos_filtfilt_array(x, sos), sp_signal.sosfiltfilt(sos, x)
        )
