"""Unit tests for scalar measures."""

import numpy as np
import pytest

from repro.dsp.measures import (
    db_to_linear,
    db_to_power_ratio,
    linear_to_db,
    max_cross_correlation,
    normalized_correlation,
    power_ratio_to_db,
    residual_snr_db,
    rms,
    snr_db,
    thd,
)
from repro.dsp.signals import Signal, multi_tone, tone, white_noise
from repro.errors import SignalDomainError


class TestDbConversions:
    def test_amplitude_round_trip(self):
        assert db_to_linear(linear_to_db(3.7)) == pytest.approx(3.7)

    def test_power_round_trip(self):
        assert db_to_power_ratio(
            power_ratio_to_db(0.042)
        ) == pytest.approx(0.042)

    def test_factor_of_ten_amplitude_is_20db(self):
        assert linear_to_db(10.0) == pytest.approx(20.0)

    def test_factor_of_ten_power_is_10db(self):
        assert power_ratio_to_db(10.0) == pytest.approx(10.0)

    def test_zero_gets_floor_not_inf(self):
        assert np.isfinite(linear_to_db(0.0))
        assert np.isfinite(power_ratio_to_db(0.0))

    def test_negative_ratio_rejected(self):
        with pytest.raises(SignalDomainError):
            linear_to_db(-1.0)
        with pytest.raises(SignalDomainError):
            power_ratio_to_db(-1.0)


class TestRms:
    def test_array_and_signal_agree(self):
        values = [1.0, -1.0, 1.0, -1.0]
        assert rms(np.array(values)) == pytest.approx(1.0)
        assert rms(Signal(values, 10.0)) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert rms(np.array([])) == 0.0


class TestSnr:
    def test_known_snr(self, rng):
        signal = tone(100.0, 1.0, 8000.0)  # rms = 0.707
        noise = white_noise(1.0, 8000.0, rng, rms_level=0.0707)
        assert snr_db(signal, noise) == pytest.approx(20.0, abs=1.0)

    def test_residual_snr_scale_invariant(self, rng):
        reference = tone(100.0, 1.0, 8000.0)
        noise = white_noise(1.0, 8000.0, rng, rms_level=0.01)
        degraded = reference + noise
        snr_unit = residual_snr_db(reference, degraded)
        snr_scaled = residual_snr_db(reference, degraded * 0.001)
        assert snr_unit == pytest.approx(snr_scaled, abs=1e-6)

    def test_residual_snr_silent_reference_rejected(self):
        silent = Signal([0.0] * 100, 8000.0)
        other = Signal([1.0] * 100, 8000.0)
        with pytest.raises(SignalDomainError):
            residual_snr_db(silent, other)


class TestThd:
    def test_pure_tone_low_thd(self):
        s = tone(1000.0, 1.0, 48000.0)
        assert thd(s, 1000.0) < 0.01

    def test_distorted_tone_higher_thd(self):
        s = tone(1000.0, 1.0, 48000.0)
        distorted = s.replace(
            samples=s.samples + 0.1 * np.square(s.samples)
        )
        assert thd(distorted, 1000.0) > 0.03

    def test_thd_detects_known_harmonic_ratio(self):
        s = multi_tone([(1000.0, 1.0), (2000.0, 0.1)], 1.0, 48000.0)
        assert thd(s, 1000.0) == pytest.approx(0.1, rel=0.2)

    def test_missing_fundamental_rejected(self, rng):
        s = white_noise(0.5, 48000.0, rng, rms_level=1e-15)
        with pytest.raises(SignalDomainError):
            thd(s, 1000.0)


class TestCorrelation:
    def test_identical_arrays_correlate_fully(self, rng):
        x = rng.normal(size=256)
        assert normalized_correlation(x, x) == pytest.approx(1.0)

    def test_negated_arrays_anticorrelate(self, rng):
        x = rng.normal(size=256)
        assert normalized_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_noise_near_zero(self, rng):
        x = rng.normal(size=4096)
        y = rng.normal(size=4096)
        assert abs(normalized_correlation(x, y)) < 0.1

    def test_constant_input_gives_zero(self):
        assert normalized_correlation(
            np.ones(16), np.arange(16.0)
        ) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SignalDomainError):
            normalized_correlation(np.ones(4), np.ones(5))

    def test_max_cross_correlation_finds_lag(self, rng):
        x = rng.normal(size=512)
        y = np.roll(x, 3)
        aligned = max_cross_correlation(x, y, max_lag=5)
        unaligned = normalized_correlation(x, y)
        assert aligned > 0.95
        assert aligned > unaligned

    def test_negative_lag_rejected(self):
        with pytest.raises(SignalDomainError):
            max_cross_correlation(np.ones(4), np.ones(4), max_lag=-1)
