"""The reporter: stage tree, latency percentiles, breakdowns, CLI."""

from __future__ import annotations

import json

from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    render_report,
    render_stage_tree,
    summarize,
)
from repro.obs.trace import Tracer


def synthetic_trace() -> Tracer:
    """A miniature two-shard trace with utterance latency markers."""
    tracer = Tracer()
    with tracer.span("experiment", experiment="S1"):
        with tracer.span("sharded-fleet", shards=2):
            for shard in range(2):
                with tracer.span(
                    "shard", shard=shard, streams=2
                ) as shard_id:
                    tracer.record(
                        "welch", 0.0, 0.25, parent_id=shard_id
                    )
                    for stream in range(2):
                        tracer.record(
                            "utterance",
                            0.5,
                            0.5,
                            parent_id=shard_id,
                            stream=2 * shard + stream,
                            latency_s=0.1 * (2 * shard + stream + 1),
                        )
    return tracer


class TestStageTree:
    def test_same_named_siblings_aggregate(self):
        tree = render_stage_tree(synthetic_trace().spans)
        # Two shard spans collapse into one aggregated row.
        assert tree.count("shard ") == 1
        assert "2x" in tree

    def test_empty_trace_renders_placeholder(self):
        assert render_stage_tree([]) == "(empty trace)"

    def test_orphan_parents_render_as_roots(self):
        tracer = Tracer()
        tracer.record("lonely", 0.0, 1.0, parent_id=999)
        assert "lonely" in render_stage_tree(tracer.spans)


class TestReport:
    def test_all_sections_render(self):
        report = render_report(synthetic_trace().spans)
        assert "== stage tree" in report
        assert "== stream-time detection latency" in report
        assert "== shards" in report
        assert "== streams" in report
        for label in ("p50", "p90", "p99", "p99.9"):
            assert label in report

    def test_latency_section_absent_without_utterances(self):
        tracer = Tracer()
        tracer.record("stage", 0.0, 1.0)
        report = render_report(tracer.spans)
        assert "detection latency" not in report


class TestSummary:
    def test_summary_structure(self):
        summary = summarize(synthetic_trace().spans)
        assert summary["schema_version"] == 1
        assert summary["span_count"] == 10
        assert summary["spans_by_name"]["utterance"]["count"] == 4
        latency = summary["utterance_latency_s"]
        assert latency["count"] == 4
        assert latency["max"] == 0.4
        assert len(summary["shards"]) == 2
        assert summary["shards"][0]["shard"] == 0


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        synthetic_trace().write_jsonl(trace_path)
        json_path = tmp_path / "summary.json"
        code = obs_main(
            ["report", str(trace_path), "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== stage tree" in out
        assert "p99.9" in out
        payload = json.loads(json_path.read_text())
        assert payload["span_count"] == 10

    def test_missing_trace_is_a_clean_error(self, tmp_path, capsys):
        code = obs_main(["report", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_empty_trace_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = obs_main(["report", str(path)])
        assert code == 2
        assert "no spans" in capsys.readouterr().err
