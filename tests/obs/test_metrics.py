"""The metrics registry: counters, gauges, exact-quantile recorders.

The exact-quantile contract is checked by property: whatever samples
a :class:`~repro.obs.metrics.LatencyRecorder` sees, its quantiles are
``numpy.quantile`` of the raw samples — no sketch error. The
reservoir mode's contract is the complementary one: memory is
bounded at ``max_samples`` while ``count``/``total`` stay exact, and
the retained set is a deterministic function of the recorder name
and observation sequence.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsRegistry,
    activate,
    current_metrics,
    metrics_active,
)

samples_lists = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=1.0)


class TestExactQuantiles:
    @given(samples=samples_lists, q=quantiles)
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_quantile_exactly(self, samples, q):
        """Exact mode is numpy.quantile of the raw samples, bit for
        bit — the recorder stores samples, it does not sketch them."""
        recorder = LatencyRecorder("t")
        for value in samples:
            recorder.observe(value)
        assert recorder.quantile(q) == float(
            np.quantile(np.asarray(samples), q)
        )

    @given(samples=samples_lists)
    @settings(max_examples=50, deadline=None)
    def test_summary_carries_the_standard_percentiles(self, samples):
        recorder = LatencyRecorder("t")
        recorder.observe_many(samples)
        summary = recorder.summary()
        assert set(summary) == {
            "count", "mean", "max", "p50", "p90", "p99", "p99.9",
        }
        assert summary["count"] == len(samples)
        assert summary["max"] == max(samples)
        assert summary["p50"] == float(np.quantile(samples, 0.5))
        assert summary["p99.9"] == float(np.quantile(samples, 0.999))

    def test_empty_recorder_refuses_statistics(self):
        recorder = LatencyRecorder("t")
        for access in (
            lambda: recorder.mean,
            lambda: recorder.max,
            lambda: recorder.quantile(0.5),
        ):
            with pytest.raises(ValueError):
                access()


class TestReservoir:
    @given(
        n=st.integers(min_value=1, max_value=500),
        max_samples=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_memory_is_bounded_and_counts_stay_exact(
        self, n, max_samples
    ):
        recorder = LatencyRecorder("t", max_samples=max_samples)
        values = [float(i) for i in range(n)]
        recorder.observe_many(values)
        assert len(recorder.samples) <= max_samples
        assert recorder.count == n
        assert recorder.total == sum(values)
        # Everything retained was actually observed.
        assert set(recorder.samples) <= set(values)

    def test_reservoir_is_deterministic_per_name(self):
        """Same name, same observations -> same retained set: the
        eviction generator is seeded from the recorder name, never
        from global randomness (bitwise-inertness of metrics)."""
        a = LatencyRecorder("t", max_samples=8)
        b = LatencyRecorder("t", max_samples=8)
        for value in range(1000):
            a.observe(float(value))
            b.observe(float(value))
        assert a.samples == b.samples

    def test_below_capacity_reservoir_is_exact(self):
        recorder = LatencyRecorder("t", max_samples=100)
        recorder.observe_many([3.0, 1.0, 2.0])
        assert recorder.quantile(0.5) == 2.0

    def test_quantile_error_is_within_the_documented_bound(self):
        """At N=1000 the documented rank-space standard error at the
        median is ~1.6 percentiles; 10 sigma of that on a uniform
        grid is a generous, deterministic acceptance band."""
        n, cap = 20_000, 1000
        recorder = LatencyRecorder("bound-check", max_samples=cap)
        for i in range(n):
            recorder.observe(i / n)
        error = abs(recorder.quantile(0.5) - 0.5)
        sigma = (0.5 * 0.5 / cap) ** 0.5
        assert error < 10 * sigma

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder("t", max_samples=0)


class TestCountersAndGauges:
    def test_counter_accumulates_and_never_decreases(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_is_last_write_wins(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.latency("b") is registry.latency("b")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_as_dict_and_json_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("load").set(0.5)
        registry.latency("lat").observe_many([1.0, 2.0, 3.0])
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        metrics = payload["metrics"]
        assert metrics["runs"] == {"type": "counter", "value": 2}
        assert metrics["load"] == {"type": "gauge", "value": 0.5}
        assert metrics["lat"]["p50"] == 2.0
        assert metrics["lat"]["exact"] is True

    def test_empty_latency_serializes_without_stats(self):
        registry = MetricsRegistry()
        registry.latency("lat")
        assert registry.as_dict()["lat"]["count"] == 0


class TestAmbientHook:
    def test_inactive_by_default_and_scoped_by_activate(self):
        assert current_metrics() is None
        assert not metrics_active()
        registry = MetricsRegistry()
        with activate(registry):
            assert current_metrics() is registry
            assert metrics_active()
        assert current_metrics() is None
