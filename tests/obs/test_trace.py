"""Span tracing: nesting, adoption, serialization, the ambient hook.

The structural contracts the instrumented layers lean on:

* ``span()`` context managers nest through a per-thread stack, so a
  stage recorded inside an open span lands under it without explicit
  parent plumbing;
* ``adopt()`` re-bases a worker tracer's spans with fresh ids — the
  merge step that keeps multi-shard traces one consistent tree with
  non-overlapping span ids;
* ``attached()`` carries a parent across threads (the fleet's thread
  pool dispatch);
* JSONL round-trips bit-exactly enough for the reporter.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    current_tracer,
    maybe_span,
    read_trace,
    tracing_active,
)


def by_name(spans, name):
    return [span for span in spans if span.name == name]


class TestNesting:
    def test_context_manager_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.record("leaf", 0.0, 1.0, n=3)
        spans = tracer.spans
        outer = by_name(spans, "outer")[0]
        inner = by_name(spans, "inner")[0]
        leaf = by_name(spans, "leaf")[0]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert leaf.attrs == {"n": 3}
        assert inner.start_s <= inner.end_s
        assert outer.start_s <= inner.start_s

    def test_explicit_parent_and_preallocated_id(self):
        tracer = Tracer()
        group_id = tracer.new_id()
        child = tracer.record("child", 0.0, 1.0, parent_id=group_id)
        group = tracer.record(
            "group", 0.0, 2.0, parent_id=None, span_id=group_id
        )
        assert child.parent_id == group.span_id == group_id
        assert len({span.span_id for span in tracer.spans}) == 2

    def test_attached_carries_a_parent_across_threads(self):
        tracer = Tracer()
        recorded = []

        def worker(parent_id):
            with tracer.attached(parent_id):
                recorded.append(tracer.record("work", 0.0, 1.0))

        with tracer.span("dispatch") as dispatch_id:
            thread = threading.Thread(target=worker, args=(dispatch_id,))
            thread.start()
            thread.join()
        assert recorded[0].parent_id == dispatch_id

    def test_thread_stacks_are_independent(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["parent"] = tracer.current_parent()

        with tracer.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None


class TestAdoption:
    def test_adopt_rebases_ids_and_preserves_structure(self):
        worker = Tracer()
        with worker.span("shard", shard=1):
            worker.record("stage", 0.0, 1.0)
        parent = Tracer()
        with parent.span("fleet") as fleet_id:
            adopted = parent.adopt(worker.spans, parent_id=fleet_id)
        merged = parent.spans
        # Fresh, non-overlapping ids across the merged trace.
        assert len({span.span_id for span in merged}) == len(merged)
        shard = by_name(adopted, "shard")[0]
        stage = by_name(adopted, "stage")[0]
        assert shard.parent_id == fleet_id
        assert stage.parent_id == shard.span_id
        assert shard.attrs == {"shard": 1}

    def test_two_workers_with_colliding_ids_merge_cleanly(self):
        workers = []
        for shard in range(2):
            worker = Tracer()
            with worker.span("shard", shard=shard):
                worker.record("stage", 0.0, 1.0)
            workers.append(worker)
        # Both worker tracers allocated the same local ids.
        assert {s.span_id for s in workers[0].spans} == {
            s.span_id for s in workers[1].spans
        }
        parent = Tracer()
        with parent.span("fleet") as fleet_id:
            for worker in workers:
                parent.adopt(worker.spans, parent_id=fleet_id)
        merged = parent.spans
        assert len({span.span_id for span in merged}) == len(merged)
        shards = by_name(merged, "shard")
        assert sorted(s.attrs["shard"] for s in shards) == [0, 1]
        for stage in by_name(merged, "stage"):
            assert stage.parent_id in {s.span_id for s in shards}

    def test_adoption_inherits_the_open_span_by_default(self):
        worker = Tracer()
        worker.record("w", 0.0, 1.0, parent_id=None)
        parent = Tracer()
        with parent.span("root") as root_id:
            adopted = parent.adopt(worker.spans)
        assert adopted[0].parent_id == root_id


class TestSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            tracer.record("leaf", 1.25, 2.5, stream=4, latency_s=0.27)
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        loaded = read_trace(path)
        assert loaded == tracer.spans
        leaf = by_name(loaded, "leaf")[0]
        assert leaf.attrs["latency_s"] == 0.27
        assert leaf.duration_s == 1.25

    def test_span_dict_roundtrip_without_attrs(self):
        span = Span(1, None, "s", 0.0, 1.0)
        row = span.as_dict()
        assert "attrs" not in row
        assert Span.from_dict(row) == span


class TestAmbientHook:
    def test_inactive_by_default(self):
        assert current_tracer() is None
        assert not tracing_active()

    def test_activate_scopes_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_maybe_span_is_a_noop_when_inactive(self):
        with maybe_span("anything") as span_id:
            assert span_id is None

    def test_maybe_span_records_when_active(self):
        tracer = Tracer()
        before = time.perf_counter()
        with activate(tracer):
            with maybe_span("block", n=1) as span_id:
                assert isinstance(span_id, int)
        block = tracer.spans[0]
        assert block.name == "block"
        assert block.span_id == span_id
        assert block.start_s >= before


class TestPoolWorkerIsolation:
    def test_worker_spans_survive_pickling(self):
        import pickle

        tracer = Tracer()
        with tracer.span("shard", shard=0):
            tracer.record("stage", 0.0, 1.0, trials=2)
        assert pickle.loads(pickle.dumps(tracer.spans)) == tracer.spans


@pytest.mark.parametrize("bad", ["not json at all"])
def test_read_trace_rejects_garbage(tmp_path, bad):
    path = tmp_path / "trace.jsonl"
    path.write_text(bad + "\n")
    with pytest.raises(ValueError):
        read_trace(path)
