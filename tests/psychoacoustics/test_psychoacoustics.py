"""Unit tests for the psychoacoustics package."""

import numpy as np
import pytest

from repro.acoustics.spl import spl_to_pressure
from repro.dsp.signals import Unit, tone
from repro.psychoacoustics.audibility import (
    audibility_margin_db,
    audible,
    evaluate_audibility,
    third_octave_bands,
)
from repro.psychoacoustics.threshold import (
    ULTRASONIC_THRESHOLD_SPL,
    hearing_threshold_spl,
    threshold_curve,
)
from repro.psychoacoustics.weighting import (
    a_weighted_spl,
    a_weighting_db,
)
from repro.errors import SignalDomainError


class TestThreshold:
    def test_most_sensitive_region_near_3khz(self):
        t3k = hearing_threshold_spl(3300.0)
        assert t3k < hearing_threshold_spl(100.0)
        assert t3k < hearing_threshold_spl(15000.0)
        assert t3k < 0.0  # the 3-4 kHz dip is below 0 dB SPL

    def test_1khz_near_zero(self):
        assert hearing_threshold_spl(1000.0) == pytest.approx(3.4, abs=2.0)

    def test_low_frequency_rise(self):
        assert hearing_threshold_spl(30.0) > 40.0

    def test_steep_rise_toward_20khz(self):
        assert hearing_threshold_spl(18000.0) > 40.0

    def test_ultrasound_unhearable(self):
        assert hearing_threshold_spl(25000.0) == ULTRASONIC_THRESHOLD_SPL
        assert hearing_threshold_spl(40000.0) == ULTRASONIC_THRESHOLD_SPL

    def test_invalid_frequency_rejected(self):
        with pytest.raises(SignalDomainError):
            hearing_threshold_spl(0.0)

    def test_curve_matches_scalar(self):
        freqs = np.array([100.0, 1000.0, 10000.0])
        curve = threshold_curve(freqs)
        assert curve[1] == hearing_threshold_spl(1000.0)


class TestAWeighting:
    def test_zero_at_1khz(self):
        assert a_weighting_db(1000.0) == pytest.approx(0.0, abs=0.2)

    def test_low_frequency_strongly_discounted(self):
        assert a_weighting_db(50.0) < -25.0

    def test_combined_level(self):
        level = a_weighted_spl(
            np.array([60.0, 60.0]), np.array([1000.0, 2000.0])
        )
        assert 61.0 < level < 65.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SignalDomainError):
            a_weighted_spl(np.array([60.0]), np.array([1000.0, 2000.0]))


class TestThirdOctaveBands:
    def test_bands_cover_audible_range(self):
        bands = third_octave_bands()
        assert bands[0][0] <= 25.0
        assert bands[-1][2] >= 18000.0

    def test_bands_contiguous(self):
        bands = third_octave_bands()
        for (_, _, high), (low, _, _) in zip(bands, bands[1:]):
            assert high == pytest.approx(low, rel=1e-9)

    def test_1khz_is_a_center(self):
        centers = [c for _, c, _ in third_octave_bands()]
        assert any(abs(c - 1000.0) < 1.0 for c in centers)


class TestAudibility:
    def _tone_at_spl(self, frequency, spl, rate=96000.0):
        rms = spl_to_pressure(spl)
        return tone(
            frequency, 0.5, rate, amplitude=rms * np.sqrt(2),
            unit=Unit.PASCAL,
        )

    def test_loud_1khz_tone_is_audible(self):
        assert audible(self._tone_at_spl(1000.0, 60.0))

    def test_faint_1khz_tone_is_not(self):
        assert not audible(self._tone_at_spl(1000.0, -10.0))

    def test_margin_tracks_level(self):
        quiet = audibility_margin_db(self._tone_at_spl(1000.0, 20.0))
        loud = audibility_margin_db(self._tone_at_spl(1000.0, 40.0))
        assert loud - quiet == pytest.approx(20.0, abs=1.5)

    def test_ultrasound_inaudible_even_loud(self):
        wave = self._tone_at_spl(30000.0, 110.0, rate=192000.0)
        report = evaluate_audibility(wave)
        assert not report.is_audible

    def test_low_frequency_needs_more_spl(self):
        # 45 dB SPL: audible at 1 kHz, below threshold at 40 Hz.
        assert audible(self._tone_at_spl(1000.0, 45.0))
        assert not audible(self._tone_at_spl(40.0, 45.0))

    def test_worst_band_identifies_tone(self):
        report = evaluate_audibility(self._tone_at_spl(1000.0, 60.0))
        assert report.worst_band_hz() == pytest.approx(1000.0, rel=0.2)

    def test_requires_pascal(self):
        with pytest.raises(SignalDomainError):
            evaluate_audibility(tone(1000.0, 0.1, 48000.0))
