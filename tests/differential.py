"""Shared bitwise-comparison helper for the differential oracles.

The batch-vs-scalar suite (``tests/sim/test_scenarios.py``), the
experiment equivalence suite and the generated-environment fuzz suite
(``tests/sim/test_fuzz.py``) all compare lists of
:class:`~repro.sim.runner.TrialOutcome`. One definition of
"identical" — fields *and* recorded waveforms, byte for byte — keeps
the oracle itself from drifting between files. Import it like the
strategies module (``tests/`` is on ``sys.path``)::

    from differential import outcomes_identical
"""

from __future__ import annotations

import numpy as np


def outcomes_identical(a, b, compare_recordings: bool = True) -> bool:
    """Whether two trial-outcome sequences agree bitwise.

    Compares success, recognized command, acceptance and DTW distance
    per trial; with ``compare_recordings`` (the default) the recorded
    waveforms must also match sample for sample.
    """
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (
            x.success != y.success
            or x.recognized_command != y.recognized_command
            or x.accepted != y.accepted
            or x.distance != y.distance
        ):
            return False
        if compare_recordings:
            if (x.recording is None) != (y.recording is None):
                return False
            if x.recording is not None and not np.array_equal(
                x.recording.samples, y.recording.samples
            ):
                return False
    return True
