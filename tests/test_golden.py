"""Golden-trace regression suite.

``tests/golden/`` holds the rendered quick-mode output table (seed 0)
of every experiment, frozen at the time the references were last
blessed. The comparison is *textual byte equality*: any change to a
success rate, a detector verdict, a measured range or even a column
header fails loudly here — which is exactly what makes refactors such
as the vectorized batch kernel safe to land.

To re-bless after an intentional change::

    pytest tests/test_golden.py --update-golden

and review the resulting ``tests/golden/`` diff like any other code.
"""

from pathlib import Path

import pytest

from repro.experiments import ALL_EXPERIMENTS

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_table_matches_golden(name, experiment_tables, request):
    """The rendered quick-mode table is byte-identical to the fixture."""
    rendered = experiment_tables[name].render() + "\n"
    path = GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        return
    if not path.exists():
        pytest.fail(
            f"no golden fixture for {name}; record one with "
            "`pytest tests/test_golden.py --update-golden`"
        )
    expected = path.read_text()
    assert rendered == expected, (
        f"{name} quick-mode output drifted from tests/golden/{name}.txt; "
        "if the change is intentional, re-bless with "
        "`pytest tests/test_golden.py --update-golden` and commit the diff"
    )


def test_no_stale_golden_fixtures():
    """Every golden file corresponds to a registered experiment."""
    stale = [
        path.name
        for path in GOLDEN_DIR.glob("*.txt")
        if path.stem not in ALL_EXPERIMENTS
    ]
    assert not stale, f"golden fixtures without experiments: {stale}"
