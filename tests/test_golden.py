"""Golden-trace regression suite.

``tests/golden/`` holds the rendered quick-mode output table (seed 0)
of every experiment, frozen at the time the references were last
blessed. The comparison is *textual byte equality*: any change to a
success rate, a detector verdict, a measured range or even a column
header fails loudly here — which is exactly what makes refactors such
as the vectorized batch kernel safe to land.

Beyond the 16 free-field tables, the scenario dimension is pinned for
the range/accuracy flagships *and* the defense: ``<EXP>@<scenario>.txt``
freezes T2 and F4 inside a reverberant living room and against a
walking attacker, T3 inside the living room, F8 under TV
interference and the streaming guard (S1 — chunked-vs-offline parity
plus fleet dispositions and stream-time latency) inside the living
room — so neither an environment-model change, a defense-dataset
change nor an online-path change can drift silently.

To re-bless after an intentional change::

    pytest tests/test_golden.py --update-golden

and review the resulting ``tests/golden/`` diff like any other code.
"""

from pathlib import Path

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.sim.spec import scenario_names

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (experiment, scenario) cells frozen beyond the free-field baseline.
SCENARIO_CASES = [
    ("T2", "living_room"),
    ("T2", "walking_attacker"),
    ("F4", "living_room"),
    ("F4", "walking_attacker"),
    ("T3", "living_room"),
    ("F8", "tv_interference"),
    ("S1", "living_room"),
]


def _check_or_bless(rendered: str, path: Path, label: str, request):
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        return
    if not path.exists():
        pytest.fail(
            f"no golden fixture for {label}; record one with "
            "`pytest tests/test_golden.py --update-golden`"
        )
    expected = path.read_text()
    assert rendered == expected, (
        f"{label} quick-mode output drifted from "
        f"tests/golden/{path.name}; if the change is intentional, "
        "re-bless with `pytest tests/test_golden.py --update-golden` "
        "and commit the diff"
    )


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_table_matches_golden(name, experiment_tables, request):
    """The rendered quick-mode table is byte-identical to the fixture."""
    rendered = experiment_tables[name].render() + "\n"
    _check_or_bless(rendered, GOLDEN_DIR / f"{name}.txt", name, request)


@pytest.fixture(scope="session")
def scenario_tables():
    """Quick-mode tables (seed 0) for the pinned scenario cells."""
    return {
        (name, scenario): ALL_EXPERIMENTS[name].run(
            quick=True, seed=0, scenario=scenario
        )
        for name, scenario in SCENARIO_CASES
    }


@pytest.mark.parametrize("name,scenario", SCENARIO_CASES)
def test_scenario_table_matches_golden(
    name, scenario, scenario_tables, request
):
    """Scenario-dimension tables are byte-identical to their fixtures."""
    rendered = scenario_tables[(name, scenario)].render() + "\n"
    _check_or_bless(
        rendered,
        GOLDEN_DIR / f"{name}@{scenario}.txt",
        f"{name}@{scenario}",
        request,
    )


def test_no_stale_golden_fixtures():
    """Every golden file maps to a registered experiment (and, for
    ``EXP@scenario`` fixtures, a registered scenario)."""
    stale = []
    for path in GOLDEN_DIR.glob("*.txt"):
        experiment, _, scenario = path.stem.partition("@")
        if experiment not in ALL_EXPERIMENTS:
            stale.append(path.name)
        elif scenario and scenario not in scenario_names():
            stale.append(path.name)
    assert not stale, f"golden fixtures without experiments: {stale}"
