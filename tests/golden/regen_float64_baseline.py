"""Regenerate ``float64_baseline.json`` — the golden-mode digests.

The baseline freezes the *default* (float64) numerics: sha256 digests
of a small defense dataset build and a T2 trial-group run. The test
suite (``tests/test_float64_baseline.py``) recomputes both and
compares, so any change to the golden-path numbers — however the code
got faster — fails loudly instead of drifting silently.

Run this ONLY for an intentional, reviewed numerical change::

    PYTHONPATH=src python tests/golden/regen_float64_baseline.py

The script recomputes the digests from the configs embedded in the
JSON and rewrites the file in place, preserving the comment and
config blocks.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).with_name("float64_baseline.json")


def dataset_digests(config_block: dict) -> tuple[str, str]:
    """Sha256 of the dataset features and labels for a config block."""
    from repro.defense.dataset import DatasetConfig, build_dataset

    config = DatasetConfig(
        commands=tuple(config_block["commands"]),
        distances_m=tuple(config_block["distances_m"]),
        n_trials=config_block["n_trials"],
        attacker_kind=config_block["attacker_kind"],
        seed=config_block["seed"],
    )
    dataset = build_dataset(config, precision="float64")
    return (
        hashlib.sha256(dataset.features.tobytes()).hexdigest(),
        hashlib.sha256(dataset.labels.tobytes()).hexdigest(),
    )


def t2_digest(group_block: dict) -> str:
    """Sha256 over the (success, distance) reprs of a T2 group run."""
    from repro.experiments._emissions import array_split
    from repro.sim.engine import (
        EmissionSpec,
        ExperimentEngine,
        TrialGroup,
    )
    from repro.sim.scenario import VictimDevice
    from repro.sim.spec import get_scenario

    assert group_block["emission"][0] == "array_split"
    assert group_block["device"] == "phone(seed=1)"
    scenario = get_scenario(group_block["scenario"]).build(
        group_block["command"], group_block["distance_m"]
    )
    group = TrialGroup(
        scenario,
        VictimDevice.phone(seed=1),
        EmissionSpec(array_split, tuple(group_block["emission"][1])),
        group_block["n_trials"],
    )
    engine = ExperimentEngine(jobs=1, batch=True, precision="float64")
    outcomes = engine.run_trial_groups(
        [group],
        np.random.default_rng(group_block["engine_seed"]),
        keep_recordings=False,
    )[0]
    blob = "".join(
        repr((bool(o.success), float(o.distance))) for o in outcomes
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def main() -> None:
    baseline = json.loads(BASELINE_PATH.read_text())
    features, labels = dataset_digests(baseline["dataset_config"])
    baseline["features_sha256"] = features
    baseline["labels_sha256"] = labels
    baseline["t2_outcomes_sha256"] = t2_digest(baseline["t2_group"])
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"rewrote {BASELINE_PATH}")
    print(f"  features_sha256    {features}")
    print(f"  labels_sha256      {labels}")
    print(f"  t2_outcomes_sha256 {baseline['t2_outcomes_sha256']}")


if __name__ == "__main__":
    main()
