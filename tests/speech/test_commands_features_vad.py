"""Unit tests for the command corpus, MFCC front-end and VAD."""

import numpy as np
import pytest

from repro.dsp.signals import silence, tone
from repro.speech.commands import (
    COMMAND_CORPUS,
    get_command,
    synthesize_command,
)
from repro.speech.features import (
    MfccConfig,
    MfccExtractor,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
)
from repro.speech.vad import frame_energies, trim_silence, voice_activity
from repro.errors import RecognitionError, SynthesisError


class TestCorpus:
    def test_corpus_covers_paper_commands(self):
        assert "ok_google" in COMMAND_CORPUS
        assert "alexa" in COMMAND_CORPUS
        assert "take_a_picture" in COMMAND_CORPUS
        assert "add_milk" in COMMAND_CORPUS
        assert len(COMMAND_CORPUS) >= 8

    def test_all_commands_synthesize(self, rng):
        for name in COMMAND_CORPUS:
            wave = synthesize_command(name, rng)
            assert wave.duration > 0.2
            assert wave.rms() > 0.01

    def test_unknown_command_rejected(self):
        with pytest.raises(SynthesisError):
            get_command("self_destruct")


class TestMelScale:
    def test_round_trip(self):
        assert mel_to_hz(hz_to_mel(1234.5)) == pytest.approx(1234.5)

    def test_1000hz_is_1000mel(self):
        assert hz_to_mel(1000.0) == pytest.approx(1000.0, abs=1.0)


class TestFilterbank:
    def test_shape(self):
        bank = mel_filterbank(26, 512, 16000.0)
        assert bank.shape == (26, 257)

    def test_rows_nonzero(self):
        bank = mel_filterbank(26, 512, 16000.0)
        assert np.all(bank.sum(axis=1) > 0)

    def test_invalid_band_rejected(self):
        with pytest.raises(RecognitionError):
            mel_filterbank(26, 512, 16000.0, low_hz=9000.0)

    def test_too_few_filters_rejected(self):
        with pytest.raises(RecognitionError):
            mel_filterbank(1, 512, 16000.0)


class TestMfcc:
    def test_feature_shape(self, rng):
        wave = synthesize_command("alexa", rng)
        features = MfccExtractor().extract(wave)
        config = MfccConfig()
        expected_dim = (config.n_coefficients + 1) * 2  # energy + deltas
        assert features.shape[1] == expected_dim
        assert features.shape[0] > 20

    def test_mean_normalized(self, rng):
        wave = synthesize_command("alexa", rng)
        config = MfccConfig(include_deltas=False)
        features = MfccExtractor(config).extract(wave)
        assert np.allclose(np.mean(features, axis=0), 0.0, atol=1e-9)

    def test_different_phonemes_different_features(self, rng):
        from repro.speech.synthesis import FormantSynthesizer

        synth = FormantSynthesizer()
        extractor = MfccExtractor(MfccConfig(mean_normalize=False))
        aa = extractor.extract(synth.synthesize([("AA", 0.3)], rng))
        ss = extractor.extract(synth.synthesize([("S", 0.3)], rng))
        distance = np.linalg.norm(
            np.mean(aa, axis=0) - np.mean(ss, axis=0)
        )
        assert distance > 1.0

    def test_too_short_signal_rejected(self):
        with pytest.raises(RecognitionError):
            MfccExtractor().extract(tone(100.0, 0.001, 16000.0))

    def test_config_validation(self):
        with pytest.raises(RecognitionError):
            MfccConfig(hop_length_s=0.05, frame_length_s=0.025)
        with pytest.raises(RecognitionError):
            MfccConfig(n_coefficients=40, n_filters=26)
        with pytest.raises(RecognitionError):
            MfccConfig(pre_emphasis=1.5)


class TestVad:
    def test_frame_energies_shape(self, rng):
        wave = synthesize_command("alexa", rng)
        energies = frame_energies(wave)
        assert energies.ndim == 1
        assert energies.size > 10

    def test_activity_found_in_speech(self, rng):
        wave = synthesize_command("alexa", rng)
        mask = voice_activity(wave)
        assert np.mean(mask) > 0.3

    def test_no_activity_in_silence(self):
        quiet = silence(1.0, 16000.0)
        mask = voice_activity(quiet)
        assert not np.any(mask)

    def test_trim_removes_padding(self, rng):
        wave = synthesize_command("alexa", rng)
        padded = wave.padded(
            int(0.5 * wave.sample_rate), int(0.5 * wave.sample_rate)
        )
        trimmed = trim_silence(padded)
        assert trimmed.duration < padded.duration - 0.5

    def test_trim_of_silence_returns_unchanged(self):
        quiet = silence(0.5, 16000.0)
        assert trim_silence(quiet).n_samples == quiet.n_samples

    def test_trim_keeps_quiet_tails_of_noisy_speech(self, rng):
        # Dynamic-range expansion must not amputate soft phonemes: see
        # the VAD threshold rationale.
        wave = synthesize_command("ok_google", rng)
        loud_then_soft = wave.replace(
            samples=np.concatenate(
                [wave.samples, 0.05 * wave.samples]
            )
        )
        trimmed = trim_silence(loud_then_soft)
        assert trimmed.duration > 1.5 * wave.duration

    def test_too_short_signal_rejected(self):
        with pytest.raises(RecognitionError):
            frame_energies(tone(100.0, 0.001, 16000.0))
