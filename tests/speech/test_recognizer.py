"""Unit tests for the DTW keyword recogniser."""

import numpy as np
import pytest

from repro.dsp.signals import white_noise
from repro.speech.commands import synthesize_command
from repro.speech.recognizer import KeywordRecognizer
from repro.errors import RecognitionError


class TestEnrollment:
    def test_commands_listed(self, enrolled_recognizer):
        assert enrolled_recognizer.commands == [
            "alexa",
            "ok_google",
            "take_a_picture",
        ]

    def test_recognize_before_enroll_rejected(self, ok_google_voice):
        with pytest.raises(RecognitionError):
            KeywordRecognizer().recognize(ok_google_voice)

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(RecognitionError):
            KeywordRecognizer(acceptance_threshold=-1.0)
        with pytest.raises(RecognitionError):
            KeywordRecognizer(band_fraction=0.0)


class TestCleanRecognition:
    def test_recognizes_fresh_synthesis(self, enrolled_recognizer):
        rng = np.random.default_rng(99)
        for name in ("ok_google", "alexa", "take_a_picture"):
            wave = synthesize_command(name, rng)
            result = enrolled_recognizer.recognize(wave)
            assert result.accepted
            assert result.command == name

    def test_recognizes_as_requires_both(self, enrolled_recognizer):
        rng = np.random.default_rng(98)
        wave = synthesize_command("alexa", rng)
        assert enrolled_recognizer.recognizes_as(wave, "alexa")
        assert not enrolled_recognizer.recognizes_as(wave, "ok_google")

    def test_margin_positive_for_clean_input(self, enrolled_recognizer):
        rng = np.random.default_rng(97)
        wave = synthesize_command("alexa", rng)
        result = enrolled_recognizer.recognize(wave)
        assert result.margin() > 0

    def test_device_rate_independence(self, enrolled_recognizer):
        # The canonical-rate front end makes 16 kHz and 48 kHz inputs
        # comparable — a regression guard for the echo-vs-phone bug.
        from repro.dsp.resample import resample

        rng = np.random.default_rng(96)
        wave = synthesize_command("alexa", rng)
        low_rate = resample(wave, 16000.0)
        d48 = enrolled_recognizer.recognize(wave).distance
        d16 = enrolled_recognizer.recognize(low_rate).distance
        assert d16 == pytest.approx(d48, abs=0.5)


class TestNoiseRobustness:
    def test_accepts_moderate_noise(self, enrolled_recognizer):
        rng = np.random.default_rng(95)
        wave = synthesize_command("ok_google", rng)
        noise = white_noise(
            wave.duration, wave.sample_rate, rng,
            rms_level=0.1 * wave.rms(),
        ).padded_to(wave.n_samples)
        result = enrolled_recognizer.recognize(wave + noise)
        assert result.accepted
        assert result.command == "ok_google"

    def test_rejects_pure_noise(self, enrolled_recognizer):
        rng = np.random.default_rng(94)
        noise = white_noise(0.8, 48000.0, rng, rms_level=0.1)
        result = enrolled_recognizer.recognize(noise)
        assert not result.accepted

    def test_accuracy_degrades_with_noise(self, enrolled_recognizer):
        rng = np.random.default_rng(93)
        names = ("ok_google", "alexa", "take_a_picture")

        def accuracy(noise_factor):
            correct = 0
            for name in names:
                wave = synthesize_command(name, rng)
                noise = white_noise(
                    wave.duration, wave.sample_rate, rng,
                    rms_level=noise_factor * wave.rms(),
                ).padded_to(wave.n_samples)
                correct += enrolled_recognizer.recognizes_as(
                    wave + noise, name
                )
            return correct / len(names)

        assert accuracy(0.05) >= accuracy(8.0)
        assert accuracy(8.0) < 1.0


class TestDtwInternals:
    def test_identical_sequences_zero_distance(self):
        recognizer = KeywordRecognizer()
        features = np.random.default_rng(1).normal(size=(40, 10))
        assert recognizer._dtw_distance(features, features) == pytest.approx(
            0.0
        )

    def test_time_warped_sequence_close(self):
        recognizer = KeywordRecognizer()
        rng = np.random.default_rng(2)
        base = np.cumsum(rng.normal(size=(50, 8)), axis=0)
        stretched = np.repeat(base, 2, axis=0)[::2][:50]
        warped_distance = recognizer._dtw_distance(base, stretched)
        other = np.cumsum(rng.normal(size=(50, 8)), axis=0)
        random_distance = recognizer._dtw_distance(base, other)
        assert warped_distance < random_distance

    def test_empty_features_rejected(self):
        recognizer = KeywordRecognizer()
        with pytest.raises(RecognitionError):
            recognizer._dtw_distance(
                np.zeros((0, 4)), np.zeros((5, 4))
            )
