"""Unit tests for phonemes and the formant synthesiser."""

import numpy as np
import pytest

from repro.dsp.spectrum import band_power, welch_psd
from repro.speech.phonemes import PHONEMES, get_phoneme
from repro.speech.synthesis import FormantSynthesizer, SynthesisProfile
from repro.errors import SynthesisError


class TestPhonemeInventory:
    def test_inventory_is_substantial(self):
        assert len(PHONEMES) >= 30

    def test_lookup(self):
        assert get_phoneme("AA").voiced

    def test_unknown_symbol_lists_options(self):
        with pytest.raises(SynthesisError) as excinfo:
            get_phoneme("QQ")
        assert "AA" in str(excinfo.value)

    def test_all_formants_positive_and_below_8k(self):
        for phoneme in PHONEMES.values():
            for f in phoneme.formants_hz:
                assert 0 < f <= 8000.0


class TestSynthesizer:
    def test_output_properties(self, rng):
        synth = FormantSynthesizer()
        wave = synth.synthesize(["HH", "EH", "L", "OW"], rng)
        assert wave.sample_rate == 48000.0
        assert wave.peak() == pytest.approx(0.9, abs=0.01)
        assert wave.duration > 0.2

    def test_duration_follows_plan(self, rng):
        synth = FormantSynthesizer()
        wave = synth.synthesize([("AA", 0.5)], rng)
        assert wave.duration == pytest.approx(0.5, abs=0.02)

    def test_empty_sequence_rejected(self, rng):
        with pytest.raises(SynthesisError):
            FormantSynthesizer().synthesize([], rng)

    def test_vowel_formant_structure(self, rng):
        synth = FormantSynthesizer()
        wave = synth.synthesize([("IY", 0.4)], rng)
        psd = welch_psd(wave, segment_length=8192)
        # IY: F1 ~ 270, F2 ~ 2290 — both regions energetic relative to
        # the valley between them.
        valley = psd.band_power(1200, 1700)
        assert psd.band_power(150, 450) > valley
        assert psd.band_power(2100, 2500) > valley

    def test_fricative_is_high_frequency(self, rng):
        synth = FormantSynthesizer()
        wave = synth.synthesize([("S", 0.3)], rng)
        assert band_power(wave, 4000, 8000) > band_power(wave, 100, 1000)

    def test_no_subsonic_energy(self, rng):
        # The radiation characteristic must suppress the sub-50 Hz band
        # — this property is what gives the *defense* its clean
        # baseline, so it is pinned here.
        synth = FormantSynthesizer()
        wave = synth.synthesize(
            ["OW", "K", "EY", "G", "UW", "AH", "L"], rng
        )
        psd = welch_psd(wave, segment_length=8192, window="blackman")
        low = psd.band_power(15, 50)
        total = psd.total_power()
        assert low / total < 10 ** (-35 / 10)

    def test_silence_phoneme_is_silent(self, rng):
        synth = FormantSynthesizer()
        wave = synth.synthesize([("SIL", 0.2)], rng)
        assert wave.rms() < 1e-6

    def test_deterministic_given_seed(self):
        synth = FormantSynthesizer()
        a = synth.synthesize(["AA", "M"], np.random.default_rng(7))
        b = synth.synthesize(["AA", "M"], np.random.default_rng(7))
        assert a == b

    def test_different_voices_differ(self, rng):
        male = FormantSynthesizer(SynthesisProfile(f0_hz=110.0))
        female = FormantSynthesizer(SynthesisProfile(f0_hz=210.0))
        wave_m = male.synthesize([("AA", 0.4)], np.random.default_rng(1))
        wave_f = female.synthesize([("AA", 0.4)], np.random.default_rng(1))
        psd_m = welch_psd(wave_m, segment_length=16384)
        psd_f = welch_psd(wave_f, segment_length=16384)
        # The fundamental's location must track f0.
        assert psd_m.band_power(90, 130) > psd_m.band_power(190, 230)
        assert psd_f.band_power(190, 230) > psd_f.band_power(90, 130)

    def test_profile_validation(self):
        with pytest.raises(SynthesisError):
            SynthesisProfile(f0_hz=20.0)
        with pytest.raises(SynthesisError):
            SynthesisProfile(jitter=0.5)
        with pytest.raises(SynthesisError):
            SynthesisProfile(sample_rate=8000.0)
