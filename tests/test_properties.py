"""Property-based tests (hypothesis) for core invariants.

Strategy definitions shared with the rest of the suite live in
``tests/strategies.py``; this file holds the cross-cutting invariants
(round trips, monotonicities, batched-vs-scalar equivalences).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import (
    batch_amplitudes,
    batch_rates,
    batch_rows,
    batch_samples,
    batch_seeds,
    finite_floats,
    random_batch as _random_batch,
)

from repro.acoustics.atmosphere import absorption_coefficient_db_per_m
from repro.acoustics.spl import (
    pressure_to_spl,
    spl_at_distance,
    spl_to_pressure,
)
from repro.defense.metrics import auc, confusion_matrix, roc_curve
from repro.dsp.measures import (
    db_to_linear,
    db_to_power_ratio,
    linear_to_db,
    normalized_correlation,
    power_ratio_to_db,
)
from repro.acoustics.propagation import PropagationModel
from repro.dsp.filters import (
    band_pass,
    band_pass_array,
    high_pass,
    high_pass_array,
    low_pass,
    low_pass_array,
)
from repro.dsp.resample import rational_ratio, resample, resample_array
from repro.dsp.signals import Signal, Unit, tone
from repro.dsp.spectrum import welch_psd, welch_psd_matrix
from repro.dsp.windows import blackman, hamming, hann
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.psychoacoustics.threshold import hearing_threshold_spl


class TestDbProperties:
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_amplitude_round_trip(self, ratio):
        assert db_to_linear(linear_to_db(ratio)) == np.float64(
            ratio
        ) or abs(db_to_linear(linear_to_db(ratio)) - ratio) < 1e-6 * ratio

    @given(st.floats(min_value=-120.0, max_value=120.0))
    def test_power_round_trip_db(self, db):
        assert abs(power_ratio_to_db(db_to_power_ratio(db)) - db) < 1e-9

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_amplitude_db_is_twice_power_db(self, ratio):
        assert abs(
            linear_to_db(ratio) - power_ratio_to_db(ratio**2)
        ) < 1e-9


class TestSplProperties:
    @given(st.floats(min_value=1e-6, max_value=1e3))
    def test_pressure_round_trip(self, pressure):
        recovered = spl_to_pressure(pressure_to_spl(pressure))
        assert abs(recovered - pressure) < 1e-9 * max(pressure, 1.0)

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_spl_monotone_in_distance(self, d1, d2):
        near, far = sorted([d1, d2])
        if near == far:
            return
        assert spl_at_distance(100.0, near) >= spl_at_distance(100.0, far)


class TestAtmosphereProperties:
    @given(st.floats(min_value=100.0, max_value=80000.0))
    def test_absorption_positive(self, frequency):
        assert absorption_coefficient_db_per_m(frequency) > 0

    @given(
        st.floats(min_value=100.0, max_value=40000.0),
        st.floats(min_value=1.01, max_value=2.0),
    )
    def test_absorption_monotone(self, frequency, factor):
        assert absorption_coefficient_db_per_m(
            frequency * factor
        ) > absorption_coefficient_db_per_m(frequency)


class TestThresholdProperties:
    @given(st.floats(min_value=20.0, max_value=60000.0))
    def test_threshold_finite(self, frequency):
        value = hearing_threshold_spl(frequency)
        assert np.isfinite(value)
        assert -20.0 <= value <= 200.0


class TestSignalProperties:
    @given(
        st.lists(finite_floats, min_size=1, max_size=64),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_rms_le_peak(self, samples, rate):
        s = Signal(samples, rate)
        assert s.rms() <= s.peak() + 1e-12

    @given(
        st.lists(finite_floats, min_size=1, max_size=64),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_scaling_scales_rms_linearly(self, samples, factor):
        s = Signal(samples, 100.0)
        assert abs((s * factor).rms() - factor * s.rms()) < 1e-6 * max(
            1.0, s.rms() * factor
        )

    @given(st.lists(finite_floats, min_size=2, max_size=64))
    def test_add_commutes(self, samples):
        a = Signal(samples, 100.0)
        b = Signal(samples[::-1], 100.0)
        assert a + b == b + a

    @given(
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=32),
    )
    def test_padding_adds_exact_length(self, before, after):
        s = tone(10.0, 0.1, 1000.0)
        padded = s.padded(before, after)
        assert padded.n_samples == s.n_samples + before + after


class TestWindowProperties:
    @given(st.integers(min_value=2, max_value=512))
    def test_windows_bounded(self, n):
        for factory in (hann, hamming, blackman):
            w = factory(n)
            assert np.all(w <= 1.0 + 1e-12)
            assert np.all(w >= -1e-6)


class TestNonlinearityProperties:
    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=0.001, max_value=0.2),
    )
    def test_weak_nonlinearity_near_identity(self, x, a2):
        nl = PolynomialNonlinearity((1.0, a2))
        y = nl.apply_array(np.array([x]))[0]
        assert abs(y - x) <= a2 * x * x + 1e-12

    @given(st.lists(finite_floats, min_size=1, max_size=32))
    def test_linear_is_identity_times_gain(self, samples):
        nl = PolynomialNonlinearity.linear(2.0)
        x = np.array(samples)
        assert np.allclose(nl.apply_array(x), 2.0 * x)


class TestResampleProperties:
    @given(
        st.sampled_from([8000.0, 16000.0, 44100.0, 48000.0, 96000.0, 192000.0]),
        st.sampled_from([8000.0, 16000.0, 44100.0, 48000.0, 96000.0, 192000.0]),
    )
    def test_rational_ratio_exact(self, target, source):
        up, down = rational_ratio(target, source)
        assert source * up / down == np.float64(target)


class TestBatchedFilteringProperties:
    """Axis-aware filtering == per-row scalar filtering (rtol 1e-9)."""

    @settings(max_examples=15, deadline=None)
    @given(batch_seeds, batch_rows, batch_samples, batch_amplitudes, batch_rates)
    def test_low_pass_array_matches_scalar_rows(
        self, seed, rows, samples, amplitude, rate
    ):
        x = _random_batch(seed, rows, samples, amplitude)
        cutoff = 0.2 * rate
        batched = low_pass_array(x, rate, cutoff, order=4)
        for row_in, row_out in zip(x, batched):
            scalar = low_pass(Signal(row_in, rate), cutoff, order=4)
            assert np.allclose(
                row_out, scalar.samples, rtol=1e-9, atol=1e-12 * amplitude
            )

    @settings(max_examples=15, deadline=None)
    @given(batch_seeds, batch_rows, batch_samples, batch_amplitudes, batch_rates)
    def test_band_pass_array_matches_scalar_rows(
        self, seed, rows, samples, amplitude, rate
    ):
        x = _random_batch(seed, rows, samples, amplitude)
        low, high = 0.05 * rate, 0.3 * rate
        batched = band_pass_array(x, rate, low, high, order=4)
        for row_in, row_out in zip(x, batched):
            scalar = band_pass(Signal(row_in, rate), low, high, order=4)
            assert np.allclose(
                row_out, scalar.samples, rtol=1e-9, atol=1e-12 * amplitude
            )

    @settings(max_examples=10, deadline=None)
    @given(batch_seeds, batch_samples, batch_amplitudes, batch_rates)
    def test_batch_of_one_is_exactly_scalar(
        self, seed, samples, amplitude, rate
    ):
        x = _random_batch(seed, 1, samples, amplitude)
        cutoff = 0.25 * rate
        assert np.array_equal(
            high_pass_array(x, rate, cutoff, order=2)[0],
            high_pass(Signal(x[0], rate), cutoff, order=2).samples,
        )


class TestBatchedNonlinearityProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        batch_seeds,
        batch_rows,
        st.integers(min_value=4, max_value=128),
        batch_amplitudes,
        st.floats(min_value=-0.3, max_value=0.3),
        st.floats(min_value=-0.05, max_value=0.05),
    )
    def test_batched_polynomial_matches_scalar_rows(
        self, seed, rows, samples, amplitude, a2, a3
    ):
        nl = PolynomialNonlinearity((1.0, a2, a3))
        x = _random_batch(seed, rows, samples, amplitude)
        batched = nl.apply_array(x)
        for row_in, row_out in zip(x, batched):
            assert np.array_equal(row_out, nl.apply_array(row_in))


class TestBatchedPropagationProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        batch_seeds,
        batch_rows,
        st.sampled_from([48, 200, 512]),
        batch_amplitudes,
        st.sampled_from([16000.0, 192000.0]),
    )
    def test_propagate_batch_matches_scalar_rows(
        self, seed, rows, samples, amplitude, rate
    ):
        model = PropagationModel()
        x = _random_batch(seed, rows, samples, amplitude)
        rng = np.random.default_rng(seed + 1)
        distances = rng.uniform(0.5, 8.0, size=rows)
        batched = model.propagate_batch(x, rate, distances)
        for row_in, row_out, distance in zip(x, batched, distances):
            scalar = model.propagate(
                Signal(row_in, rate, Unit.PASCAL), float(distance)
            )
            padded = np.zeros(batched.shape[-1])
            padded[: scalar.n_samples] = scalar.samples
            assert np.allclose(
                row_out, padded, rtol=1e-9, atol=1e-12 * amplitude
            )

    @settings(max_examples=6, deadline=None)
    @given(batch_seeds, st.integers(min_value=2, max_value=5))
    def test_propagate_batch_is_bitwise_scalar(self, seed, rows):
        """Every golden table depends on this equality holding exactly.

        `AcousticChannel.transmit` routes multi-source free-field
        groups through `propagate_batch` in *both* engine modes, so
        the `--no-batch` CLI diff cannot catch a drift between the
        stacked-FFT path and per-source `propagate` + `mix` — this
        test is the bitwise pin that can.
        """
        from repro.dsp.signals import mix

        model = PropagationModel()
        # > 64 rfft bins, exercising the interpolated-absorption branch.
        x = _random_batch(seed, rows, 4096, 1.0)
        distances = np.random.default_rng(seed + 1).uniform(
            0.5, 10.0, size=rows
        )
        batched = model.propagate_batch(x, 192000.0, distances)
        scalar = mix(
            [
                model.propagate(
                    Signal(row, 192000.0, Unit.PASCAL), float(distance)
                )
                for row, distance in zip(x, distances)
            ]
        )
        summed = batched[0].copy()
        for row in batched[1:]:
            summed = np.add(summed, row)
        assert np.array_equal(summed, scalar.samples)


class TestBatchedSpectrumResampleProperties:
    @settings(max_examples=10, deadline=None)
    @given(batch_seeds, batch_rows, batch_samples, batch_amplitudes, batch_rates)
    def test_welch_matrix_matches_scalar_rows(
        self, seed, rows, samples, amplitude, rate
    ):
        x = _random_batch(seed, rows, samples, amplitude)
        freqs, psd = welch_psd_matrix(x, rate, segment_length=128)
        for row_in, row_psd in zip(x, psd):
            scalar = welch_psd(Signal(row_in, rate), segment_length=128)
            assert np.array_equal(freqs, scalar.frequencies)
            assert np.array_equal(row_psd, scalar.psd)

    @settings(max_examples=10, deadline=None)
    @given(batch_seeds, batch_rows, batch_samples, batch_amplitudes)
    def test_resample_array_matches_scalar_rows(
        self, seed, rows, samples, amplitude
    ):
        x = _random_batch(seed, rows, samples, amplitude)
        batched = resample_array(x, 48000.0, 16000.0)
        for row_in, row_out in zip(x, batched):
            scalar = resample(Signal(row_in, 48000.0), 16000.0)
            assert np.array_equal(row_out, scalar.samples)


class TestCorrelationProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=64))
    def test_bounded(self, values):
        x = np.array(values)
        y = x[::-1].copy()
        c = normalized_correlation(x, y)
        assert -1.0 <= c <= 1.0

    @given(
        st.lists(finite_floats, min_size=2, max_size=64),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_affine_invariance(self, values, scale, offset):
        x = np.array(values)
        if np.std(x) < 1e-9:
            return
        c1 = normalized_correlation(x, x)
        c2 = normalized_correlation(x, scale * x + offset)
        assert abs(c1 - c2) < 1e-6


class TestMetricProperties:
    @settings(max_examples=30)
    @given(
        st.lists(st.booleans(), min_size=4, max_size=64),
        st.randoms(use_true_random=False),
    )
    def test_auc_bounded(self, label_list, rand):
        labels = np.array(label_list, dtype=int)
        if labels.sum() == 0 or labels.sum() == len(labels):
            return
        scores = np.array([rand.random() for _ in label_list])
        value = auc(labels, scores)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30)
    @given(st.lists(st.booleans(), min_size=4, max_size=64))
    def test_roc_monotone(self, label_list):
        labels = np.array(label_list, dtype=int)
        if labels.sum() == 0 or labels.sum() == len(labels):
            return
        scores = np.linspace(0, 1, len(labels))
        roc = roc_curve(labels, scores)
        assert np.all(np.diff(roc.false_positive_rates) >= -1e-12)
        assert np.all(np.diff(roc.true_positive_rates) >= -1e-12)

    @settings(max_examples=30)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=64),
        st.lists(st.booleans(), min_size=1, max_size=64),
    )
    def test_confusion_total(self, labels, predictions):
        n = min(len(labels), len(predictions))
        cm = confusion_matrix(
            np.array(labels[:n], dtype=int),
            np.array(predictions[:n], dtype=int),
        )
        assert cm.total == n
