"""Scenario registry + scenario-level differential harness.

Two guarantees for *every* registered environment (the scenario
counterpart of the 15-experiment batch-equivalence suite):

* **batch vs scalar** — the vectorized kernel reproduces the scalar
  per-trial loop bitwise (same successes, same DTW distances, same
  recorded waveforms) in rooms, under interference, with a walking
  attacker and in weather, not just in the free field;
* **jobs determinism** — fanning the same groups over a worker pool
  changes nothing about the outcomes, byte for byte.

Plus unit coverage for the declarative spec layer itself: registry
semantics, geometric capping, interference rendering and the motion
model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import outcomes_identical
from strategies import rooms
from repro.acoustics.geometry import Position
from repro.errors import ExperimentError
from repro.experiments._emissions import single_full
from repro.sim.batch import run_group_batch, supports_batch
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import (
    AttackerMotion,
    InterferenceSource,
    Scenario,
    VictimDevice,
    interference_waveform,
)
from repro.sim.spec import (
    RIG_POSITION,
    RoomSpec,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sim.sweep import success_rate_by_scenario

EXPECTED_SCENARIOS = {
    "free_field",
    "living_room",
    "conference_room",
    "walking_attacker",
    "tv_interference",
    "outdoor_wind",
}


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def emission_spec():
    return EmissionSpec(single_full, ("ok_google", 5))


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())

    def test_unknown_name_lists_available(self):
        with pytest.raises(ExperimentError, match="living_room"):
            get_scenario("underwater")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("free_field")
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(spec)
        # Explicit replace is the escape hatch (idempotent here).
        assert register_scenario(spec, replace=True) is spec

    def test_free_field_build_matches_legacy_scenario(self):
        built = get_scenario("free_field").build("ok_google", 3.0)
        legacy = Scenario(
            command="ok_google",
            attacker_position=RIG_POSITION,
            victim_position=RIG_POSITION.translated(3.0, 0.0, 0.0),
        )
        assert built == legacy

    def test_specs_are_pure_data(self):
        import pickle

        for name in scenario_names():
            spec = get_scenario(name)
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_bad_device_preset_rejected(self):
        with pytest.raises(ExperimentError, match="device preset"):
            ScenarioSpec(name="x", description="", device="toaster")

    def test_room_too_small_for_rig_rejected_at_registration(self):
        with pytest.raises(Exception):
            ScenarioSpec(
                name="closet",
                description="",
                room=RoomSpec(1.0, 1.0, 2.0),
            )

    def test_build_device_uses_preset(self):
        assert get_scenario("free_field").build_device().name == "phone"


class TestGeometryCapping:
    def test_free_field_uncapped(self):
        assert get_scenario("free_field").max_distance_m(16.0) == 16.0

    def test_room_caps_at_interior_span(self):
        spec = get_scenario("living_room")
        limit = spec.max_distance_m(16.0)
        assert limit < spec.room.length_m
        # The capped victim must actually fit the built room.
        spec.build("ok_google", distance_m=limit)

    def test_clamp_drops_unfittable_distances(self):
        spec = get_scenario("living_room")
        kept = spec.clamp_distances((1.0, 3.0, 8.0))
        assert kept == (1.0, 3.0)

    def test_clamp_rejects_fully_unfittable_sweep(self):
        with pytest.raises(ExperimentError, match="no sweep distance"):
            get_scenario("living_room").clamp_distances((9.0, 12.0))

    @given(room=rooms())
    @settings(max_examples=20, deadline=None)
    def test_capped_distance_always_fits(self, room):
        spec = RoomSpec(
            room.length_m, room.width_m, room.height_m,
            room.wall_absorption,
        )
        try:
            scenario_spec = ScenarioSpec(
                name="probe",
                description="",
                room=spec,
                distance_m=0.5,
            )
        except Exception:
            # Rooms that cannot host the rig (or the 0.5 m victim)
            # are rejected at spec construction — also a valid pin.
            return
        limit = scenario_spec.max_distance_m(16.0)
        built = scenario_spec.build("ok_google", distance_m=limit)
        assert built.room.contains(built.victim_position)


class TestInterference:
    def test_waveform_deterministic_and_cached(self):
        source = InterferenceSource(
            kind="speech_babble", position=Position(1, 1, 1), seed=3
        )
        a = interference_waveform(source, 48000.0)
        b = interference_waveform(source, 48000.0)
        assert a is b  # lru_cache shares the rendered array

    @pytest.mark.parametrize("kind", ["speech_babble", "music", "hum"])
    def test_kinds_render_at_requested_level(self, kind):
        from repro.acoustics.spl import pressure_to_spl

        source = InterferenceSource(
            kind=kind, position=Position(1, 1, 1), level_spl=60.0
        )
        wave = interference_waveform(source, 48000.0)
        assert pressure_to_spl(wave.rms()) == pytest.approx(60.0, abs=1e-6)
        assert wave.duration == pytest.approx(source.duration_s)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="interference kind"):
            InterferenceSource(kind="kazoo", position=Position(0, 0, 0))

    def test_interference_must_sit_inside_the_room(self):
        spec = get_scenario("living_room")
        with pytest.raises(Exception, match="interference source"):
            Scenario(
                command="ok_google",
                attacker_position=RIG_POSITION,
                victim_position=RIG_POSITION.translated(2.0, 0.0, 0.0),
                room=spec.room.build(),
                interference=(
                    InterferenceSource(
                        kind="hum", position=Position(40.0, 1.0, 1.0)
                    ),
                ),
            )

    def test_interference_changes_the_recorded_trial(self, phone_device):
        quiet = get_scenario("living_room").build("ok_google", 2.0)
        noisy = get_scenario("tv_interference").build("ok_google", 2.0)
        sources = EmissionSpec(single_full, ("ok_google", 5)).sources()
        a = ScenarioRunner(quiet, phone_device).run_trial(
            list(sources), np.random.default_rng(4)
        )
        b = ScenarioRunner(noisy, phone_device).run_trial(
            list(sources), np.random.default_rng(4)
        )
        assert not np.array_equal(
            a.recording.samples, b.recording.samples
        )


class TestMotion:
    def test_invalid_span_rejected(self):
        with pytest.raises(ExperimentError, match="span"):
            AttackerMotion(span_m=0.0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        span=st.floats(min_value=0.01, max_value=4.0),
        base=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_gain_positive_and_bounded(self, seed, span, base):
        motion = AttackerMotion(span_m=span, min_distance_m=0.25)
        gain = motion.trial_gain(base, np.random.default_rng(seed))
        assert gain > 0.0
        # Closest approach bounds the gain from above.
        assert gain <= base / motion.min_distance_m

    def test_static_scenario_consumes_no_draw(self):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert scenario.trial_gain(rng) is None
        assert rng.bit_generator.state == before

    def test_moving_scenario_consumes_exactly_one_draw(self):
        scenario = get_scenario("walking_attacker").build("ok_google", 2.0)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        scenario.trial_gain(rng_a)
        rng_b.uniform(-0.5, 0.5)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestScenarioCarriesEnvironment:
    def test_at_distance_preserves_environment_fields(self):
        scenario = get_scenario("tv_interference").build("ok_google", 2.0)
        moved = scenario.at_distance(3.5)
        assert moved.room == scenario.room
        assert moved.interference == scenario.interference
        assert moved.motion == scenario.motion
        assert moved.conditions == scenario.conditions
        assert moved.distance_m == pytest.approx(3.5)

    def test_weather_feeds_the_propagation_model(self):
        outdoor = get_scenario("outdoor_wind").build("ok_google", 2.0)
        channel = outdoor.channel()
        assert channel.propagation.conditions.temperature_c == 10.0
        assert channel.propagation.conditions.relative_humidity == 80.0


class TestScenarioDifferential:
    """Every registered environment: batch == scalar, jobs-invariant."""

    @pytest.fixture(scope="class")
    def per_scenario(self, phone_device, emission_spec):
        """Scalar and batched outcomes for a small group per scenario."""
        def trial_rngs():
            # The exact streams the engine derives for a single group:
            # one child per group, then one grandchild per trial — so
            # the engine comparison below is bitwise, not just seeded
            # alike.
            (group_rng,) = np.random.default_rng(5).spawn(1)
            return group_rng.spawn(3)

        results = {}
        for name in scenario_names():
            scenario = get_scenario(name).build("ok_google", 2.0)
            group = TrialGroup(scenario, phone_device, emission_spec, 3)
            runner = ScenarioRunner(scenario, phone_device)
            sources = group.resolve_sources()
            scalar = [
                runner.run_trial(sources, rng) for rng in trial_rngs()
            ]
            batched = run_group_batch(group, trial_rngs())
            results[name] = (group, scalar, batched)
        return results

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_no_scalar_fallback(
        self, name, phone_device, emission_spec
    ):
        scenario = get_scenario(name).build("ok_google", 2.0)
        group = TrialGroup(scenario, phone_device, emission_spec, 2)
        support = supports_batch(group)
        assert support
        assert support.reason is None

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_batch_bitwise_equals_scalar(self, name, per_scenario):
        _, scalar, batched = per_scenario[name]
        assert outcomes_identical(scalar, batched)

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_jobs_do_not_change_outcomes(self, name, per_scenario):
        group, _, batched = per_scenario[name]
        with ExperimentEngine(jobs=2) as engine:
            fanned = engine.run_trial_groups(
                [group], np.random.default_rng(5)
            )[0]
        assert outcomes_identical(batched, fanned)

    def test_scenario_sweep_runs_every_environment(
        self, phone_device, emission_spec
    ):
        rates = success_rate_by_scenario(
            scenario_names(),
            "ok_google",
            phone_device,
            emission_spec,
            n_trials=1,
            rng=np.random.default_rng(1),
            distance_m=1.0,
        )
        assert [name for name, _ in rates] == list(scenario_names())
        assert all(0.0 <= rate <= 1.0 for _, rate in rates)

    def test_scenario_sweep_refuses_unfittable_pinned_distance(
        self, phone_device, emission_spec
    ):
        with pytest.raises(ExperimentError, match="does not fit"):
            success_rate_by_scenario(
                ["free_field", "living_room"],
                "ok_google",
                phone_device,
                emission_spec,
                n_trials=1,
                rng=np.random.default_rng(1),
                distance_m=6.0,
            )
