"""Unit and equivalence tests for the vectorized batch trial kernel.

The contract under test is strict: the batched pipeline must be
*bitwise* identical to the scalar per-trial loop — same successes,
same DTW distances, same recorded waveforms — for every supported
group, and must fall back to the scalar path (rather than silently
diverge) for hardware models it cannot prove equivalent.
"""

import numpy as np
import pytest

from repro.dsp.signals import Signal, SignalBatch
from repro.errors import ExperimentError, SignalDomainError
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments._emissions import ATTACKER_POSITION, single_full
from repro.hardware.microphone import Microphone
from repro.sim.batch import run_group_batch, supports_batch
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        command="ok_google",
        attacker_position=ATTACKER_POSITION,
        victim_position=ATTACKER_POSITION.translated(2.0, 0.0, 0.0),
    )


@pytest.fixture(scope="module")
def emission_spec():
    return EmissionSpec(single_full, ("ok_google", 5))


def outcomes_identical(a, b, compare_recordings=True) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (
            x.success != y.success
            or x.recognized_command != y.recognized_command
            or x.accepted != y.accepted
            or x.distance != y.distance
        ):
            return False
        if compare_recordings:
            if (x.recording is None) != (y.recording is None):
                return False
            if x.recording is not None and not np.array_equal(
                x.recording.samples, y.recording.samples
            ):
                return False
    return True


class TestSignalBatch:
    def test_rejects_one_dimensional_input(self):
        with pytest.raises(SignalDomainError, match="2-D"):
            SignalBatch(np.zeros(8), 100.0)

    def test_signal_rejects_batch_shaped_input(self):
        with pytest.raises(SignalDomainError, match="SignalBatch"):
            Signal(np.zeros((2, 8)), 100.0)

    def test_from_signals_rejects_mixed_lengths(self):
        with pytest.raises(SignalDomainError, match="equal lengths"):
            SignalBatch.from_signals(
                [Signal(np.zeros(8), 100.0), Signal(np.zeros(9), 100.0)]
            )

    def test_from_signals_rejects_mixed_rates(self):
        from repro.errors import SampleRateError

        with pytest.raises(SampleRateError):
            SignalBatch.from_signals(
                [Signal(np.zeros(8), 100.0), Signal(np.zeros(8), 200.0)]
            )

    def test_tiled_rows_round_trip(self):
        source = Signal(np.arange(5, dtype=float), 10.0)
        batch = SignalBatch.tiled(source, 3)
        assert batch.n_signals == 3
        assert batch.n_samples == 5
        for row in batch.signals():
            assert np.array_equal(row.samples, source.samples)
            assert row.sample_rate == source.sample_rate

    def test_row_index_validated(self):
        batch = SignalBatch(np.zeros((2, 4)), 10.0)
        with pytest.raises(SignalDomainError):
            batch.row(2)

    def test_duration_uses_last_axis(self):
        batch = SignalBatch(np.zeros((7, 100)), 50.0)
        assert batch.duration == pytest.approx(2.0)
        assert len(batch) == 7


class TestKernelEquivalence:
    @pytest.fixture(scope="class")
    def pair(self, scenario, phone_device, emission_spec):
        group = TrialGroup(scenario, phone_device, emission_spec, 3)
        runner = ScenarioRunner(scenario, phone_device)
        sources = group.resolve_sources()
        scalar = [
            runner.run_trial(sources, rng)
            for rng in np.random.default_rng(5).spawn(3)
        ]
        batched = run_group_batch(
            group, np.random.default_rng(5).spawn(3)
        )
        return scalar, batched

    def test_outcomes_bitwise_identical(self, pair):
        scalar, batched = pair
        assert outcomes_identical(scalar, batched)

    def test_batch_of_one_is_exactly_scalar(
        self, scenario, phone_device, emission_spec
    ):
        group = TrialGroup(scenario, phone_device, emission_spec, 1)
        runner = ScenarioRunner(scenario, phone_device)
        (rng_a,) = np.random.default_rng(11).spawn(1)
        (rng_b,) = np.random.default_rng(11).spawn(1)
        scalar = runner.run_trial(group.resolve_sources(), rng_a)
        (batched,) = run_group_batch(group, [rng_b])
        assert outcomes_identical([scalar], [batched])

    def test_keep_recordings_false_strips_only_waveforms(
        self, scenario, phone_device, emission_spec, pair
    ):
        group = TrialGroup(scenario, phone_device, emission_spec, 3)
        stripped = run_group_batch(
            group,
            np.random.default_rng(5).spawn(3),
            keep_recordings=False,
        )
        assert all(o.recording is None for o in stripped)
        assert outcomes_identical(
            pair[1], stripped, compare_recordings=False
        )

    def test_empty_generator_list_rejected(
        self, scenario, phone_device, emission_spec
    ):
        group = TrialGroup(scenario, phone_device, emission_spec, 1)
        with pytest.raises(ExperimentError):
            run_group_batch(group, [])


class _TracingMicrophone(Microphone):
    """A microphone subclass the kernel must refuse to vectorize."""


class TestFallback:
    def test_standard_group_supported(
        self, scenario, phone_device, emission_spec
    ):
        group = TrialGroup(scenario, phone_device, emission_spec, 2)
        support = supports_batch(group)
        assert support
        assert support.supported is True
        assert support.reason is None

    def test_subclassed_microphone_unsupported(
        self, scenario, phone_device, emission_spec
    ):
        device = VictimDevice(
            name="custom",
            microphone=_TracingMicrophone(
                phone_device.microphone.config
            ),
            recognizer=phone_device.recognizer,
        )
        group = TrialGroup(scenario, device, emission_spec, 2)
        support = supports_batch(group)
        assert not support
        assert "_TracingMicrophone" in support.reason
        assert "stock Microphone" in support.reason

    def test_subclassed_nonlinearity_reported_with_reason(
        self, scenario, phone_device, emission_spec
    ):
        from dataclasses import replace as dc_replace

        from repro.hardware.nonlinearity import PolynomialNonlinearity

        class _TaggedNonlinearity(PolynomialNonlinearity):
            pass

        config = dc_replace(
            phone_device.microphone.config,
            nonlinearity=_TaggedNonlinearity((1.0, 0.05, 0.005)),
        )
        device = VictimDevice(
            name="custom",
            microphone=Microphone(config),
            recognizer=phone_device.recognizer,
        )
        group = TrialGroup(scenario, device, emission_spec, 2)
        support = supports_batch(group)
        assert not support
        assert "_TaggedNonlinearity" in support.reason

    def test_subclassed_scenario_reported_with_reason(
        self, scenario, phone_device, emission_spec
    ):
        class _TaggedScenario(Scenario):
            pass

        tagged = _TaggedScenario(
            command=scenario.command,
            attacker_position=scenario.attacker_position,
            victim_position=scenario.victim_position,
        )
        group = TrialGroup(tagged, phone_device, emission_spec, 2)
        support = supports_batch(group)
        assert not support
        assert "_TaggedScenario" in support.reason

    def test_room_scenario_accepted(
        self, phone_device, emission_spec
    ):
        from repro.sim.spec import get_scenario

        room_scenario = get_scenario("living_room").build(
            "ok_google", 2.0
        )
        group = TrialGroup(room_scenario, phone_device, emission_spec, 2)
        support = supports_batch(group)
        assert support
        assert support.reason is None

    def test_direct_kernel_call_refuses_unsupported_group(
        self, scenario, phone_device, emission_spec
    ):
        device = VictimDevice(
            name="custom",
            microphone=_TracingMicrophone(
                phone_device.microphone.config
            ),
            recognizer=phone_device.recognizer,
        )
        group = TrialGroup(scenario, device, emission_spec, 1)
        with pytest.raises(ExperimentError, match="equivalence"):
            run_group_batch(group, np.random.default_rng(0).spawn(1))

    def test_engine_falls_back_to_identical_scalar_results(
        self, scenario, phone_device, emission_spec
    ):
        device = VictimDevice(
            name="custom",
            microphone=_TracingMicrophone(
                phone_device.microphone.config
            ),
            recognizer=phone_device.recognizer,
        )
        group = TrialGroup(scenario, device, emission_spec, 2)

        def run(batch):
            with ExperimentEngine(jobs=1, batch=batch) as engine:
                return engine.run_trial_groups(
                    [group], np.random.default_rng(9)
                )[0]

        assert outcomes_identical(run(True), run(False))


class TestEngineBatchFlag:
    def test_non_boolean_batch_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentEngine(jobs=1, batch="yes")

    def test_batch_defaults_on(self):
        assert ExperimentEngine(jobs=1).batch is True

    def test_per_call_override(
        self, scenario, phone_device, emission_spec
    ):
        group = TrialGroup(scenario, phone_device, emission_spec, 2)
        with ExperimentEngine(jobs=1, batch=False) as engine:
            default_off = engine.run_trial_groups(
                [group], np.random.default_rng(21)
            )[0]
            forced_on = engine.run_trial_groups(
                [group], np.random.default_rng(21), batch=True
            )[0]
        assert outcomes_identical(default_off, forced_on)


class TestAllExperimentsEquivalence:
    """Satellite guarantee: batch on/off is invisible to every table."""

    @pytest.fixture(scope="class")
    def scalar_tables(self):
        with ExperimentEngine(jobs=1, batch=False) as engine:
            return {
                name: module.run(quick=True, seed=0, engine=engine)
                for name, module in ALL_EXPERIMENTS.items()
            }

    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_batch_and_scalar_render_identically(
        self, name, experiment_tables, scalar_tables
    ):
        assert (
            experiment_tables[name].render()
            == scalar_tables[name].render()
        )
