"""Unit tests for the parallel cached experiment engine.

The load-bearing guarantees:

* results are bit-identical for every ``jobs`` value (the paper's
  numbers must not depend on the machine's core count);
* the emission cache computes each recipe once per process and
  accounts hits/misses;
* invalid configuration fails loudly with :class:`ExperimentError`;
* the adaptive range search never measures a distance twice.
"""

import os

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments._emissions import (
    ATTACKER_POSITION,
    single_full,
)
from repro.sim.engine import (
    EmissionCache,
    EmissionSpec,
    ExperimentEngine,
    TrialGroup,
    attack_range_search,
    cached_voice,
    process_cache,
    stable_key,
)
from repro.sim.scenario import Scenario, VictimDevice


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        command="ok_google",
        attacker_position=ATTACKER_POSITION,
        victim_position=ATTACKER_POSITION.translated(2.0, 0.0, 0.0),
    )


@pytest.fixture(scope="module")
def emission_spec():
    return EmissionSpec(single_full, ("ok_google", 5))


class TestJobsValidation:
    @pytest.mark.parametrize("jobs", [0, -1, -8])
    def test_non_positive_jobs_rejected(self, jobs):
        with pytest.raises(ExperimentError):
            ExperimentEngine(jobs=jobs)

    @pytest.mark.parametrize("jobs", [1.5, "4", True])
    def test_non_integer_jobs_rejected(self, jobs):
        with pytest.raises(ExperimentError):
            ExperimentEngine(jobs=jobs)

    def test_default_jobs_is_cpu_count(self):
        engine = ExperimentEngine()
        assert engine.jobs == (os.cpu_count() or 1)

    def test_serial_engine_never_builds_a_pool(self):
        engine = ExperimentEngine(jobs=1)
        assert engine.map(str, [1, 2, 3]) == ["1", "2", "3"]
        assert engine._pool is None


class TestDeterminismAcrossJobs:
    """Same seed => identical results at jobs=1 and jobs=4."""

    @pytest.fixture(scope="class")
    def outcome_pair(self, scenario, phone_device, emission_spec):
        def trials(jobs):
            with ExperimentEngine(jobs=jobs) as engine:
                return engine.run_trials(
                    scenario,
                    phone_device,
                    emission_spec,
                    4,
                    np.random.default_rng(17),
                )

        return trials(1), trials(4)

    def test_outcomes_bit_identical(self, outcome_pair):
        serial, parallel = outcome_pair
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.success == b.success
            assert a.recognized_command == b.recognized_command
            assert a.distance == b.distance  # exact float equality
            assert np.array_equal(
                a.recording.samples, b.recording.samples
            )

    def test_group_wave_identical(
        self, scenario, phone_device, emission_spec
    ):
        groups = [
            TrialGroup(
                scenario.at_distance(distance),
                phone_device,
                emission_spec,
                2,
            )
            for distance in (1.0, 2.0)
        ]

        def rates(jobs):
            with ExperimentEngine(jobs=jobs) as engine:
                return engine.success_rates(
                    groups, np.random.default_rng(23)
                )

        assert rates(1) == rates(4)


class TestTrialValidation:
    def test_zero_trials_rejected(
        self, scenario, phone_device, emission_spec
    ):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ExperimentError):
            engine.run_trials(
                scenario,
                phone_device,
                emission_spec,
                0,
                np.random.default_rng(0),
            )

    def test_empty_groups_rejected(self):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ExperimentError):
            engine.run_trial_groups([], np.random.default_rng(0))

    def test_empty_distances_rejected(
        self, scenario, phone_device, emission_spec
    ):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ExperimentError):
            engine.accuracy_over_distances(
                scenario,
                phone_device,
                emission_spec,
                [],
                1,
                np.random.default_rng(0),
            )

    def test_bad_threshold_rejected(
        self, scenario, phone_device, emission_spec
    ):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ExperimentError):
            engine.attack_range_m(
                scenario,
                phone_device,
                emission_spec,
                np.random.default_rng(0),
                success_threshold=1.5,
            )


class TestEmissionCache:
    def test_hit_and_miss_accounting(self):
        cache = EmissionCache(max_entries=4)
        built = []

        def factory():
            built.append(1)
            return "value"

        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert len(built) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = EmissionCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ExperimentError):
            EmissionCache(max_entries=0)

    def test_cached_voice_hits_process_cache(self):
        stats = process_cache().stats
        first = cached_voice("alexa", 987654)
        misses = stats.misses
        hits_before = stats.hits
        second = cached_voice("alexa", 987654)
        assert second is first
        assert stats.misses == misses
        assert stats.hits == hits_before + 1

    def test_stable_key_is_stable_and_discriminating(self):
        assert stable_key("a", 1) == stable_key("a", 1)
        assert stable_key("a", 1) != stable_key("a", 2)
        assert stable_key("ab") != stable_key("a", "b")


class TestEmissionSpec:
    def test_materialises_once_per_process(self, emission_spec):
        first = emission_spec.emission()
        second = emission_spec.emission()
        assert second is first
        assert len(emission_spec.sources()) == 1

    def test_key_depends_on_args(self):
        a = EmissionSpec(single_full, ("ok_google", 5))
        b = EmissionSpec(single_full, ("ok_google", 6))
        assert a.key != b.key
        assert a.key == EmissionSpec(single_full, ("ok_google", 5)).key


class TestAttackRangeSearch:
    def probe_counts(self, threshold, **kwargs):
        counts = {}

        def works(distance):
            counts[distance] = counts.get(distance, 0) + 1
            return distance <= threshold

        measured = attack_range_search(works, **kwargs)
        return measured, counts

    def test_no_distance_probed_twice(self):
        measured, counts = self.probe_counts(5.0)
        assert max(counts.values()) == 1
        assert 5.0 - 0.25 <= measured <= 5.0

    def test_never_works_returns_zero(self):
        measured, counts = self.probe_counts(0.0)
        assert measured == 0.0
        assert max(counts.values()) == 1

    def test_always_works_returns_max(self):
        measured, counts = self.probe_counts(100.0, max_distance_m=16.0)
        assert measured == 16.0
        assert max(counts.values()) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"resolution_m": 0.0},
            {"resolution_m": -0.5},
            {"resolution_m": float("nan")},
            {"max_distance_m": 0.0},
        ],
    )
    def test_degenerate_geometry_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            attack_range_search(lambda distance: True, **kwargs)


class TestRecordingStripping:
    def test_success_rate_wave_strips_recordings(
        self, scenario, phone_device, emission_spec
    ):
        engine = ExperimentEngine(jobs=1)
        group = TrialGroup(scenario, phone_device, emission_spec, 2)
        stripped = engine.run_trial_groups(
            [group], np.random.default_rng(3), keep_recordings=False
        )[0]
        kept = engine.run_trial_groups(
            [group], np.random.default_rng(3)
        )[0]
        assert all(o.recording is None for o in stripped)
        assert all(o.recording is not None for o in kept)
        # Stripping must not perturb the trial outcomes themselves.
        assert [o.success for o in stripped] == [
            o.success for o in kept
        ]
        assert [o.distance for o in stripped] == [
            o.distance for o in kept
        ]
